"""Exception hierarchy for the ACQUIRE reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class. Sub-classes are grouped by the
subsystem that raises them (engine, parser, core algorithm, data
generation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class EngineError(ReproError):
    """Base class for evaluation-layer (storage/execution) errors."""


class SchemaError(EngineError):
    """A table or column definition is invalid or inconsistent."""


class UnknownTableError(EngineError):
    """A query referenced a table that is not in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(EngineError):
    """A query referenced a column that does not exist."""

    def __init__(self, name: str, table: str | None = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column: {name!r}{where}")
        self.name = name
        self.table = table


class ExpressionError(EngineError):
    """An expression tree is malformed or cannot be evaluated."""


class QueryModelError(ReproError):
    """An ACQ (query/predicate/constraint) object is invalid."""


class NotRefinableError(QueryModelError):
    """An operation required a refinable predicate but got NOREFINE."""


class OSPViolationError(QueryModelError):
    """The aggregate lacks the optimal substructure property (paper 2.6).

    Raised, for instance, when a user asks for STDDEV: the paper
    explicitly excludes aggregates whose value over a containing query
    cannot be combined from sub-query aggregates.
    """


class SearchError(ReproError):
    """The Expand/Explore search reached an inconsistent state."""


class ParseError(ReproError):
    """The ACQ SQL dialect text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query could not be bound against the catalog."""


class AnalysisError(ReproError):
    """Pre-flight static analysis found ERROR-level diagnostics.

    Raised by :meth:`repro.core.acquire.Acquire.run` with
    ``strict=True`` (and by the harness pre-flight) instead of letting
    a hopeless ACQ fail deep inside the Expand/Explore loop. The full
    :class:`repro.analysis.AnalysisReport` is available as ``report``.
    """

    def __init__(self, report: object) -> None:
        errors = getattr(report, "errors", ())
        summary = "; ".join(
            f"{diag.code}: {diag.message}" for diag in errors
        ) or "analysis failed"
        super().__init__(f"pre-flight analysis failed: {summary}")
        self.report = report


class LintBaselineError(ReproError):
    """An engine-lint baseline-suppressions file could not be parsed.

    Raised by :func:`repro.analysis.engine_lint.parse_suppressions`
    when an entry is malformed or lacks the mandatory reason; the gate
    must fail loudly rather than silently ignore a suppression.
    """


class DataGenError(ReproError):
    """Synthetic data generation was mis-configured."""


class OntologyError(ReproError):
    """A categorical ontology tree is malformed or a value is missing."""


class CorpusError(ReproError):
    """The gold-standard corpus, its oracle, or its gate mis-fired."""


class ServiceError(ReproError):
    """A request was refused by :class:`repro.service.AcquireService`.

    ``reason`` is a stable machine-readable code: ``"queue-full"``
    (backpressure under the reject policy), ``"timeout"`` (the wait
    policy's bound expired), ``"budget"`` (admission control predicted
    the request would exceed its per-request query or row budget),
    ``"unknown-backend"``, or ``"closed"``.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason
