"""The paper's example queries, bound to our generated data.

* Q1' (Example 1): the Facebook-style audience ACQ over a users table,
  expressed in the ACQ SQL dialect (exercises the parser end to end).
* Q2' (Example 2): the TPC-H supply-chain ACQ — three-way join with
  NOREFINE equi-joins and a SUM(ps_availqty) constraint.
* Q3 (section 2.2): the two-table query with a *refinable* join
  predicate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.ontology import OntologyTree
from repro.core.predicate import Direction, JoinPredicate, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.exceptions import DataGenError
from repro.workloads.generator import FlexSpec, JoinSpec


def q1_prime_text(target: float = 2000) -> str:
    """Q1' in the ACQ dialect, adapted to the synthetic users table."""
    return f"""
    SELECT * FROM users
    CONSTRAINT COUNT(*) = {target:g}
    WHERE (city IN ('Boston', 'NewYork', 'Seattle', 'Miami', 'Austin'))
      AND (25 <= age <= 35)
      AND (income <= 80000)
      AND (engagement >= 60)
      AND (interest IN ('Retail', 'Shopping')) NOREFINE
    """


def location_ontology() -> OntologyTree:
    """Figure 7(b): a location taxonomy for the users table."""
    tree = OntologyTree(root="World")
    tree.add_path("USA", "EastCoast", "Boston")
    tree.add_path("USA", "EastCoast", "NewYork")
    tree.add_path("USA", "EastCoast", "Miami")
    tree.add_path("USA", "WestCoast", "Seattle")
    tree.add_path("USA", "WestCoast", "Portland")
    tree.add_path("USA", "Central", "Austin")
    tree.add_path("USA", "Central", "Chicago")
    tree.add_path("USA", "Central", "Denver")
    return tree


def cuisine_ontology() -> OntologyTree:
    """Figure 7(a): the food-preference taxonomy."""
    tree = OntologyTree(root="Restaurants")
    tree.add_path("MiddleEastern", "Falafel")
    tree.add_path("MiddleEastern", "Gyro")
    tree.add_path("Mediterranean", "Greek", "Souvlaki")
    tree.add_path("Mediterranean", "Italian", "Pasta")
    tree.add_path("Mediterranean", "Italian", "Pizza")
    return tree


# ----------------------------------------------------------------------
# Q2': supply chain
# ----------------------------------------------------------------------
Q2_TABLES = ("supplier", "part", "partsupp")

Q2_JOINS = (
    JoinSpec("supplier.s_suppkey", "partsupp.ps_suppkey"),
    JoinSpec("part.p_partkey", "partsupp.ps_partkey"),
)


def q2_prime_query(
    database: Database,
    target: float = 100_000,
    acctbal_bound: float = 2000.0,
    retailprice_bound: float = 1000.0,
) -> Query:
    """Example 2's Q2' with numeric flexible predicates.

    ``(s_acctbal < 2000)`` and ``(p_retailprice < 1000)`` refine;
    the equi-joins are NOREFINE, matching the paper's encoding. The
    paper's categorical NOREFINE predicates (p_size, p_type) are kept
    as a fixed numeric p_size predicate.
    """
    supplier_stats = database.column_stats("supplier", "s_acctbal")
    part_stats = database.column_stats("part", "p_retailprice")
    size_stats = database.column_stats("part", "p_size")
    predicates = [
        JoinPredicate(
            name="j_supp",
            left=col("supplier.s_suppkey"),
            right=col("partsupp.ps_suppkey"),
            refinable=False,
        ),
        JoinPredicate(
            name="j_part",
            left=col("part.p_partkey"),
            right=col("partsupp.ps_partkey"),
            refinable=False,
        ),
        SelectPredicate(
            name="acctbal",
            expr=col("supplier.s_acctbal"),
            interval=Interval(supplier_stats.min_value, acctbal_bound),
            direction=Direction.UPPER,
            denominator=max(supplier_stats.width, 1e-9),
        ),
        SelectPredicate(
            name="retailprice",
            expr=col("part.p_retailprice"),
            interval=Interval(part_stats.min_value, retailprice_bound),
            direction=Direction.UPPER,
            denominator=max(part_stats.width, 1e-9),
        ),
        SelectPredicate(
            name="size",
            expr=col("part.p_size"),
            interval=Interval(size_stats.min_value, 10.0),
            direction=Direction.UPPER,
            refinable=False,
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("SUM"), col("partsupp.ps_availqty")),
        ConstraintOp.GE,
        target,
    )
    return Query.build("q2_prime", Q2_TABLES, predicates, constraint)


def q3_join_query(
    database: Database,
    left_table: str = "a",
    right_table: str = "b",
    y_bound: float = 50.0,
    target: float = 1000,
) -> Query:
    """Section 2.2's Q3: ``A.x = B.x AND B.y < 50`` with both the join
    band and the select bound refinable."""
    y_stats = database.column_stats(right_table, "y")
    predicates = [
        JoinPredicate(
            name="xjoin",
            left=col(f"{left_table}.x"),
            right=col(f"{right_table}.x"),
            refinable=True,
        ),
        SelectPredicate(
            name="yupper",
            expr=col(f"{right_table}.y"),
            interval=Interval(y_stats.min_value, y_bound),
            direction=Direction.UPPER,
            denominator=max(y_stats.width, 1e-9),
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, target
    )
    return Query.build(
        "q3_join", (left_table, right_table), predicates, constraint
    )


def tpch_predicate_pool(selectivity: float = 0.5) -> list[FlexSpec]:
    """Ordered pool of flexible predicates for the dimensionality sweep.

    All live on the supplier x part x partsupp join; the Figure 9
    experiment takes the first d of them.
    """
    return [
        FlexSpec("part.p_retailprice", selectivity),
        FlexSpec("supplier.s_acctbal", selectivity),
        FlexSpec("partsupp.ps_supplycost", selectivity),
        FlexSpec("part.p_size", selectivity),
        FlexSpec("partsupp.ps_availqty", selectivity),
    ]


def q2_flex_specs(
    d: int, selectivity: float = 0.5, pool: Optional[Sequence[FlexSpec]] = None
) -> list[FlexSpec]:
    """First ``d`` predicates of the pool (1 <= d <= 5)."""
    pool = list(pool) if pool is not None else tpch_predicate_pool(selectivity)
    if not 1 <= d <= len(pool):
        raise DataGenError(f"d must be in 1..{len(pool)}, got {d}")
    return pool[:d]


# ----------------------------------------------------------------------
# A second workload family: order lines
# ----------------------------------------------------------------------
LINEITEM_JOINS = (JoinSpec("lineitem.l_orderkey", "orders.o_orderkey"),)


def lineitem_flex_specs(
    d: int, selectivity: float = 0.5, with_orders: bool = False
) -> list[FlexSpec]:
    """Flexible predicates over lineitem (optionally plus orders).

    A different query shape from Q2's star join: a single wide fact
    table, or a two-table FK join when ``with_orders`` pulls in
    ``o_totalprice``. Used by the shape-robustness experiment.
    """
    pool = [
        FlexSpec("lineitem.l_quantity", selectivity),
        FlexSpec("lineitem.l_extendedprice", selectivity),
        FlexSpec("lineitem.l_discount", selectivity),
        FlexSpec("lineitem.l_shipdate", selectivity),
    ]
    if with_orders:
        pool.insert(2, FlexSpec("orders.o_totalprice", selectivity))
    if not 1 <= d <= len(pool):
        raise DataGenError(f"d must be in 1..{len(pool)}, got {d}")
    return pool[:d]
