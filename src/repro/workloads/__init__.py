"""Experiment workloads: paper query templates and ratio-controlled ACQs."""

from repro.workloads.generator import (
    WorkloadSpec,
    build_ratio_workload,
    original_aggregate,
)
from repro.workloads.templates import (
    q1_prime_text,
    q2_prime_query,
    q3_join_query,
    tpch_predicate_pool,
)

__all__ = [
    "WorkloadSpec",
    "build_ratio_workload",
    "original_aggregate",
    "q1_prime_text",
    "q2_prime_query",
    "q3_join_query",
    "tpch_predicate_pool",
]
