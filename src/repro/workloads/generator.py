"""Ratio-controlled workload construction (paper section 8.3).

"For each dataset, query, and ACQUIRE settings, we define the original
aggregate Aactual and the aggregate ratio Aactual/Aexp." This module
does exactly that: build a query from quantile-placed predicate bounds,
measure its original aggregate once, then set the constraint target so
the requested ratio holds.

Predicate PScore denominators are set to the attribute's full domain
width, so a PScore of ``s`` always means "expanded by s% of the
attribute domain" — keeping refinement scores commensurate across
attributes of very different scales (the stated purpose of Equation 1's
relative measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import (
    Direction,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import DataGenError


@dataclass(frozen=True)
class FlexSpec:
    """One flexible predicate: ``table.column <= quantile(q)``.

    ``direction`` may be LOWER for ``>=`` predicates; the bound is then
    placed at quantile ``1 - q`` so selectivity stays ``q``.
    """

    column: str  # "table.column"
    selectivity: float = 0.5
    direction: Direction = Direction.UPPER
    weight: float = 1.0
    limit: Optional[float] = None


@dataclass(frozen=True)
class JoinSpec:
    """One join predicate: ``left = right`` (NOREFINE by default)."""

    left: str
    right: str
    refinable: bool = False
    tolerance: float = 0.0


@dataclass
class WorkloadSpec:
    """A fully-built experimental workload."""

    name: str
    query: Query
    ratio: float
    original_value: float

    @property
    def target(self) -> float:
        return self.query.constraint.target


def original_aggregate(database: Database, query: Query) -> float:
    """Execute the unrefined query once and return its aggregate."""
    layer = MemoryBackend(database)
    prepared = layer.prepare(query, [0.0] * query.dimensionality)
    state = layer.execute_box(prepared, (0.0,) * query.dimensionality)
    return query.constraint.spec.aggregate.finalize(state)


def build_ratio_workload(
    database: Database,
    tables: Sequence[str],
    flexible: Sequence[FlexSpec],
    ratio: float,
    aggregate: str = "COUNT",
    aggregate_attr: Optional[str] = None,
    joins: Sequence[JoinSpec] = (),
    op: ConstraintOp = ConstraintOp.EQ,
    name: Optional[str] = None,
) -> WorkloadSpec:
    """Build a query whose ``Aactual / Aexp`` equals ``ratio``.

    Args:
        tables: FROM-clause relations.
        flexible: the d refinable select predicates.
        ratio: desired ``Aactual / Aexp`` in (0, 1] for expansion
            workloads; values > 1 produce contraction workloads.
        aggregate: OSP aggregate name.
        aggregate_attr: "table.column" the aggregate reads (None for
            COUNT).
        joins: join predicates (NOREFINE equi-joins by default).
    """
    if ratio <= 0:
        raise DataGenError(f"aggregate ratio must be positive, got {ratio}")
    if not flexible:
        raise DataGenError("a workload needs at least one flexible predicate")

    predicates: list[Predicate] = []
    for index, join in enumerate(joins):
        predicates.append(
            JoinPredicate(
                name=f"join_{index}",
                left=col(join.left),
                right=col(join.right),
                tolerance=join.tolerance,
                refinable=join.refinable,
            )
        )
    for index, spec in enumerate(flexible):
        predicates.append(
            _flexible_predicate(database, spec, f"flex_{index}")
        )

    agg = get_aggregate(aggregate)
    attr_expr = col(aggregate_attr) if aggregate_attr is not None else None
    placeholder = AggregateConstraint(
        AggregateSpec(agg, attr_expr), op, target=1.0
    )
    query = Query.build(
        name or f"wl_{aggregate.lower()}_{ratio:g}", tables, predicates,
        placeholder,
    )

    actual = original_aggregate(database, query)
    if not actual or actual != actual:  # zero or NaN
        raise DataGenError(
            "original query is empty; raise the flexible predicates' "
            "selectivities"
        )
    target = actual / ratio
    constraint = AggregateConstraint(
        AggregateSpec(agg, attr_expr), op, target=target
    )
    return WorkloadSpec(
        name=query.name,
        query=query.with_constraint(constraint),
        ratio=ratio,
        original_value=actual,
    )


def _flexible_predicate(
    database: Database, spec: FlexSpec, name: str
) -> SelectPredicate:
    table, column = spec.column.split(".", 1)
    stats = database.column_stats(table, column)
    if stats.count == 0:
        raise DataGenError(f"column {spec.column!r} is empty")
    if not 0 < spec.selectivity <= 1:
        raise DataGenError(
            f"selectivity must be in (0, 1], got {spec.selectivity}"
        )
    if spec.direction is Direction.UPPER:
        bound = stats.quantile_value(spec.selectivity)
        interval = Interval(stats.min_value, bound)
    elif spec.direction is Direction.LOWER:
        bound = stats.quantile_value(1.0 - spec.selectivity)
        interval = Interval(bound, stats.max_value)
    else:
        raise DataGenError("flexible predicates are one-sided (UPPER/LOWER)")
    return SelectPredicate(
        name=name,
        expr=col(spec.column),
        interval=interval,
        direction=spec.direction,
        weight=spec.weight,
        limit=spec.limit,
        denominator=max(stats.width, 1e-9),
    )
