"""Command-line interface: run an ACQ against CSV data.

Example::

    python -m repro --csv users=users.csv \\
        "SELECT * FROM users CONSTRAINT COUNT(*) = 1000 \\
         WHERE age <= 30 AND income <= 50000"

Loads each CSV into the in-memory engine (column types inferred), binds
and runs the ACQ, prints the recommended refined queries, and — with
``--show-rows N`` — the first N result tuples of the best alternative.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Iterable, Optional

import numpy as np

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.scoring import LInfNorm, LpNorm
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import DataGenError, ReproError
from repro.sqlext import format_refined_query, parse_acq


def load_csv(database: Database, name: str, path: str) -> None:
    """Load one CSV file as a table, inferring column types.

    A column is INT if every value parses as an integer, FLOAT if every
    value parses as a number, STR otherwise. Empty cells are not
    supported (the engine has no NULLs, matching the paper's model).
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataGenError(f"{path}: empty CSV") from None
        rows = list(reader)
    if not header:
        raise DataGenError(f"{path}: no columns")
    columns: dict[str, np.ndarray] = {}
    for index, column in enumerate(header):
        raw = [row[index] for row in rows]
        columns[column.strip()] = _infer_column(raw, column, path)
    database.create_table(name, columns)


def _infer_column(raw: Iterable[str], column: str, path: str) -> np.ndarray:
    values = list(raw)
    if any(value.strip() == "" for value in values):
        raise DataGenError(
            f"{path}: column {column!r} has empty cells (NULLs are not "
            "supported)"
        )
    try:
        return np.array([int(value) for value in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(value) for value in values])
    except ValueError:
        return np.array([value.strip() for value in values], dtype=object)


def _parse_csv_spec(spec: str) -> tuple[str, str]:
    name, separator, path = spec.partition("=")
    if not separator or not name or not path:
        raise ReproError(
            f"--csv expects NAME=PATH, got {spec!r}"
        )
    return name, path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Process an Aggregation Constrained Query over CSVs.",
    )
    parser.add_argument(
        "sql",
        help="ACQ text (the paper's dialect: CONSTRAINT / NOREFINE)",
    )
    parser.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a CSV file as table NAME (repeatable)",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
    )
    parser.add_argument("--gamma", type=float, default=10.0,
                        help="refinement threshold (default 10)")
    parser.add_argument("--delta", type=float, default=0.05,
                        help="aggregate error threshold (default 0.05)")
    parser.add_argument(
        "--norm",
        default="l1",
        help="QScore norm: l1, l2, ... lp (any p>=1), or linf",
    )
    parser.add_argument("--alternatives", type=int, default=3,
                        help="how many refined queries to print")
    parser.add_argument("--show-rows", type=int, default=0,
                        metavar="N",
                        help="print the first N tuples of the best answer")
    return parser


def _norm_from_name(name: str):
    lowered = name.lower()
    if lowered == "linf":
        return LInfNorm()
    if lowered.startswith("l"):
        try:
            return LpNorm(float(lowered[1:]))
        except ValueError:
            pass
    raise ReproError(f"unknown norm {name!r} (use l1, l2, lp, or linf)")


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    database = Database("cli")
    for spec in args.csv:
        name, path = _parse_csv_spec(spec)
        load_csv(database, name, path)
    if not database.table_names:
        print("error: no tables loaded; pass --csv NAME=PATH",
              file=sys.stderr)
        return 2

    query = parse_acq(args.sql, database)
    layer = (
        MemoryBackend(database)
        if args.backend == "memory"
        else SQLiteBackend(database)
    )
    config = AcquireConfig(
        gamma=args.gamma, delta=args.delta, norm=_norm_from_name(args.norm)
    )
    acquire = Acquire(layer)
    result = acquire.run(query, config)

    print(result.summary())
    shown = result.answers[: args.alternatives] or (
        [result.closest] if result.closest else []
    )
    for index, answer in enumerate(shown, start=1):
        print(f"\n-- alternative {index}: A={answer.aggregate_value:g}, "
              f"QScore={answer.qscore:.2f}, err={answer.error:.4f}")
        print(format_refined_query(answer))

    if args.show_rows > 0 and result.best is not None:
        prepared = layer.prepare(
            query, [config.dim_cap_default] * query.dimensionality
        )
        rows = layer.fetch_rows(
            prepared, result.best.pscores, limit=args.show_rows
        )
        print(f"\n-- first {len(rows)} result tuples of the best answer --")
        for row in rows:
            print("  " + ", ".join(f"{k}={v}" for k, v in row.items()))
    return 0 if result.satisfied else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
