"""Command-line interface: run or lint an ACQ against CSV data.

Run an ACQ::

    python -m repro --csv users=users.csv \\
        "SELECT * FROM users CONSTRAINT COUNT(*) = 1000 \\
         WHERE age <= 30 AND income <= 50000"

Loads each CSV into the in-memory engine (column types inferred), binds
and runs the ACQ, prints the recommended refined queries, and — with
``--show-rows N`` — the first N result tuples of the best alternative.
Pass ``--analyze`` to statically pre-check the query (see below) before
executing; ERROR diagnostics abort the run with exit code 2.

Lint an ACQ without running it::

    python -m repro lint --csv users=users.csv query.sql

``lint`` accepts a path to a ``.sql`` file, ``-`` for stdin, or inline
SQL text, runs the :mod:`repro.analysis` static analyzer against the
loaded catalog, prints the diagnostics (``--json`` for machine-readable
output) and exits 1 when ERROR-level diagnostics exist (``--strict``
also fails on warnings).

Load-generate against the concurrent service driver::

    python -m repro serve-bench --requests 8 --workers 4 --rps 40

``serve-bench`` stands up an :class:`repro.service.AcquireService`
over corpus-sampled ACQs and replays an open-loop arrival schedule
through it, printing completion counts, p50/p99 latency, throughput,
and the shared-cache dedupe hit rate (see docs/SERVICE.md).
``--fusion`` additionally coalesces compatible fetches from
concurrent requests into merged backend passes and reports the fused
counters (``--fusion-window-ms`` caps the batching window).
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import Iterable, Optional

import numpy as np

from repro.analysis import analyze_sql
from repro.core.acquire import Acquire, AcquireConfig
from repro.core.grid_cache import (
    DEFAULT_CACHE_BYTES,
    GridTensorCache,
    PersistentGridCache,
)
from repro.core.scoring import LInfNorm, LpNorm
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import DataGenError, ReproError
from repro.sqlext import format_refined_query, parse_acq


def load_csv(database: Database, name: str, path: str) -> None:
    """Load one CSV file as a table, inferring column types.

    A column is INT if every value parses as an integer, FLOAT if every
    value parses as a number, STR otherwise. Empty cells are not
    supported (the engine has no NULLs, matching the paper's model).
    """
    try:
        handle = open(path, newline="", encoding="utf-8")
    except OSError as exc:
        raise DataGenError(f"cannot read CSV {path!r}: {exc}") from None
    with handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataGenError(f"{path}: empty CSV") from None
        rows = list(reader)
    if not header:
        raise DataGenError(f"{path}: no columns")
    columns: dict[str, np.ndarray] = {}
    for index, column in enumerate(header):
        raw = [row[index] for row in rows]
        columns[column.strip()] = _infer_column(raw, column, path)
    database.create_table(name, columns)


def _infer_column(raw: Iterable[str], column: str, path: str) -> np.ndarray:
    values = list(raw)
    if any(value.strip() == "" for value in values):
        raise DataGenError(
            f"{path}: column {column!r} has empty cells (NULLs are not "
            "supported)"
        )
    try:
        return np.array([int(value) for value in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(value) for value in values])
    except ValueError:
        return np.array([value.strip() for value in values], dtype=object)


def _parse_csv_spec(spec: str) -> tuple[str, str]:
    name, separator, path = spec.partition("=")
    if not separator or not name or not path:
        raise ReproError(
            f"--csv expects NAME=PATH, got {spec!r}"
        )
    return name, path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Process an Aggregation Constrained Query over CSVs.",
    )
    parser.add_argument(
        "sql",
        help="ACQ text (the paper's dialect: CONSTRAINT / NOREFINE)",
    )
    parser.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a CSV file as table NAME (repeatable)",
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="memory",
    )
    parser.add_argument("--gamma", type=float, default=10.0,
                        help="refinement threshold (default 10)")
    parser.add_argument("--delta", type=float, default=0.05,
                        help="aggregate error threshold (default 0.05)")
    parser.add_argument(
        "--norm",
        default="l1",
        help="QScore norm: l1, l2, ... lp (any p>=1), or linf",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="execute each search layer's cell queries as one batched "
        "round trip (see docs/PARALLELISM.md)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for batched cell execution on backends "
        "without a native bulk path (N > 1 implies --batched)",
    )
    parser.add_argument(
        "--explore-mode",
        choices=("auto", "incremental", "materialized", "tiled"),
        default="incremental",
        help="Explore engine: per-cell round trips (incremental), one "
        "whole-grid pass (materialized), on-demand sub-grid passes "
        "(tiled), or a cost-model choice (auto); see "
        "docs/EXPLORE_MODES.md",
    )
    parser.add_argument(
        "--grid-cache-mb",
        type=int,
        default=0,
        metavar="MB",
        help="enable the cross-query grid tensor cache with this byte "
        "budget (0 disables); only the materialized/tiled engines "
        "consult it",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        metavar="DIR",
        help="directory for the persistent cross-process grid cache; "
        "repeated invocations over the same data hit warm tensors "
        "(implies the in-memory cache even without --grid-cache-mb)",
    )
    parser.add_argument(
        "--tile-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the sharded tile pipeline (tiled "
        "explore mode); answers are bit-identical at any worker count",
    )
    parser.add_argument(
        "--tile-executor",
        choices=("thread", "process", "auto"),
        default="thread",
        help="worker tier for tiled explore fetches: 'thread' shares "
        "the interpreter, 'process' escapes the GIL via a persistent "
        "worker-process pool over shared memory, 'auto' lets the "
        "calibrated planner pick (needs --tile-workers > 1)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=1,
        metavar="K",
        help="keep exploring until the K best answer layers are "
        "complete, so the printed alternatives are a certified "
        "score-ranked list (default 1: the paper's stopping rule)",
    )
    parser.add_argument("--alternatives", type=int, default=3,
                        help="how many refined queries to print")
    parser.add_argument("--show-rows", type=int, default=0,
                        metavar="N",
                        help="print the first N tuples of the best answer")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="statically analyze the ACQ first; ERROR diagnostics abort "
        "the run (exit 2)",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically analyze an ACQ without executing it.",
    )
    parser.add_argument(
        "source",
        help="path to a .sql file, '-' for stdin, or inline ACQ text",
    )
    parser.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a CSV file as table NAME (repeatable)",
    )
    parser.add_argument("--gamma", type=float, default=10.0,
                        help="refinement threshold used for cost estimates")
    parser.add_argument("--delta", type=float, default=0.05,
                        help="aggregate error threshold (default 0.05)")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit diagnostics as JSON instead of text",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat WARNING diagnostics as failures too",
    )
    return parser


def build_serve_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench",
        description="Load-generate corpus ACQs against AcquireService.",
    )
    parser.add_argument("--requests", type=int, default=8, metavar="N",
                        help="distinct corpus triples to sample (plus "
                        "jittered duplicates; default 8)")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="service worker threads (default 4)")
    parser.add_argument("--max-queue", type=int, default=16, metavar="N",
                        help="admitted-but-waiting slots beyond the "
                        "workers (default 16)")
    parser.add_argument("--rps", type=float, default=40.0,
                        help="open-loop arrival rate in requests/s "
                        "(default 40)")
    parser.add_argument("--seed", type=int, default=7,
                        help="corpus sampling seed (default 7)")
    parser.add_argument(
        "--admission",
        choices=("reject", "wait"),
        default="reject",
        help="backpressure policy when all slots are taken (default "
        "reject; see docs/SERVICE.md)",
    )
    parser.add_argument(
        "--fusion",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="coalesce compatible fetches from concurrent requests "
        "into merged backend passes (default off; see the "
        "Cross-query fusion section of docs/SERVICE.md)",
    )
    parser.add_argument(
        "--fusion-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="cap on the fusion batching window (default 2.0; the "
        "effective window adapts below it from observed pass latency)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    return parser


def serve_bench_main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro serve-bench`` — open-loop corpus load demo."""
    from repro.service import (
        AcquireService,
        ServiceConfig,
        run_open_loop,
        sample_corpus_requests,
    )

    args = build_serve_bench_parser().parse_args(argv)
    service = AcquireService(
        ServiceConfig(
            workers=args.workers,
            max_queue=args.max_queue,
            admission=args.admission,
            fusion=args.fusion,
            fusion_window_ms=args.fusion_window_ms,
        )
    )
    try:
        requests = sample_corpus_requests(
            service, args.requests, seed=args.seed
        )
        report = run_open_loop(
            service, requests, inter_arrival_s=1.0 / max(args.rps, 1e-9)
        )
        cache = service.grid_cache
        hits = cache.hits + cache.persistent_hits if cache else 0
        misses = cache.misses if cache else 0
        stats = service.stats()
    finally:
        service.close()
    summary = {
        "requests": len(requests),
        "completed": report.completed,
        "rejected": report.rejected,
        "wall_s": round(report.wall_s, 4),
        "throughput_rps": round(report.throughput_rps, 2),
        "p50_ms": round(report.latency_ms(0.50), 3),
        "p99_ms": round(report.latency_ms(0.99), 3),
        "shared_cache_hits": hits,
        "shared_cache_misses": misses,
        "dedupe_hit_rate": round(
            hits / (hits + misses) if hits + misses else 0.0, 4
        ),
        "peak_in_flight": stats.peak_in_flight,
        "fused_passes": report.fused_passes,
        "fused_cells": report.fused_cells,
        "fused_groups": stats.fused_groups,
        "fused_fetches": stats.fused_fetches,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"{summary['completed']}/{summary['requests']} requests "
            f"completed ({summary['rejected']} rejected) in "
            f"{summary['wall_s']}s — {summary['throughput_rps']} req/s"
        )
        print(
            f"latency p50 {summary['p50_ms']}ms, p99 {summary['p99_ms']}ms; "
            f"peak in-flight {summary['peak_in_flight']}"
        )
        print(
            f"shared cache: {hits} hits / {misses} misses "
            f"(dedupe hit rate {summary['dedupe_hit_rate']})"
        )
        if args.fusion:
            print(
                f"fusion: {summary['fused_groups']} shared groups "
                f"merged {summary['fused_fetches']} fetches "
                f"({summary['fused_passes']} fused passes, "
                f"{summary['fused_cells']} cells)"
            )
    return 0 if report.completed == len(requests) else 1


def _norm_from_name(name: str):
    lowered = name.lower()
    if lowered == "linf":
        return LInfNorm()
    if lowered.startswith("l"):
        try:
            return LpNorm(float(lowered[1:]))
        except ValueError:
            pass
    raise ReproError(f"unknown norm {name!r} (use l1, l2, lp, or linf)")


def _load_tables(database: Database, specs: Iterable[str]) -> bool:
    """Load every --csv spec; False when no tables ended up loaded."""
    for spec in specs:
        name, path = _parse_csv_spec(spec)
        load_csv(database, name, path)
    if not database.table_names:
        print("error: no tables loaded; pass --csv NAME=PATH",
              file=sys.stderr)
        return False
    return True


def _read_lint_source(argument: str) -> str:
    """The lint operand: a file path, '-' (stdin), or inline SQL."""
    if argument == "-":
        return sys.stdin.read()
    if os.path.exists(argument):
        with open(argument, encoding="utf-8") as handle:
            return handle.read()
    return argument


def lint_main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro lint`` — analyze an ACQ without running it.

    ``--engine`` switches to the self-lint: the engine-invariant
    static analysis over the repro source tree itself
    (:mod:`repro.analysis.engine_lint`).
    """
    if argv is not None and "--engine" in argv:
        from repro.analysis.engine_lint import engine_lint_main

        rest = [arg for arg in argv if arg != "--engine"]
        return engine_lint_main(rest)
    args = build_lint_parser().parse_args(argv)
    database = Database("lint")
    if not _load_tables(database, args.csv):
        return 2
    sql = _read_lint_source(args.source)
    config = AcquireConfig(gamma=args.gamma, delta=args.delta)
    report = analyze_sql(sql, database, config=config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    failed = report.has_errors or (args.strict and report.warnings)
    return 1 if failed else 0


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    database = Database("cli")
    if not _load_tables(database, args.csv):
        return 2

    if args.analyze:
        report = analyze_sql(args.sql, database)
        print(report.render())
        if report.has_errors:
            print("error: pre-flight analysis failed; not executing",
                  file=sys.stderr)
            return 2
        print()

    query = parse_acq(args.sql, database)
    layer = (
        MemoryBackend(database)
        if args.backend == "memory"
        else SQLiteBackend(database)
    )
    persistent = (
        PersistentGridCache(args.cache_path) if args.cache_path else None
    )
    cache = (
        GridTensorCache(
            args.grid_cache_mb * 1024 * 1024
            if args.grid_cache_mb > 0
            else DEFAULT_CACHE_BYTES,
            persistent=persistent,
        )
        if args.grid_cache_mb > 0 or persistent is not None
        else None
    )
    config = AcquireConfig(
        gamma=args.gamma,
        delta=args.delta,
        norm=_norm_from_name(args.norm),
        batched=args.batched,
        parallelism=args.parallelism,
        explore_mode=args.explore_mode,
        grid_cache=cache,
        tile_workers=args.tile_workers,
        tile_executor=args.tile_executor,
        top_k=args.top_k,
    )
    acquire = Acquire(layer)
    result = acquire.run(query, config)

    print(result.summary())
    shown = result.answers[: max(args.alternatives, args.top_k)] or (
        [result.closest] if result.closest else []
    )
    for index, answer in enumerate(shown, start=1):
        print(f"\n-- alternative {index}: A={answer.aggregate_value:g}, "
              f"QScore={answer.qscore:.2f}, err={answer.error:.4f}")
        print(format_refined_query(answer))

    if args.show_rows > 0 and result.best is not None:
        prepared = layer.prepare(
            query, [config.dim_cap_default] * query.dimensionality
        )
        rows = layer.fetch_rows(
            prepared, result.best.pscores, limit=args.show_rows
        )
        print(f"\n-- first {len(rows)} result tuples of the best answer --")
        for row in rows:
            print("  " + ", ".join(f"{k}={v}" for k, v in row.items()))
    return 0 if result.satisfied else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
