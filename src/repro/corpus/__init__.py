"""Gold-standard ACQ corpus: generator, exhaustive oracle, quality gate.

The corpus is the reproduction's ground-truth anchor: a committed set
of (dataset, ACQ, known-optimal refinement) triples whose labels are
certified by brute-force enumeration of the full refinement lattice —
completely independent of the Expand/Explore machinery under test.

* :mod:`repro.corpus.generator` — seeded triple generator spanning
  expansion, contraction, categorical/ontology and multi-constraint
  families;
* :mod:`repro.corpus.oracle` — exhaustive enumeration and ranking of
  every lattice point (:func:`certify`);
* :mod:`repro.corpus.manifest` — JSON (de)serialization of the corpus
  with dataset digests;
* :mod:`repro.corpus.gate` — the quality-regression gate: re-certifies
  every committed label and asserts all four Explore engine
  configurations return oracle-optimal, stably-ranked top-k answers
  (``make corpus-gate`` / ``python -m repro.corpus gate``).
"""

from repro.corpus.generator import (
    TripleSpec,
    build_database,
    build_ontologies,
    realize,
    sample_specs,
)
from repro.corpus.manifest import (
    CorpusManifest,
    LabeledTriple,
    build_manifest,
    load_manifest,
    save_manifest,
)
from repro.corpus.oracle import (
    DEFAULT_MAX_POINTS,
    OracleCertificate,
    OracleEntry,
    certify,
)
from repro.corpus.gate import GateReport, TripleCheck, run_gate

__all__ = [
    "TripleSpec",
    "build_database",
    "build_ontologies",
    "realize",
    "sample_specs",
    "CorpusManifest",
    "LabeledTriple",
    "build_manifest",
    "load_manifest",
    "save_manifest",
    "DEFAULT_MAX_POINTS",
    "OracleCertificate",
    "OracleEntry",
    "certify",
    "GateReport",
    "TripleCheck",
    "run_gate",
]
