"""Seeded generator of gold-standard (dataset, ACQ, label) triples.

Every triple is fully determined by a :class:`TripleSpec` — a small,
JSON-serializable recipe holding the dataset parameters and the ACQ
dialect text. :func:`sample_specs` draws a corpus of specs across four
families:

* ``expansion`` — ``>=`` / ``=`` constraints the driver answers by
  expanding predicates (1-3 dimensions, uniform and Zipf-skewed data);
* ``contraction`` — ``<=`` constraints plus monotone equality
  constraints whose original query overshoots (the EQ-delegation path);
* ``categorical`` — ontology-driven refinement of string predicates on
  the advertising ``users`` table, with the two-level ``cities``
  taxonomy and the depth-1 flat fallback;
* ``multi`` — conjunctions ``CONSTRAINT c1 AND c2`` exercising the
  multi-constraint distance.

Satisfiability by construction: targets are *planted*. The generator
picks a random lattice point ``p`` of the triple's own refinement grid,
measures the true aggregate(s) there with direct box queries, and uses
the measured values as constraint targets — so ``p`` has zero error and
the oracle is guaranteed a non-empty ranking. Corpus configs run with
``repartition_iterations=0`` so every driver answer stays on the
lattice the oracle enumerates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

from repro.core.acquire import AcquireConfig
from repro.core.contraction import ContractionSpace
from repro.core.ontology import OntologyTree
from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.corpus import oracle as corpus_oracle
from repro.datagen.synthetic import numeric_table, users_table
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import CorpusError
from repro.sqlext import parse_acq

#: Ranking depth every corpus triple is labeled (and gated) at.
CORPUS_TOP_K = 3

#: Retry budget for planting a target that meets a family's invariants
#: (non-zero aggregate, genuine overshoot for EQ-contraction, ...).
_PLANT_ATTEMPTS = 48


@dataclass(frozen=True)
class TripleSpec:
    """Recipe for one corpus triple; everything needed to rebuild it.

    ``dataset`` is a JSON-able mapping understood by
    :func:`build_database` (``kind`` plus generator parameters);
    ``ontology`` names a taxonomy from :func:`build_ontologies`.
    """

    triple_id: str
    family: str  # expansion | contraction | categorical | multi
    dataset: Mapping[str, object]
    sql: str
    gamma: float
    delta: float
    top_k: int = CORPUS_TOP_K
    ontology: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "triple_id": self.triple_id,
            "family": self.family,
            "dataset": dict(self.dataset),
            "sql": self.sql,
            "gamma": self.gamma,
            "delta": self.delta,
            "top_k": self.top_k,
            "ontology": self.ontology,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "TripleSpec":
        return cls(
            triple_id=str(data["triple_id"]),
            family=str(data["family"]),
            dataset=dict(data["dataset"]),  # type: ignore[call-overload]
            sql=str(data["sql"]),
            gamma=float(data["gamma"]),  # type: ignore[arg-type]
            delta=float(data["delta"]),  # type: ignore[arg-type]
            top_k=int(data.get("top_k", CORPUS_TOP_K)),  # type: ignore[arg-type]
            ontology=(
                None if data.get("ontology") is None
                else str(data["ontology"])
            ),
        )


# ----------------------------------------------------------------------
# Dataset and ontology realization
# ----------------------------------------------------------------------
_DATABASE_CACHE: dict[tuple, Database] = {}


def _dataset_key(dataset: Mapping[str, object]) -> tuple:
    return tuple(sorted(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in dataset.items()
    ))


def build_database(dataset: Mapping[str, object]) -> Database:
    """Rebuild (and memoize) the catalog database a spec describes."""
    key = _dataset_key(dataset)
    cached = _DATABASE_CACHE.get(key)
    if cached is not None:
        return cached
    kind = dataset.get("kind")
    if kind == "numeric":
        database = Database("corpus")
        database.add_table(numeric_table(
            name=str(dataset.get("name", "data")),
            n=int(dataset["n"]),  # type: ignore[arg-type]
            columns=tuple(dataset.get("columns", ("x", "y", "z"))),
            low=float(dataset.get("low", 0.0)),  # type: ignore[arg-type]
            high=float(dataset.get("high", 100.0)),  # type: ignore[arg-type]
            seed=int(dataset["seed"]),  # type: ignore[arg-type]
            zipf_z=float(dataset.get("zipf_z", 0.0)),  # type: ignore[arg-type]
        ))
    elif kind == "users":
        database = users_table(
            n=int(dataset["n"]),  # type: ignore[arg-type]
            seed=int(dataset["seed"]),  # type: ignore[arg-type]
        )
    else:
        raise CorpusError(f"unknown corpus dataset kind {kind!r}")
    _DATABASE_CACHE[key] = database
    return database


def build_ontologies(
    name: Optional[str],
) -> Optional[Mapping[str, OntologyTree]]:
    """Named taxonomies a spec may bind its categorical predicates to."""
    if name is None:
        return None
    if name == "cities":
        # Two-level roll-up over the users_table city column: value ->
        # region -> USA, so one refinement level admits a whole region.
        tree = OntologyTree.from_mapping(
            {
                "USA": ["East", "West", "Central"],
                "East": ["Boston", "NewYork", "Miami"],
                "West": ["Seattle", "Portland", "Denver"],
                "Central": ["Austin", "Chicago"],
            },
            root="USA",
        )
        return {"city": tree}
    raise CorpusError(f"unknown corpus ontology {name!r}")


def realize(
    spec: TripleSpec,
) -> tuple[Database, Query, AcquireConfig]:
    """Turn a spec into the concrete (database, query, config) triple.

    The config pins ``repartition_iterations=0`` (answers stay on the
    oracle's lattice) and the spec's ``top_k``.
    """
    database = build_database(spec.dataset)
    query = parse_acq(
        spec.sql,
        database,
        build_ontologies(spec.ontology),
        name=spec.triple_id,
    )
    config = AcquireConfig(
        gamma=spec.gamma,
        delta=spec.delta,
        repartition_iterations=0,
        top_k=spec.top_k,
    )
    return database, query, config


# ----------------------------------------------------------------------
# Target planting
# ----------------------------------------------------------------------
def _format_target(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    # repr round-trips the float exactly, so a planted target measured
    # at a lattice point has error 0.0 there even under delta == 0.
    return repr(float(value))


def _random_coords(
    rng: random.Random, max_coords: Sequence[int]
) -> tuple[int, ...]:
    """A random lattice point, biased off the origin when possible."""
    coords = tuple(rng.randint(0, limit) for limit in max_coords)
    if any(coords) or not any(max_coords):
        return coords
    dim = rng.randrange(len(max_coords))
    bumped = list(coords)
    bumped[dim] = rng.randint(1, max_coords[dim])
    return tuple(bumped)


def _plant_targets(
    spec_sql: str,
    spec: TripleSpec,
    targets_needed: int,
    contraction: bool,
    rng: random.Random,
    accept,
) -> str:
    """Fill the ``{t0}``/``{t1}`` slots of a template with measured
    aggregates at a random lattice point, retrying until ``accept``
    (which sees the measured values and the originals) is happy."""
    database = build_database(spec.dataset)
    layer = MemoryBackend(database)
    probe_sql = spec_sql.format(
        **{f"t{i}": "1" for i in range(targets_needed)}
    )
    query = parse_acq(
        probe_sql, database, build_ontologies(spec.ontology),
        name=spec.triple_id,
    )
    config = AcquireConfig(
        gamma=spec.gamma, delta=spec.delta, repartition_iterations=0,
    )
    if contraction:
        space: ContractionSpace | RefinedSpace = ContractionSpace(
            query, config.gamma, config.norm, config.step
        )
    else:
        dim_caps = [
            predicate.limit if predicate.limit is not None
            else config.dim_cap_default
            for predicate in query.refinable_predicates
        ]
        prepared = layer.prepare(query, dim_caps)
        useful = layer.useful_max_scores(prepared)
        max_scores = [
            min(cap, score) for cap, score in zip(dim_caps, useful)
        ]
        space = RefinedSpace(
            query, config.gamma, max_scores, config.norm, config.step
        )
    originals = corpus_oracle.grid_point_values(
        layer, query, config, (0,) * query.dimensionality, contraction
    )
    for _ in range(_PLANT_ATTEMPTS):
        coords = _random_coords(rng, space.max_coords)
        values = corpus_oracle.grid_point_values(
            layer, query, config, coords, contraction
        )
        if any(value <= 0 or not math.isfinite(value) for value in values):
            continue
        if not accept(values, originals):
            continue
        return spec_sql.format(
            **{
                f"t{i}": _format_target(value)
                for i, value in enumerate(values)
            }
        )
    raise CorpusError(
        f"could not plant a target for {spec.triple_id} "
        f"({spec.family}) within {_PLANT_ATTEMPTS} attempts"
    )


# ----------------------------------------------------------------------
# Family samplers
# ----------------------------------------------------------------------
_NUMERIC_COLUMNS = ("x", "y", "z")


def _numeric_dataset(rng: random.Random) -> dict:
    return {
        "kind": "numeric",
        "name": "data",
        "n": rng.choice([60, 90, 120, 160]),
        "columns": ["x", "y", "z"],
        "seed": rng.randrange(10_000),
        "zipf_z": rng.choice([0.0, 0.0, 1.0]),
    }


def _numeric_predicates(rng: random.Random, dims: int) -> list[str]:
    columns = list(_NUMERIC_COLUMNS[:dims])
    rng.shuffle(columns)
    parts = []
    for column in columns:
        if rng.random() < 0.5:
            bound = rng.choice([25, 30, 40, 50])
            parts.append(f"(data.{column} <= {bound})")
        else:
            bound = rng.choice([50, 60, 70, 75])
            parts.append(f"(data.{column} >= {bound})")
    return parts


def _aggregate_term(rng: random.Random, dims: int) -> str:
    # Aggregate over a column not used by the predicates when possible,
    # so SUM targets move smoothly with the box.
    pool = _NUMERIC_COLUMNS[dims:] or _NUMERIC_COLUMNS
    column = rng.choice(list(pool))
    return rng.choice(["COUNT(*)", f"SUM(data.{column})"])


def _delta_for(rng: random.Random, aggregate_term: str) -> float:
    """delta == 0 demands bit-exact aggregates, which only COUNT(*)
    guarantees across the engines' different summation orders."""
    if aggregate_term.startswith("COUNT"):
        return float(rng.choice([0.0, 0.02, 0.05]))
    return float(rng.choice([0.02, 0.05]))


def _sample_expansion(rng: random.Random, triple_id: str) -> TripleSpec:
    dims = rng.choice([1, 2, 2, 3])
    dataset = _numeric_dataset(rng)
    op = rng.choice([">=", ">=", "="])
    aggregate = _aggregate_term(rng, dims)
    template = (
        "SELECT * FROM data\n"
        f"CONSTRAINT {aggregate} {op} {{t0}}\n"
        "WHERE " + " AND ".join(_numeric_predicates(rng, dims))
    )
    spec = TripleSpec(
        triple_id=triple_id,
        family="expansion",
        dataset=dataset,
        sql=template,
        # Three-dimensional lattices get a coarser grid so exhaustive
        # enumeration stays within the oracle's point ceiling.
        gamma=float(
            rng.choice([24.0, 30.0]) if dims == 3
            else rng.choice([10.0, 15.0, 20.0])
        ),
        delta=_delta_for(rng, aggregate),
    )
    sql = _plant_targets(
        template, spec, 1, contraction=False, rng=rng,
        accept=lambda values, originals: True,
    )
    return replace(spec, sql=sql)


def _sample_contraction(rng: random.Random, triple_id: str) -> TripleSpec:
    dims = rng.choice([1, 2, 2])
    dataset = _numeric_dataset(rng)
    op = rng.choice(["<=", "<=", "="])
    aggregate = _aggregate_term(rng, dims)
    delta = _delta_for(rng, aggregate) if op == "<=" else 0.02
    template = (
        "SELECT * FROM data\n"
        f"CONSTRAINT {aggregate} {op} {{t0}}\n"
        "WHERE " + " AND ".join(_numeric_predicates(rng, dims))
    )
    spec = TripleSpec(
        triple_id=triple_id,
        family="contraction",
        dataset=dataset,
        sql=template,
        gamma=float(rng.choice([10.0, 15.0, 20.0])),
        delta=delta,
    )
    if op == "=":
        # The EQ-delegation path needs a genuine overshoot: original
        # strictly beyond target * (1 + delta).
        accept = lambda values, originals: (  # noqa: E731
            originals[0] > values[0] * (1 + delta) + 1e-9
        )
    else:
        accept = lambda values, originals: True  # noqa: E731
    sql = _plant_targets(
        template, spec, 1, contraction=True, rng=rng, accept=accept,
    )
    return replace(spec, sql=sql)


def _sample_categorical(rng: random.Random, triple_id: str) -> TripleSpec:
    dataset = {
        "kind": "users",
        "n": rng.choice([80, 120, 160]),
        "seed": rng.randrange(10_000),
    }
    ontology = rng.choice(["cities", "cities", None])
    if ontology == "cities":
        value = rng.choice(
            ["Boston", "NewYork", "Seattle", "Miami", "Austin"]
        )
        categorical = f"(users.city = '{value}')"
    else:
        value = rng.choice(["Retail", "Sports", "Travel", "Cooking"])
        categorical = f"(users.interest = '{value}')"
    numeric = f"(users.age <= {rng.choice([30, 35, 40])})"
    template = (
        "SELECT * FROM users\n"
        "CONSTRAINT COUNT(*) >= {t0}\n"
        f"WHERE {categorical} AND {numeric}"
    )
    spec = TripleSpec(
        triple_id=triple_id,
        family="categorical",
        dataset=dataset,
        sql=template,
        gamma=float(rng.choice([40.0, 50.0, 60.0])),
        delta=float(rng.choice([0.0, 0.05])),
        ontology=ontology,
    )
    sql = _plant_targets(
        template, spec, 1, contraction=False, rng=rng,
        accept=lambda values, originals: True,
    )
    return replace(spec, sql=sql)


def _sample_multi(rng: random.Random, triple_id: str) -> TripleSpec:
    dims = rng.choice([1, 2, 2])
    dataset = _numeric_dataset(rng)
    extra_column = rng.choice(list(_NUMERIC_COLUMNS[dims:] or ("z",)))
    extra_op = rng.choice([">=", "<="])
    template = (
        "SELECT * FROM data\n"
        "CONSTRAINT COUNT(*) >= {t0} "
        f"AND SUM(data.{extra_column}) {extra_op} {{t1}}\n"
        "WHERE " + " AND ".join(_numeric_predicates(rng, dims))
    )
    spec = TripleSpec(
        triple_id=triple_id,
        family="multi",
        dataset=dataset,
        sql=template,
        gamma=float(rng.choice([10.0, 15.0, 20.0])),
        # The extra constraint is always a SUM, so delta must leave
        # room for cross-engine summation-order noise (see _delta_for).
        delta=float(rng.choice([0.02, 0.05])),
    )
    # Both targets measured at the same lattice point, so the combined
    # (max) distance is exactly zero there: conjunction satisfiable.
    sql = _plant_targets(
        template, spec, 2, contraction=False, rng=rng,
        accept=lambda values, originals: True,
    )
    return replace(spec, sql=sql)


_FAMILY_SAMPLERS = {
    "expansion": _sample_expansion,
    "contraction": _sample_contraction,
    "categorical": _sample_categorical,
    "multi": _sample_multi,
}

#: Family mix of the default committed corpus (sums to 205 triples).
DEFAULT_COUNTS = {
    "expansion": 60,
    "contraction": 50,
    "categorical": 45,
    "multi": 50,
}


def sample_specs(
    seed: int = 0,
    counts: Optional[Mapping[str, int]] = None,
) -> list[TripleSpec]:
    """Draw a deterministic corpus of specs (same seed, same corpus).

    Per-triple RNGs are derived from ``(seed, family, index)`` strings,
    so single triples can be regenerated without replaying the stream
    and adding a family never perturbs the others.
    """
    counts = dict(DEFAULT_COUNTS if counts is None else counts)
    specs: list[TripleSpec] = []
    for family in sorted(counts):
        sampler = _FAMILY_SAMPLERS.get(family)
        if sampler is None:
            raise CorpusError(f"unknown corpus family {family!r}")
        for index in range(counts[family]):
            triple_id = f"{family}-{seed:04d}-{index:03d}"
            rng = random.Random(f"{seed}:{family}:{index}")
            specs.append(sampler(rng, triple_id))
    return specs
