"""Command-line entry point: ``python -m repro.corpus {gate,rebuild}``.

* ``gate`` — load the committed manifest, gate every triple, print the
  report, exit non-zero on any regression (wired as ``make
  corpus-gate`` and the CI ``corpus-gate`` job);
* ``rebuild`` — regenerate and re-certify the corpus from a seed and
  write the manifest (the only sanctioned way to change the committed
  labels).
"""

from __future__ import annotations

import argparse
import sys

from repro.corpus.gate import run_gate
from repro.corpus.manifest import (
    DEFAULT_MANIFEST_PATH,
    build_manifest,
    load_manifest,
    save_manifest,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Gold-standard ACQ corpus: quality gate and rebuild.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gate = sub.add_parser(
        "gate", help="re-certify the committed corpus on all engines"
    )
    gate.add_argument(
        "--manifest",
        default=str(DEFAULT_MANIFEST_PATH),
        help="path to the corpus manifest JSON",
    )
    gate.add_argument(
        "--limit",
        type=int,
        default=None,
        help="gate only the first N triples (smoke runs)",
    )

    rebuild = sub.add_parser(
        "rebuild", help="regenerate, re-certify and write the corpus"
    )
    rebuild.add_argument(
        "--manifest",
        default=str(DEFAULT_MANIFEST_PATH),
        help="path to write the corpus manifest JSON",
    )
    rebuild.add_argument(
        "--seed", type=int, default=0, help="corpus generator seed"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "gate":
        manifest = load_manifest(args.manifest)
        report = run_gate(manifest, limit=args.limit)
        print(report.render())
        return 0 if report.passed else 1
    manifest = build_manifest(seed=args.seed)
    save_manifest(manifest, args.manifest)
    print(
        f"wrote {len(manifest.triples)} certified triples "
        f"({', '.join(f'{k}={v}' for k, v in sorted(manifest.families.items()))}) "
        f"to {args.manifest}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
