"""Exhaustive brute-force oracle over the refinement lattice.

The oracle certifies corpus labels *independently* of the Expand/
Explore machinery: it enumerates every grid point of the refined space
(expansion or contraction, mirroring the driver's direction choice) and
evaluates every aggregate constraint at each point with direct box
queries — no layer traversal, no incremental cell recurrence, no
pruning, no caches. Agreement between :class:`~repro.core.acquire.
Acquire` and this enumeration is therefore evidence about the search,
not a tautology.

Guarantee: the oracle ranks all satisfying refinements *on the grid
lattice* by ``(QScore, error)``. That is exactly the population the
driver searches (paper Theorem 1 bounds the lattice optimum within
``gamma`` of the continuum optimum), so a driver answer is "optimal"
when it matches the oracle's first rank. Off-grid repartitioned answers
are outside the lattice; corpus configurations disable repartitioning
(``repartition_iterations=0``) so the two populations coincide.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.contraction import ContractionSpace
from repro.core.error import default_error_for
from repro.core.expand import LAYER_DECIMALS
from repro.core.query import ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.core.scoring import MaxConstraintDistance
from repro.engine.backends import EvaluationLayer
from repro.exceptions import CorpusError

#: Hard ceiling on enumerated lattice points; the oracle is exhaustive,
#: so corpus spaces must stay small enough to brute-force honestly.
DEFAULT_MAX_POINTS = 200_000


@dataclass(frozen=True)
class OracleEntry:
    """One enumerated lattice point.

    ``values`` holds the actual aggregate of every constraint (primary
    first); ``error`` is the combined constraint distance the driver
    compares against delta.
    """

    coords: tuple[int, ...]
    pscores: tuple[float, ...]
    qscore: float
    error: float
    values: tuple[float, ...]

    @property
    def rank_key(self) -> tuple[float, float]:
        """(QScore, error) rounded to the driver's layer resolution."""
        return (
            round(self.qscore, LAYER_DECIMALS),
            round(self.error, LAYER_DECIMALS),
        )


@dataclass(frozen=True)
class OracleCertificate:
    """Result of exhaustively enumerating one (dataset, ACQ) pair."""

    direction: str  # "expansion" | "contraction"
    satisfied: bool
    ranking: tuple[OracleEntry, ...]  # satisfying points, ranked
    closest: Optional[OracleEntry]  # min (error, qscore) over the grid
    original_value: float
    points_enumerated: int

    @property
    def best(self) -> Optional[OracleEntry]:
        return self.ranking[0] if self.ranking else None

    def top(self, k: int) -> tuple[OracleEntry, ...]:
        return self.ranking[:k]

    def top_closed(self, k: int) -> tuple[OracleEntry, ...]:
        """The first k entries, extended through the last tie group.

        The driver always finishes the layer that completes its k-th
        answer, so its answer set contains *every* member of the k-th
        rank's (QScore, error) tie group; comparing against this closed
        prefix makes the gate's multiset checks well-defined.
        """
        if k >= len(self.ranking) or not self.ranking:
            return self.ranking
        boundary = self.ranking[k - 1].rank_key
        end = k
        while end < len(self.ranking) and (
            self.ranking[end].rank_key == boundary
        ):
            end += 1
        return self.ranking[:end]


def certify(
    layer: EvaluationLayer,
    query: Query,
    config,
    max_points: int = DEFAULT_MAX_POINTS,
) -> OracleCertificate:
    """Enumerate the full refinement lattice and rank every answer.

    Mirrors the driver's direction choice exactly: contraction for
    ``<=``/``<`` constraints and for monotone equality constraints whose
    original query already overshoots beyond delta; expansion otherwise.
    """
    constraint = query.constraint
    aggregate = constraint.spec.aggregate
    error_fns = [config.error_fn or default_error_for(constraint.op)] + [
        default_error_for(extra.op) for extra in query.extra_constraints
    ]
    distance = config.constraint_distance or MaxConstraintDistance()

    dim_caps = [
        predicate.limit if predicate.limit is not None
        else config.dim_cap_default
        for predicate in query.refinable_predicates
    ]
    prepared = layer.prepare(query, dim_caps)
    original_state = layer.execute_box(
        prepared, (0.0,) * query.dimensionality
    )
    original_value = aggregate.finalize(original_state)

    expansion = constraint.op.is_expansion
    if (
        expansion
        and constraint.op is ConstraintOp.EQ
        and aggregate.monotone_expanding
        and original_value > constraint.target
        and error_fns[0](constraint.target, original_value) > config.delta
    ):
        expansion = False

    if expansion:
        useful = layer.useful_max_scores(prepared)
        max_scores = [min(cap, score) for cap, score in zip(dim_caps, useful)]
        space = RefinedSpace(
            query, config.gamma, max_scores, config.norm, config.step
        )
        handles = [prepared] + [
            layer.prepare(query.with_only_constraint(extra), dim_caps)
            for extra in query.extra_constraints
        ]
        direction = "expansion"
    else:
        space = ContractionSpace(
            query, config.gamma, config.norm, config.step
        )
        handles = [
            layer.prepare(
                query.with_only_constraint(each), [0.0] * query.dimensionality
            )
            for each in query.constraints
        ]
        direction = "contraction"

    grid_points = math.prod(limit + 1 for limit in space.max_coords)
    if grid_points > max_points:
        raise CorpusError(
            f"refinement lattice holds {grid_points} points, beyond the "
            f"oracle's exhaustive-enumeration ceiling of {max_points}; "
            "raise gamma or add predicate limits to keep corpus spaces "
            "brute-forceable"
        )

    constraints = query.constraints
    entries_satisfying: list[OracleEntry] = []
    closest: Optional[OracleEntry] = None
    count = 0
    for coords in itertools.product(
        *(range(limit + 1) for limit in space.max_coords)
    ):
        count += 1
        scores = space.scores(coords)
        values = []
        errors = []
        for each, handle, error_fn in zip(constraints, handles, error_fns):
            state = layer.execute_box(handle, scores)
            value = each.spec.aggregate.finalize(state)
            values.append(value)
            errors.append(error_fn(each.target, value))
        combined = distance.combine(errors)
        entry = OracleEntry(
            coords=tuple(coords),
            pscores=tuple(scores),
            qscore=space.qscore_of_scores(scores),
            error=combined,
            values=tuple(values),
        )
        if closest is None or (entry.error, entry.qscore) < (
            closest.error, closest.qscore
        ):
            closest = entry
        if combined <= config.delta:
            entries_satisfying.append(entry)

    entries_satisfying.sort(key=lambda e: (*e.rank_key, e.coords))
    return OracleCertificate(
        direction=direction,
        satisfied=bool(entries_satisfying),
        ranking=tuple(entries_satisfying),
        closest=closest,
        original_value=original_value,
        points_enumerated=count,
    )


def grid_point_values(
    layer: EvaluationLayer,
    query: Query,
    config,
    coords: Sequence[int],
    contraction: bool = False,
) -> tuple[float, ...]:
    """Aggregates of every constraint at one lattice point.

    Generator helper: corpus targets are planted by measuring a random
    lattice point and using its aggregates as the constraint targets,
    which guarantees satisfiability without search.
    """
    dim_caps = [
        predicate.limit if predicate.limit is not None
        else config.dim_cap_default
        for predicate in query.refinable_predicates
    ]
    if contraction:
        space: ContractionSpace | RefinedSpace = ContractionSpace(
            query, config.gamma, config.norm, config.step
        )
        caps = [0.0] * query.dimensionality
    else:
        prepared = layer.prepare(query, dim_caps)
        useful = layer.useful_max_scores(prepared)
        max_scores = [min(cap, score) for cap, score in zip(dim_caps, useful)]
        space = RefinedSpace(
            query, config.gamma, max_scores, config.norm, config.step
        )
        caps = dim_caps
    scores = space.scores(coords)
    values = []
    for each in query.constraints:
        handle = layer.prepare(query.with_only_constraint(each), caps)
        state = layer.execute_box(handle, scores)
        values.append(each.spec.aggregate.finalize(state))
    return tuple(values)
