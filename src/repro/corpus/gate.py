"""The corpus quality-regression gate.

For every committed triple the gate rebuilds the dataset from its
recipe, re-certifies the label with the exhaustive oracle, then runs
the full ACQUIRE driver under four Explore engine configurations —
incremental, materialized, tiled, and sharded (tiled with parallel
tile workers) — asserting each returns the oracle-optimal answer and a
stable, score-monotone top-k ranking whose first element equals the
single-answer (``top_k=1``) result.

Run it via ``make corpus-gate`` or ``python -m repro.corpus gate``; on
failure the report prints a per-triple diff of expected versus actual
(qscore, error, pscores) so a quality regression reads like a test
failure, not a checksum mismatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.acquire import Acquire
from repro.core.result import AcquireResult, RefinedQuery
from repro.corpus.generator import realize
from repro.corpus.manifest import (
    CorpusManifest,
    LabeledTriple,
    digest_hex,
    label_spec,
)
from repro.corpus.oracle import OracleEntry
from repro.engine.memory_backend import MemoryBackend

#: The five gated Explore configurations (name, config overrides).
#: ``process`` runs the tiled engine on the worker-process tier (it
#: degrades to the thread tier for aggregates without vector ops, so
#: every triple stays gateable).
ENGINE_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("incremental", {"explore_mode": "incremental"}),
    ("materialized", {"explore_mode": "materialized"}),
    ("tiled", {"explore_mode": "tiled"}),
    ("sharded", {"explore_mode": "tiled", "tile_workers": 2}),
    (
        "process",
        {
            "explore_mode": "tiled",
            "tile_workers": 2,
            "tile_executor": "process",
        },
    ),
)

_TOL = dict(rel_tol=1e-9, abs_tol=1e-9)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, **_TOL)


def _vector_close(a: Sequence[float], b: Sequence[float]) -> bool:
    return len(a) == len(b) and all(_close(x, y) for x, y in zip(a, b))


@dataclass
class TripleCheck:
    """Outcome of gating one triple: empty ``problems`` means pass."""

    triple_id: str
    family: str
    problems: list[str]

    @property
    def passed(self) -> bool:
        return not self.problems


@dataclass
class GateReport:
    """Aggregated gate outcome over a manifest."""

    checks: list[TripleCheck]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[TripleCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        families: dict[str, int] = {}
        for check in self.checks:
            families[check.family] = families.get(check.family, 0) + 1
        lines = [
            f"corpus gate: {len(self.checks)} triples "
            f"({', '.join(f'{k}={v}' for k, v in sorted(families.items()))})"
        ]
        if self.passed:
            lines.append(
                "PASS: 100% oracle-optimal, stable top-k on "
                + ", ".join(name for name, _ in ENGINE_CONFIGS)
            )
            return "\n".join(lines)
        lines.append(f"FAIL: {len(self.failures)} triple(s) regressed")
        for check in self.failures:
            lines.append(f"- {check.triple_id} [{check.family}]")
            for problem in check.problems:
                lines.append(f"    {problem}")
        return "\n".join(lines)


def _describe_answer(answer: RefinedQuery) -> str:
    scores = ", ".join(f"{score:g}" for score in answer.pscores)
    return (
        f"qscore={answer.qscore:.6g} err={answer.error:.6g} "
        f"pscores=({scores})"
    )


def _describe_entry(entry: OracleEntry) -> str:
    scores = ", ".join(f"{score:g}" for score in entry.pscores)
    return (
        f"qscore={entry.qscore:.6g} err={entry.error:.6g} "
        f"pscores=({scores})"
    )


def _check_ranking(
    engine: str,
    result: AcquireResult,
    expected: LabeledTriple,
    top_k: int,
    problems: list[str],
) -> None:
    """Compare a driver ranking against the oracle's closed top-k."""
    if not result.satisfied:
        problems.append(
            f"{engine}: driver found no answer but the oracle certifies "
            f"{expected.ranking_size} satisfying refinement(s)"
        )
        return
    want = min(top_k, expected.ranking_size)
    answers = result.top(top_k)
    if len(answers) < want:
        problems.append(
            f"{engine}: driver returned {len(answers)} of the {want} "
            "oracle-certified top-k answers"
        )
    for prev, cur in zip(answers, answers[1:]):
        if cur.qscore < prev.qscore - 1e-9:
            problems.append(
                f"{engine}: top-k ranking is not score-monotone "
                f"({_describe_answer(prev)} before {_describe_answer(cur)})"
            )
    # Rank-by-rank (qscore, error) agreement with the oracle, plus a
    # tie-aware pscores match: each driver answer must consume one
    # oracle entry from its own (qscore, error) tie group.
    remaining = list(expected.top_closed)
    for rank, answer in enumerate(answers[:want]):
        entry = expected.top_closed[rank]
        if not _close(answer.qscore, entry.qscore):
            problems.append(
                f"{engine}: rank {rank + 1} qscore mismatch — "
                f"driver {_describe_answer(answer)}, "
                f"oracle {_describe_entry(entry)}"
            )
            continue
        if not _close(answer.error, entry.error):
            problems.append(
                f"{engine}: rank {rank + 1} error mismatch — "
                f"driver {_describe_answer(answer)}, "
                f"oracle {_describe_entry(entry)}"
            )
            continue
        match = next(
            (
                candidate
                for candidate in remaining
                if candidate.rank_key == entry.rank_key
                and _vector_close(answer.pscores, candidate.pscores)
            ),
            None,
        )
        if match is None:
            problems.append(
                f"{engine}: rank {rank + 1} refinement "
                f"{_describe_answer(answer)} is not in the oracle's "
                f"(qscore, error) tie group"
            )
        else:
            remaining.remove(match)


def check_triple(labeled: LabeledTriple) -> TripleCheck:
    """Gate one committed triple end to end."""
    spec = labeled.spec
    problems: list[str] = []
    database, query, config = realize(spec)

    digest = digest_hex(database)
    if digest != labeled.digest:
        problems.append(
            f"dataset digest drifted: committed {labeled.digest}, "
            f"rebuilt {digest} — the generator no longer reproduces "
            "the committed data"
        )
        return TripleCheck(spec.triple_id, spec.family, problems)

    fresh, _ = label_spec(spec)
    if fresh.direction != labeled.direction:
        problems.append(
            f"oracle direction drifted: committed {labeled.direction}, "
            f"recomputed {fresh.direction}"
        )
    if fresh.ranking_size != labeled.ranking_size:
        problems.append(
            f"oracle ranking size drifted: committed "
            f"{labeled.ranking_size}, recomputed {fresh.ranking_size}"
        )
    for rank, (committed, recomputed) in enumerate(
        zip(labeled.top_closed, fresh.top_closed)
    ):
        if not (
            _close(committed.qscore, recomputed.qscore)
            and _close(committed.error, recomputed.error)
        ):
            problems.append(
                f"oracle label drifted at rank {rank + 1}: committed "
                f"{_describe_entry(committed)}, recomputed "
                f"{_describe_entry(recomputed)}"
            )
    if len(fresh.top_closed) != len(labeled.top_closed):
        problems.append(
            f"oracle tie-closed prefix drifted: committed "
            f"{len(labeled.top_closed)} entries, recomputed "
            f"{len(fresh.top_closed)}"
        )
    if problems:
        return TripleCheck(spec.triple_id, spec.family, problems)

    layer = MemoryBackend(database)
    driver = Acquire(layer)
    for engine, overrides in ENGINE_CONFIGS:
        engine_config = replace(config, **overrides)
        result = driver.run(query, engine_config)
        _check_ranking(engine, result, labeled, spec.top_k, problems)

        # The top-k ranking must be a pure extension of the single-answer
        # search: element one of top(k) is the k=1 result, bit for bit.
        single = driver.run(query, replace(engine_config, top_k=1))
        if result.satisfied and single.satisfied:
            first = result.answers[0]
            lone = single.answers[0]
            if not (
                _close(first.qscore, lone.qscore)
                and _close(first.error, lone.error)
                and _vector_close(first.pscores, lone.pscores)
            ):
                problems.append(
                    f"{engine}: top(k)[0] {_describe_answer(first)} != "
                    f"top_k=1 answer {_describe_answer(lone)}"
                )
        elif result.satisfied != single.satisfied:
            problems.append(
                f"{engine}: satisfiability depends on top_k "
                f"(k={spec.top_k}: {result.satisfied}, k=1: "
                f"{single.satisfied})"
            )
    return TripleCheck(spec.triple_id, spec.family, problems)


def run_gate(
    manifest: CorpusManifest, limit: Optional[int] = None
) -> GateReport:
    """Gate every triple of a manifest (or the first ``limit``)."""
    triples = manifest.triples[:limit] if limit else manifest.triples
    return GateReport(checks=[check_triple(t) for t in triples])
