"""JSON (de)serialization of the labeled corpus.

A manifest is the committed artifact under ``tests/corpus/data/``: the
list of :class:`~repro.corpus.generator.TripleSpec` recipes together
with, per triple, a content digest of the rebuilt dataset and the
oracle's label (direction, satisfiability, the closed top-k ranking).
The gate rebuilds everything from the recipes and fails loudly on any
drift — data, oracle, or search.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.core.grid_cache import database_digest
from repro.corpus.generator import TripleSpec, realize
from repro.corpus.oracle import OracleCertificate, OracleEntry, certify
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import CorpusError

MANIFEST_VERSION = 1


def digest_hex(database: Database) -> str:
    """Stable short hex digest of a catalog database's full content."""
    raw = repr(database_digest(database)).encode()
    return hashlib.sha256(raw).hexdigest()[:16]


def _entry_to_json(entry: OracleEntry) -> dict:
    return {
        "coords": list(entry.coords),
        "pscores": list(entry.pscores),
        "qscore": entry.qscore,
        "error": entry.error,
        "values": list(entry.values),
    }


def _entry_from_json(data: Mapping[str, object]) -> OracleEntry:
    return OracleEntry(
        coords=tuple(int(c) for c in data["coords"]),  # type: ignore[union-attr]
        pscores=tuple(float(s) for s in data["pscores"]),  # type: ignore[union-attr]
        qscore=float(data["qscore"]),  # type: ignore[arg-type]
        error=float(data["error"]),  # type: ignore[arg-type]
        values=tuple(float(v) for v in data["values"]),  # type: ignore[union-attr]
    )


@dataclass(frozen=True)
class LabeledTriple:
    """One corpus triple with its oracle-certified label."""

    spec: TripleSpec
    digest: str
    direction: str
    satisfied: bool
    ranking_size: int
    points_enumerated: int
    top_closed: tuple[OracleEntry, ...]

    def to_json(self) -> dict:
        return {
            "spec": self.spec.to_json(),
            "digest": self.digest,
            "label": {
                "direction": self.direction,
                "satisfied": self.satisfied,
                "ranking_size": self.ranking_size,
                "points_enumerated": self.points_enumerated,
                "top_closed": [
                    _entry_to_json(entry) for entry in self.top_closed
                ],
            },
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "LabeledTriple":
        label = data["label"]
        return cls(
            spec=TripleSpec.from_json(data["spec"]),  # type: ignore[arg-type]
            digest=str(data["digest"]),
            direction=str(label["direction"]),  # type: ignore[index]
            satisfied=bool(label["satisfied"]),  # type: ignore[index]
            ranking_size=int(label["ranking_size"]),  # type: ignore[index]
            points_enumerated=int(label["points_enumerated"]),  # type: ignore[index]
            top_closed=tuple(
                _entry_from_json(entry)
                for entry in label["top_closed"]  # type: ignore[index]
            ),
        )


@dataclass(frozen=True)
class CorpusManifest:
    """The committed corpus: seed, family counts, labeled triples."""

    seed: int
    triples: tuple[LabeledTriple, ...]

    @property
    def families(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for triple in self.triples:
            counts[triple.spec.family] = (
                counts.get(triple.spec.family, 0) + 1
            )
        return counts

    def to_json(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "families": self.families,
            "triples": [triple.to_json() for triple in self.triples],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CorpusManifest":
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise CorpusError(
                f"corpus manifest version {version!r} is not supported "
                f"(expected {MANIFEST_VERSION}); rebuild with "
                "`python -m repro.corpus rebuild`"
            )
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            triples=tuple(
                LabeledTriple.from_json(triple)
                for triple in data["triples"]  # type: ignore[union-attr]
            ),
        )


def label_spec(spec: TripleSpec) -> tuple[LabeledTriple, OracleCertificate]:
    """Certify one spec with the exhaustive oracle and package it."""
    database, query, config = realize(spec)
    certificate = certify(MemoryBackend(database), query, config)
    if not certificate.satisfied:
        raise CorpusError(
            f"{spec.triple_id}: planted target is unsatisfiable — the "
            "generator's satisfiability-by-construction invariant broke"
        )
    labeled = LabeledTriple(
        spec=spec,
        digest=digest_hex(database),
        direction=certificate.direction,
        satisfied=certificate.satisfied,
        ranking_size=len(certificate.ranking),
        points_enumerated=certificate.points_enumerated,
        top_closed=certificate.top_closed(spec.top_k),
    )
    return labeled, certificate


def build_manifest(
    seed: int = 0,
    counts: Optional[Mapping[str, int]] = None,
    specs: Optional[Iterable[TripleSpec]] = None,
) -> CorpusManifest:
    """Generate, certify and package a full corpus."""
    from repro.corpus.generator import sample_specs

    if specs is None:
        specs = sample_specs(seed, counts)
    labeled = tuple(label_spec(spec)[0] for spec in specs)
    return CorpusManifest(seed=seed, triples=labeled)


def save_manifest(manifest: CorpusManifest, path: str | Path) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(manifest.to_json(), indent=1, sort_keys=True) + "\n"
    )


def load_manifest(path: str | Path) -> CorpusManifest:
    source = Path(path)
    if not source.exists():
        raise CorpusError(f"corpus manifest not found: {source}")
    return CorpusManifest.from_json(json.loads(source.read_text()))


#: Default location of the committed corpus, relative to the repo root.
DEFAULT_MANIFEST_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests" / "corpus" / "data" / "corpus_manifest.json"
)
