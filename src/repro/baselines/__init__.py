"""Compared techniques (paper section 8.2).

Three extensions of existing work, each addressing the ACQ problem to a
varying degree:

* :class:`~repro.baselines.topk.TopK` — rank tuples by refinement
  distance and take the first ``Aexp`` (ORDER BY ... LIMIT, COUNT only);
* :class:`~repro.baselines.binsearch.BinSearch` — binary-search one
  predicate bound at a time [Mishra, Koudas, Zuzarte, SIGMOD'08];
* :class:`~repro.baselines.tqgen.TQGen` — iterative grid zoom-in over
  the predicate space [same paper], exponential in dimensionality.

All of them execute *full* queries through the same evaluation layer
ACQUIRE uses, which is exactly how the paper implements its
comparisons ("we similarly implemented the compared techniques on top
of Postgres").
"""

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.baselines.topk import TopK
from repro.baselines.binsearch import BinSearch
from repro.baselines.tqgen import TQGen
from repro.baselines.hillclimb import HillClimbing
from repro.baselines.skyline import Skyline

__all__ = [
    "BaselineTechnique",
    "MethodRun",
    "TopK",
    "BinSearch",
    "TQGen",
    "HillClimbing",
    "Skyline",
]
