"""BinSearch baseline [Mishra, Koudas, Zuzarte; SIGMOD'08].

Refine one predicate at a time: binary-search the current predicate's
refinement score until the cardinality target is met (or the predicate
is exhausted, in which case move to the next predicate with the current
one pinned at its maximum). Each probe executes a *full* query through
the evaluation layer.

The paper's headline critique — "BinSearch is very sensitive to the
order in which predicates are refined; even a single change to the
order can change the error by a factor of 100" — falls out of this
construction naturally: the dimension refined first absorbs all of the
target, and on discrete data the bisection lands wherever the value
distribution lets it. ``order`` exposes the knob so the experiments
can demonstrate the variance.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.core.error import AggregateErrorFunction
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError


class BinSearch(BaselineTechnique):
    """Query-oriented sequential binary search (COUNT only)."""

    name = "BinSearch"

    def __init__(
        self,
        delta: float = 0.05,
        probes_per_dim: int = 12,
        order: Optional[Sequence[int]] = None,
        **kwargs: object,
    ) -> None:
        super().__init__(delta=delta, **kwargs)  # type: ignore[arg-type]
        if probes_per_dim < 1:
            raise QueryModelError("probes_per_dim must be >= 1")
        self.probes_per_dim = probes_per_dim
        self.order = tuple(order) if order is not None else None

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        aggregate = query.constraint.spec.aggregate
        target = query.constraint.target
        d = query.dimensionality
        order = self.order if self.order is not None else tuple(range(d))
        if sorted(order) != list(range(d)):
            raise QueryModelError(
                f"order must be a permutation of 0..{d - 1}, got {order}"
            )

        scores = [0.0] * d
        probes = 0
        last_actual = math.nan
        last_error = math.inf

        def evaluate(candidate: Sequence[float]) -> float:
            nonlocal probes, last_actual, last_error
            probes += 1
            state = layer.execute_box(prepared, tuple(candidate))
            last_actual = aggregate.finalize(state)
            last_error = error_fn(target, last_actual)
            return last_actual

        actual = evaluate(scores)
        for dim in order:
            if last_error <= self.delta:
                break
            cap = float(dim_caps[dim])
            if cap <= 0:
                continue
            # Probe the fully refined dimension first.
            scores[dim] = cap
            actual = evaluate(scores)
            if actual < target:
                continue  # even the full expansion undershoots: pin at cap
            low, high = 0.0, cap
            for _ in range(self.probes_per_dim):
                middle = (low + high) / 2.0
                scores[dim] = middle
                actual = evaluate(scores)
                if actual < target:
                    low = middle
                else:
                    high = middle
            # The search lands on the undershoot/overshoot boundary;
            # keep the overshooting side so the target stays reachable.
            scores[dim] = high
            actual = evaluate(scores)
            break  # this dimension crossed the target: search is over

        return MethodRun(
            method=self.name,
            aggregate_value=last_actual,
            error=last_error,
            qscore=self._qscore(query, scores),
            pscores=tuple(scores),
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
            details={"probes": probes, "order": order},
        )
