"""Common scaffolding for the compared techniques."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.error import AggregateErrorFunction, default_error_for
from repro.core.query import Query
from repro.core.scoring import LpNorm, Norm
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError


@dataclass
class MethodRun:
    """One technique's outcome on one ACQ, in the paper's three metrics.

    ``qscore``/``pscores`` measure refinement (Figure 8c/9c),
    ``error`` the relative aggregate error (Figure 8b/9b), and
    ``elapsed_s``/``execution`` the cost (Figure 8a/9a plus
    machine-independent counters).
    """

    method: str
    aggregate_value: float
    error: float
    qscore: float
    pscores: tuple[float, ...]
    elapsed_s: float
    execution: ExecutionStats
    satisfied: bool
    details: dict = field(default_factory=dict)


class BaselineTechnique:
    """Base class: timing, stats diffing, and aggregate support checks.

    The paper (section 8.2): "unlike ACQUIRE, (a) none of the above
    techniques addresses aggregates other than COUNT, and (b) even for
    COUNT, none of the above techniques are capable of refining join
    predicates." We enforce (a) by default; ``allow_any_aggregate``
    lifts it for what-if experiments. (b) holds mechanically for Top-k
    (no bounding query exists) but BinSearch/TQGen inherit join support
    from our evaluation layer — strictly more generous to the baselines
    than the paper, which only strengthens any ACQUIRE win.
    """

    name = "baseline"
    supported_aggregates = frozenset({"COUNT"})

    def __init__(
        self,
        delta: float = 0.05,
        norm: Optional[Norm] = None,
        dim_cap_default: float = 400.0,
        allow_any_aggregate: bool = False,
        error_fn: Optional[AggregateErrorFunction] = None,
    ) -> None:
        if delta < 0:
            raise QueryModelError("delta must be >= 0")
        self.delta = delta
        self.norm: Norm = norm if norm is not None else LpNorm(1)
        self.dim_cap_default = dim_cap_default
        self.allow_any_aggregate = allow_any_aggregate
        self.error_fn = error_fn

    # ------------------------------------------------------------------
    def run(self, layer: EvaluationLayer, query: Query) -> MethodRun:
        aggregate = query.constraint.spec.aggregate
        if (
            not self.allow_any_aggregate
            and aggregate.name not in self.supported_aggregates
        ):
            raise QueryModelError(
                f"{self.name} only supports "
                f"{sorted(self.supported_aggregates)} aggregates "
                f"(got {aggregate.name}); ACQUIRE handles the rest"
            )
        started = time.perf_counter()
        before = layer.stats.snapshot()
        dim_caps = self._dim_caps(query)
        prepared = layer.prepare(query, dim_caps)
        # Clip each dimension's search range to the observed attribute
        # domain, exactly as the original techniques discretize the
        # actual attribute ranges.
        useful = layer.useful_max_scores(prepared)
        dim_caps = [
            min(cap, score) for cap, score in zip(dim_caps, useful)
        ]
        error_fn = self.error_fn or default_error_for(query.constraint.op)
        run = self._search(layer, prepared, query, dim_caps, error_fn)
        run.elapsed_s = time.perf_counter() - started
        run.execution = layer.stats.since(before)
        run.satisfied = run.error <= self.delta
        return run

    def _dim_caps(self, query: Query) -> list[float]:
        return [
            predicate.limit if predicate.limit is not None
            else self.dim_cap_default
            for predicate in query.refinable_predicates
        ]

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _qscore(self, query: Query, pscores: Sequence[float]) -> float:
        return self.norm.qscore(list(pscores), query.weights)

    def _blank_run(self) -> MethodRun:
        return MethodRun(
            method=self.name,
            aggregate_value=float("nan"),
            error=float("inf"),
            qscore=float("inf"),
            pscores=(),
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
        )
