"""Skyline baseline [Koudas, Li, Tung, Vernica; VLDB 2006].

The paper's Table 1 groups this tuple-oriented relaxation technique
with Top-k: "Relaxing join and selection queries" returns near-miss
tuples ordered by how little the query must relax to admit them, using
skyline semantics — a tuple is preferred if no other tuple needs less
relaxation on *every* predicate simultaneously.

Implementation: compute each candidate tuple's per-dimension expansion
need (clamped-at-zero signed score), then peel *skyline bands*: band 0
is the set of non-dominated need vectors, band k the skyline after
removing bands < k. Tuples are admitted band by band until the COUNT
target is reached (ties within the final band broken by weighted L1
need). Like Top-k it attains the cardinality trivially but has no
notion of a bounding query; the paper assigns such techniques the
per-dimension max refinement among admitted tuples.

This baseline needs raw per-tuple scores, so it runs on the memory
evaluation layer's prepared state directly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.core.error import AggregateErrorFunction
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import EngineError, QueryModelError


def skyline_bands(needs: np.ndarray, max_bands: int) -> np.ndarray:
    """Assign each row of ``needs`` its skyline band (domination layer).

    Row ``a`` dominates ``b`` when ``a <= b`` on every column and
    ``a < b`` on at least one. Rows left after ``max_bands`` peels get
    band ``max_bands``.
    """
    n = needs.shape[0]
    bands = np.full(n, max_bands, dtype=np.int64)
    remaining = np.arange(n)
    # Lexicographic presort makes the peel scan O(n * skyline size).
    order = np.lexsort(needs.T[::-1])
    remaining = remaining[order]
    for band in range(max_bands):
        if len(remaining) == 0:
            break
        current = needs[remaining]
        in_skyline = np.zeros(len(remaining), dtype=bool)
        skyline_rows: list[np.ndarray] = []
        for index in range(len(remaining)):
            row = current[index]
            dominated = False
            for kept in skyline_rows:
                if np.all(kept <= row) and np.any(kept < row):
                    dominated = True
                    break
            if not dominated:
                in_skyline[index] = True
                skyline_rows.append(row)
        bands[remaining[in_skyline]] = band
        remaining = remaining[~in_skyline]
    return bands


class Skyline(BaselineTechnique):
    """Tuple-oriented skyline relaxation (COUNT constraints only)."""

    name = "Skyline"

    def __init__(
        self, delta: float = 0.05, max_bands: int = 64, **kwargs: object
    ) -> None:
        super().__init__(delta=delta, **kwargs)  # type: ignore[arg-type]
        if max_bands < 1:
            raise QueryModelError("max_bands must be >= 1")
        self.max_bands = max_bands

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        candidate = getattr(prepared, "candidate", None)
        if candidate is None:
            raise EngineError(
                "Skyline needs per-tuple refinement vectors; run it on "
                "the memory evaluation layer"
            )
        target = query.constraint.target
        k = max(int(math.ceil(target)), 0)
        d = query.dimensionality
        needs = np.maximum(candidate.scores, 0.0)
        layer._count_query("box", rows=candidate.nrows)

        if candidate.nrows == 0 or k == 0:
            actual = 0.0
            max_scores = tuple(0.0 for _ in range(d))
        else:
            bands = skyline_bands(needs, self.max_bands)
            order = np.lexsort(
                (needs @ np.asarray(query.weights), bands)
            )
            admitted = min(k, candidate.nrows)
            chosen = order[:admitted]
            actual = float(admitted)
            max_scores = tuple(
                float(np.max(needs[chosen, dim])) for dim in range(d)
            )

        return MethodRun(
            method=self.name,
            aggregate_value=actual,
            error=error_fn(target, actual),
            qscore=self._qscore(query, max_scores),
            pscores=max_scores,
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
            details={"k": k, "bands": self.max_bands},
        )
