"""Top-k baseline: ORDER BY refinement distance, LIMIT Aexp.

The paper's rewrite (section 8.2)::

    SELECT * FROM table1 ORDER BY
      (CASE WHEN (x <= 10) THEN 0 ELSE (x-10)/(x.max-x.min) END) +
      (CASE WHEN (y <= 20) THEN 0 ELSE (y-20)/(y.max-y.min) END)
    LIMIT A_exp

Top-k trivially attains the COUNT target (its error is zero by
definition, which is why Figure 8b omits it), but it cannot produce a
refined *query*: the paper assigns it the bounding query implied by
the selected tuples, whose per-dimension refinement is the maximum
refinement among admitted tuples — typically far larger than
ACQUIRE's, because ranking by total distance lets single dimensions
stretch (the "skewed in certain predicate dimensions" critique of
section 9).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.core.error import AggregateErrorFunction
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer, ExecutionStats


class TopK(BaselineTechnique):
    """Tuple-oriented ranking baseline (COUNT constraints only)."""

    name = "Top-k"

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        target = query.constraint.target
        k = max(int(math.ceil(target)), 0)
        admission = layer.topk_admission(prepared, k)
        actual = float(admission.admitted)
        return MethodRun(
            method=self.name,
            aggregate_value=actual,
            error=error_fn(target, actual),
            qscore=self._qscore(query, admission.max_scores),
            pscores=tuple(admission.max_scores),
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
            details={"k": k, "admitted": admission.admitted},
        )
