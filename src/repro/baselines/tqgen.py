"""TQGen baseline [Mishra, Koudas, Zuzarte; SIGMOD'08].

TQGen generates a query with a target cardinality by iteratively
discretizing the predicate space: overlay a ``q``-points-per-dimension
grid on the current search box, execute the full query at every grid
point (``q^d`` executions per round), move the box to the cell around
the best point, and repeat until the target is hit or the round budget
is exhausted.

Properties the paper measures, reproduced by construction:

* execution count is exponential in dimensionality (Figure 9a's
  blow-up; "the method taking 500X more time than ACQUIRE for high
  dimensional queries");
* accuracy is excellent — repeated zooming bisects every dimension at
  once (Figure 8b: "TQGen, in fact, produces lower error rates than
  ACQUIRE. However, this reduction comes at the cost of a 100X increase
  in execution time");
* proximity is ignored: the search starts from the whole refinement
  box and keeps whatever meets the cardinality first, so refinement
  scores run 2-3X above ACQUIRE's (Figure 8c).

Parameters default to a 4-point grid and 6 rounds — the regime the
paper's quoted runtime ratios correspond to on our substrate.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.core.error import AggregateErrorFunction
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError


class TQGen(BaselineTechnique):
    """Query-oriented grid zoom-in (COUNT only)."""

    name = "TQGen"

    def __init__(
        self,
        delta: float = 0.05,
        grid_points: int = 4,
        rounds: int = 6,
        convergence_factor: float = 0.1,
        **kwargs: object,
    ) -> None:
        super().__init__(delta=delta, **kwargs)  # type: ignore[arg-type]
        if grid_points < 2:
            raise QueryModelError("grid_points must be >= 2")
        if rounds < 1:
            raise QueryModelError("rounds must be >= 1")
        if convergence_factor <= 0:
            raise QueryModelError("convergence_factor must be > 0")
        self.grid_points = grid_points
        self.rounds = rounds
        # TQGen targets the cardinality *exactly* (it has no notion of
        # an acceptable error band), so it keeps zooming well past the
        # delta ACQUIRE is allowed to stop at — the reason the paper
        # measures TQGen errors below ACQUIRE's at 100X the cost.
        self.convergence_factor = convergence_factor

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        aggregate = query.constraint.spec.aggregate
        target = query.constraint.target
        d = query.dimensionality
        box = [(0.0, float(cap)) for cap in dim_caps]

        best_scores: tuple[float, ...] = tuple(0.0 for _ in range(d))
        best_actual = math.nan
        best_error = math.inf
        executed = 0

        for _ in range(self.rounds):
            axes = [
                tuple(
                    low + index * (high - low) / (self.grid_points - 1)
                    for index in range(self.grid_points)
                )
                for low, high in box
            ]
            round_best: tuple[float, tuple[float, ...], float] | None = None
            for point in itertools.product(*axes):
                state = layer.execute_box(prepared, point)
                actual = aggregate.finalize(state)
                executed += 1
                error = error_fn(target, actual)
                if round_best is None or error < round_best[0]:
                    round_best = (error, point, actual)
            assert round_best is not None
            error, point, actual = round_best
            if error < best_error:
                best_error, best_scores, best_actual = error, point, actual
            if best_error <= self.delta * self.convergence_factor:
                break
            # Zoom: shrink the box to one grid cell around the winner.
            box = [
                (
                    max(low, value - (high - low) / (self.grid_points - 1)),
                    min(high, value + (high - low) / (self.grid_points - 1)),
                )
                for (low, high), value in zip(box, point)
            ]

        return MethodRun(
            method=self.name,
            aggregate_value=best_actual,
            error=best_error,
            qscore=self._qscore(query, best_scores),
            pscores=best_scores,
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
            details={"queries": executed, "rounds": self.rounds},
        )
