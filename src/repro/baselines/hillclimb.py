"""Hill-Climbing baseline [Bruno, Chaudhuri, Thomas; IEEE TKDE 2006].

The paper's Table 1 groups this query-oriented technique with TQGen:
it generates a query meeting a cardinality constraint by local search —
from the current query, probe a step of refinement along each
dimension, move to the neighbour whose cardinality lands closest to the
target, halve the step when no neighbour improves, stop when converged.
Like TQGen it disregards proximity to the original query and supports
only COUNT.

Included because Table 1 names it; the paper's plotted comparisons use
Top-k / TQGen / BinSearch, so the figure experiments do too. Its
capability row is probed alongside the others in the table1 bench.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import BaselineTechnique, MethodRun
from repro.core.error import AggregateErrorFunction
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError


class HillClimbing(BaselineTechnique):
    """Greedy local search on the refinement-score vector (COUNT only)."""

    name = "HillClimbing"

    def __init__(
        self,
        delta: float = 0.05,
        max_moves: int = 60,
        initial_step_fraction: float = 0.25,
        **kwargs: object,
    ) -> None:
        super().__init__(delta=delta, **kwargs)  # type: ignore[arg-type]
        if max_moves < 1:
            raise QueryModelError("max_moves must be >= 1")
        if not 0 < initial_step_fraction <= 1:
            raise QueryModelError("initial_step_fraction must be in (0, 1]")
        self.max_moves = max_moves
        self.initial_step_fraction = initial_step_fraction

    def _search(
        self,
        layer: EvaluationLayer,
        prepared: object,
        query: Query,
        dim_caps: Sequence[float],
        error_fn: AggregateErrorFunction,
    ) -> MethodRun:
        aggregate = query.constraint.spec.aggregate
        target = query.constraint.target
        d = query.dimensionality
        caps = [float(cap) for cap in dim_caps]
        steps = [
            max(cap * self.initial_step_fraction, 1e-9) for cap in caps
        ]
        current = [0.0] * d
        probes = 0

        def evaluate(scores: Sequence[float]) -> tuple[float, float]:
            nonlocal probes
            probes += 1
            state = layer.execute_box(prepared, tuple(scores))
            actual = aggregate.finalize(state)
            return actual, error_fn(target, actual)

        actual, error = evaluate(current)
        for _ in range(self.max_moves):
            if error <= self.delta:
                break
            best_move: tuple[float, list[float], float] | None = None
            for dim in range(d):
                for direction in (+1.0, -1.0):
                    candidate = list(current)
                    candidate[dim] = min(
                        max(candidate[dim] + direction * steps[dim], 0.0),
                        caps[dim],
                    )
                    if candidate == current:
                        continue
                    neighbour_actual, neighbour_error = evaluate(candidate)
                    if best_move is None or neighbour_error < best_move[0]:
                        best_move = (
                            neighbour_error, candidate, neighbour_actual
                        )
            if best_move is not None and best_move[0] < error:
                error, current, actual = best_move
                continue
            # No improving neighbour: refine the step sizes.
            steps = [step / 2.0 for step in steps]
            if max(steps) < 1e-6:
                break

        return MethodRun(
            method=self.name,
            aggregate_value=actual,
            error=error,
            qscore=self._qscore(query, current),
            pscores=tuple(current),
            elapsed_s=0.0,
            execution=ExecutionStats(),
            satisfied=False,
            details={"probes": probes},
        )
