"""Simple synthetic tables for examples, unit and property tests."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datagen.distributions import uniform_floats, uniform_ints, zipf_floats
from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.exceptions import DataGenError


def numeric_table(
    name: str = "data",
    n: int = 1000,
    columns: Sequence[str] = ("x", "y", "z"),
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
    zipf_z: float = 0.0,
) -> Table:
    """A table of independent numeric columns over ``[low, high]``."""
    if not columns:
        raise DataGenError("numeric_table needs at least one column")
    rng = np.random.default_rng(seed)
    data = {}
    for column in columns:
        if zipf_z > 0:
            data[column] = zipf_floats(rng, n, low, high, zipf_z)
        else:
            data[column] = uniform_floats(rng, n, low, high)
    return Table.from_columns(name, data)


def users_table(
    n: int = 10_000, seed: int = 1, database: Optional[Database] = None
) -> Database:
    """The Example 1 scenario: an advertising audience table.

    Columns mirror the demographic criteria of the paper's Q1:
    age, income, engagement score (numeric) plus city and interest
    (categorical, for the section 7.3 extension).
    """
    rng = np.random.default_rng(seed)
    cities = np.array(
        ["Boston", "NewYork", "Seattle", "Miami", "Austin",
         "Chicago", "Denver", "Portland"],
        dtype=object,
    )
    interests = np.array(
        ["Retail", "Shopping", "Sports", "Travel", "Cooking", "Gaming"],
        dtype=object,
    )
    database = database or Database("ads")
    database.create_table(
        "users",
        {
            "user_id": np.arange(1, n + 1, dtype=np.int64),
            "age": uniform_ints(rng, n, 18, 75),
            "income": np.round(uniform_floats(rng, n, 5_000.0, 250_000.0), 2),
            "engagement": np.round(uniform_floats(rng, n, 0.0, 100.0), 3),
            "city": rng.choice(cities, size=n),
            "interest": rng.choice(interests, size=n),
        },
    )
    return database
