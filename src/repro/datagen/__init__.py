"""Synthetic data generation: TPC-H-shaped tables with a skew knob.

The paper evaluates on TPC-H data of 1K-10M tuples, plus a skewed
variant (Zipf z=1) produced with the Chaudhuri-Narasayya skewed TPC-D
generator. :func:`generate_tpch` reproduces the schema, key integrity,
value ranges and skew knob of the columns the experiments touch;
:mod:`repro.datagen.synthetic` provides simpler tables for unit and
property tests.
"""

from repro.datagen.distributions import (
    clustered,
    uniform_floats,
    uniform_ints,
    zipf_floats,
    zipf_ints,
)
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.datagen.synthetic import numeric_table, users_table

__all__ = [
    "clustered",
    "uniform_floats",
    "uniform_ints",
    "zipf_floats",
    "zipf_ints",
    "TPCHConfig",
    "generate_tpch",
    "numeric_table",
    "users_table",
]
