"""TPC-H-shaped data generator with a Zipf skew knob.

The paper's experiments run on TPC-H data of 1K-10M tuples (section
8.3), both uniform (the TPC-H standard, z = 0) and skewed with z = 1
via the Chaudhuri-Narasayya generator. The experiments only touch the
numeric attributes and join keys of the schema, so this generator
reproduces exactly those properties:

* the six-table schema around the paper's Q2 (supplier / part /
  partsupp) plus customer / orders / lineitem for additional workloads;
* primary keys that are dense sequences and foreign keys drawn from
  the referenced table (referential integrity holds by construction);
* TPC-H-spec value ranges for every measure column;
* one skew knob ``z`` applied to measure columns (z = 0 -> uniform).

Generation is deterministic given ``TPCHConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datagen.distributions import uniform_ints, zipf_floats, zipf_ints
from repro.engine.catalog import Database
from repro.exceptions import DataGenError

#: The 150 TPC-H part types.
PART_TYPE_SYLLABLES = (
    ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"),
    ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"),
    ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER"),
)

MARKET_SEGMENTS = (
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
)

ALL_TABLES = (
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)


@dataclass(frozen=True)
class TPCHConfig:
    """Sizing, skew and seeding for :func:`generate_tpch`.

    ``scale_rows`` is the size of ``partsupp`` — the relation the
    paper's Q2 workload aggregates over; the other tables scale with
    TPC-H's relative cardinalities. Any per-table count can be
    overridden via ``counts``.
    """

    scale_rows: int = 10_000
    zipf_z: float = 0.0
    seed: int = 7
    counts: dict = field(default_factory=dict)
    tables: tuple[str, ...] = ALL_TABLES

    def table_count(self, table: str) -> int:
        if table in self.counts:
            return int(self.counts[table])
        n = self.scale_rows
        defaults = {
            "partsupp": n,
            "part": max(n // 4, 8),
            "supplier": max(n // 40, 4),
            "customer": max(n // 5, 8),
            "orders": max(n // 2, 8),
            "lineitem": 2 * n,
        }
        return defaults[table]


def generate_tpch(config: Optional[TPCHConfig] = None) -> Database:
    """Generate a TPC-H-shaped database per the configuration."""
    config = config or TPCHConfig()
    unknown = set(config.tables) - set(ALL_TABLES)
    if unknown:
        raise DataGenError(f"unknown TPC-H tables requested: {sorted(unknown)}")
    rng = np.random.default_rng(config.seed)
    z = config.zipf_z
    database = Database("tpch" if z == 0 else f"tpch_z{z:g}")
    generators = {
        "supplier": _supplier,
        "part": _part,
        "partsupp": _partsupp,
        "customer": _customer,
        "orders": _orders,
        "lineitem": _lineitem,
    }
    # Respect dependency order regardless of the requested tuple order.
    requested = [t for t in ALL_TABLES if t in config.tables]
    needed = set(requested)
    # FK parents must exist for key sampling even if not requested.
    if "partsupp" in needed:
        needed |= {"supplier", "part"}
    if "orders" in needed:
        needed |= {"customer"}
    if "lineitem" in needed:
        needed |= {"orders", "part", "supplier"}
    sizes = {t: config.table_count(t) for t in ALL_TABLES if t in needed}
    key_pools: dict[str, np.ndarray] = {
        t: np.arange(1, sizes[t] + 1, dtype=np.int64) for t in sizes
    }
    for table in ALL_TABLES:
        if table not in requested:
            continue
        columns = generators[table](rng, sizes[table], z, key_pools)
        database.create_table(table, columns)
    return database


# ----------------------------------------------------------------------
# Per-table generators
# ----------------------------------------------------------------------
def _money(rng: np.random.Generator, n: int, low: float, high: float, z: float):
    values = zipf_floats(rng, n, low, high, z)
    return np.round(values, 2)


def _supplier(rng, n, z, keys) -> dict:
    return {
        "s_suppkey": keys["supplier"],
        "s_nationkey": uniform_ints(rng, n, 0, 24),
        "s_acctbal": _money(rng, n, -999.99, 9999.99, z),
    }


def _part(rng, n, z, keys) -> dict:
    type_indices = rng.integers(0, 150, size=n)
    types = np.array(
        [
            " ".join(
                (
                    PART_TYPE_SYLLABLES[0][index // 25],
                    PART_TYPE_SYLLABLES[1][(index // 5) % 5],
                    PART_TYPE_SYLLABLES[2][index % 5],
                )
            )
            for index in type_indices
        ],
        dtype=object,
    )
    return {
        "p_partkey": keys["part"],
        "p_size": zipf_ints(rng, n, 1, 50, z),
        "p_retailprice": _money(rng, n, 900.0, 2098.99, z),
        "p_type": types,
    }


def _partsupp(rng, n, z, keys) -> dict:
    return {
        "ps_partkey": rng.choice(keys["part"], size=n),
        "ps_suppkey": rng.choice(keys["supplier"], size=n),
        "ps_availqty": zipf_ints(rng, n, 1, 9999, z),
        "ps_supplycost": _money(rng, n, 1.0, 1000.0, z),
    }


def _customer(rng, n, z, keys) -> dict:
    return {
        "c_custkey": keys["customer"],
        "c_nationkey": uniform_ints(rng, n, 0, 24),
        "c_acctbal": _money(rng, n, -999.99, 9999.99, z),
        "c_mktsegment": rng.choice(
            np.array(MARKET_SEGMENTS, dtype=object), size=n
        ),
    }


def _orders(rng, n, z, keys) -> dict:
    return {
        "o_orderkey": keys["orders"],
        "o_custkey": rng.choice(keys["customer"], size=n),
        "o_totalprice": _money(rng, n, 857.71, 555285.16, z),
        "o_orderdate": uniform_ints(rng, n, 8035, 10591),  # days since epoch
    }


def _lineitem(rng, n, z, keys) -> dict:
    quantity = zipf_ints(rng, n, 1, 50, z)
    price_per_unit = zipf_floats(rng, n, 900.0, 2098.99, z)
    return {
        "l_orderkey": rng.choice(keys["orders"], size=n),
        "l_partkey": rng.choice(keys["part"], size=n),
        "l_suppkey": rng.choice(keys["supplier"], size=n),
        "l_quantity": quantity,
        "l_extendedprice": np.round(quantity * price_per_unit, 2),
        "l_discount": np.round(zipf_floats(rng, n, 0.0, 0.10, z), 2),
        "l_tax": np.round(zipf_floats(rng, n, 0.0, 0.08, z), 2),
        "l_shipdate": uniform_ints(rng, n, 8035, 10712),
    }


def tpch_sizes(database: Database) -> dict:
    """Row counts of every generated table (for reports and tests)."""
    return {name: len(database.table(name)) for name in database.table_names}
