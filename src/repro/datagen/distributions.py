"""Primitive samplers: uniform, Zipfian, and clustered columns.

Standard TPC-H data is uniform (Zipf z = 0); the paper additionally
evaluates on data skewed with z = 1 using the Chaudhuri-Narasayya
generator. :func:`zipf_ints` reproduces that generator's behaviour:
values are drawn from a fixed domain with probability proportional to
``1 / rank^z``, so ``z = 0`` degenerates to uniform and ``z = 1`` gives
the paper's skewed setting.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenError


def _check(n: int, low: float, high: float) -> None:
    if n < 0:
        raise DataGenError(f"negative row count: {n}")
    if low > high:
        raise DataGenError(f"empty domain: [{low}, {high}]")


def uniform_ints(
    rng: np.random.Generator, n: int, low: int, high: int
) -> np.ndarray:
    """Uniform integers in ``[low, high]`` inclusive."""
    _check(n, low, high)
    return rng.integers(low, high + 1, size=n, dtype=np.int64)


def uniform_floats(
    rng: np.random.Generator, n: int, low: float, high: float
) -> np.ndarray:
    """Uniform floats in ``[low, high)``."""
    _check(n, low, high)
    return rng.uniform(low, high, size=n)


def zipf_probabilities(domain_size: int, z: float) -> np.ndarray:
    """Normalized Zipf(z) rank probabilities over ``domain_size`` values."""
    if domain_size <= 0:
        raise DataGenError(f"domain size must be positive: {domain_size}")
    if z < 0:
        raise DataGenError(f"zipf exponent must be >= 0: {z}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / np.sum(weights)


def zipf_ints(
    rng: np.random.Generator,
    n: int,
    low: int,
    high: int,
    z: float,
    shuffle_ranks: bool = True,
) -> np.ndarray:
    """Zipf-skewed integers over the inclusive domain ``[low, high]``.

    ``shuffle_ranks`` assigns ranks to domain values in a random
    permutation (seeded by ``rng``), matching the skewed TPC-D
    generator's decoupling of frequency rank from value order.
    """
    _check(n, low, high)
    domain = np.arange(low, high + 1, dtype=np.int64)
    probabilities = zipf_probabilities(len(domain), z)
    if shuffle_ranks:
        domain = rng.permutation(domain)
    return rng.choice(domain, size=n, p=probabilities)


def zipf_floats(
    rng: np.random.Generator,
    n: int,
    low: float,
    high: float,
    z: float,
    buckets: int = 1024,
) -> np.ndarray:
    """Zipf-skewed floats: bucket the range, skew bucket frequencies,
    then jitter uniformly within the chosen bucket."""
    _check(n, low, high)
    probabilities = zipf_probabilities(buckets, z)
    chosen = rng.choice(
        rng.permutation(np.arange(buckets)), size=n, p=probabilities
    )
    width = (high - low) / buckets
    return low + (chosen + rng.random(n)) * width


def clustered(
    rng: np.random.Generator,
    n: int,
    centers: list[float],
    spread: float,
    low: float,
    high: float,
) -> np.ndarray:
    """Mixture-of-Gaussians column clipped to ``[low, high]``.

    Useful in tests for data with empty regions — the regime where the
    section 7.4 bitmap index and cell skipping pay off.
    """
    _check(n, low, high)
    if not centers:
        raise DataGenError("clustered() needs at least one center")
    if spread <= 0:
        raise DataGenError(f"spread must be positive: {spread}")
    assignment = rng.integers(0, len(centers), size=n)
    values = rng.normal(np.asarray(centers)[assignment], spread)
    return np.clip(values, low, high)
