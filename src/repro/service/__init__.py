"""ACQ-as-a-service: a concurrent multi-query driver.

The paper frames refinement processing as an interactive workload —
many analysts refining aggregation-constrained queries against one
engine. :class:`AcquireService` is that deployment shape: a long-lived
driver admitting N in-flight ACQ requests against shared
:class:`~repro.engine.backends.EvaluationLayer` backends, one shared
:class:`~repro.core.grid_cache.GridTensorCache` (the cache key is
target-independent, so concurrent sweeps over the same data dedupe
tile work across requests), and one shared
:class:`~repro.core.plan.PlanCalibration`.

Admission control is two budgets plus bounded-queue backpressure:

* a per-request **query budget** clamps each request's
  ``max_grid_queries`` (runtime-enforced by the driver's safety valve);
* a per-request **row budget** rejects requests whose largest
  referenced table exceeds it (the floor of any backend pass);
* at most ``workers + max_queue`` requests are admitted at once —
  beyond that the configured policy either rejects immediately or
  waits (optionally bounded by ``wait_timeout_s``).

Rejections raise :class:`~repro.exceptions.ServiceError` with a stable
``reason`` code. See ``docs/SERVICE.md`` for the full contract and the
load-generator experiment, and :mod:`repro.service.loadgen` for the
open/closed-loop harness.

With ``ServiceConfig(fusion=True)`` the service additionally installs
a cross-query :class:`~repro.service.fusion.PassCoalescer` on every
registered backend: compatible cell/tile fetches from concurrent
requests are batched during a short adaptive window and served by
**one** merged backend pass, while results stay bit-identical to a
serial replay (see the "Cross-query fusion" section of
``docs/SERVICE.md``).
"""

from repro.service.fusion import FusedFetch, PassCoalescer
from repro.service.loadgen import (
    LoadReport,
    RequestRecord,
    percentile,
    run_closed_loop,
    run_open_loop,
    sample_corpus_requests,
)
from repro.service.service import (
    AcquireService,
    ServiceConfig,
    ServiceStats,
)

__all__ = [
    "AcquireService",
    "FusedFetch",
    "LoadReport",
    "PassCoalescer",
    "RequestRecord",
    "ServiceConfig",
    "ServiceStats",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
    "sample_corpus_requests",
]
