"""Open/closed-loop load generation against an :class:`AcquireService`.

Two arrival models, both over explicit request lists so runs are
deterministic apart from scheduling:

* **closed loop** (:func:`run_closed_loop`): ``concurrency`` client
  threads each submit their next request as soon as the previous one
  completes — the classic throughput-probe shape ("how many requests
  per second can W workers sustain?").
* **open loop** (:func:`run_open_loop`): one arrival thread submits at
  a fixed inter-arrival gap regardless of completions — the shape that
  exposes backpressure (queue-full rejections, wait timeouts) because
  arrivals do not slow down when the service saturates.

:func:`sample_corpus_requests` draws realized triples from the
gold-standard corpus manifest so generated traffic has the answer
distribution of real ACQs; ``duplicate_fraction`` re-issues a suffix of
the sample against the *same* backend with a jittered constraint
target, which exercises the shared grid cache's target-independent
keys (the duplicate's tile tensors are served from cache even though
its target differs — cross-request dedupe).
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence

from repro.core.acquire import AcquireConfig
from repro.core.query import Query
from repro.exceptions import CorpusError, ServiceError
from repro.service.service import AcquireService, ServiceStats

#: A prepared request: backend name, query, per-request config.
Request = tuple[str, Query, AcquireConfig]


@dataclass
class RequestRecord:
    """Outcome of one generated request."""

    index: int
    backend: str
    latency_s: float = 0.0
    completed: bool = False
    satisfied: bool = False
    rejected_reason: str = ""
    queries_executed: int = 0
    rows_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fused_passes: int = 0
    fused_cells: int = 0


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    records: list[RequestRecord] = field(default_factory=list)
    wall_s: float = 0.0
    service: Optional[ServiceStats] = None

    @property
    def completed(self) -> int:
        return sum(1 for record in self.records if record.completed)

    @property
    def rejected(self) -> int:
        return sum(1 for record in self.records if record.rejected_reason)

    @property
    def throughput_rps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.completed / self.wall_s

    @property
    def latencies_ms(self) -> list[float]:
        return sorted(
            record.latency_s * 1000.0
            for record in self.records
            if record.completed
        )

    def latency_ms(self, quantile: float) -> float:
        return percentile(self.latencies_ms, quantile)

    @property
    def cache_hits(self) -> int:
        return sum(record.cache_hits for record in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(record.cache_misses for record in self.records)

    @property
    def queries_executed(self) -> int:
        """Total backend queries issued across completed requests."""
        return sum(record.queries_executed for record in self.records)

    @property
    def fused_passes(self) -> int:
        """Shared merged passes requests benefited from (fusion)."""
        return sum(record.fused_passes for record in self.records)

    @property
    def fused_cells(self) -> int:
        """Cells those shared merged passes delivered (fusion)."""
        return sum(record.fused_cells for record in self.records)


def percentile(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 if empty)."""
    if not ordered:
        return 0.0
    if not 0.0 <= quantile <= 1.0:
        raise CorpusError(f"quantile must be in [0, 1], got {quantile}")
    rank = max(int(math.ceil(quantile * len(ordered))) - 1, 0)
    return float(ordered[rank])


# ---------------------------------------------------------------------
# Corpus-sampled traffic


def sample_corpus_requests(
    service: AcquireService,
    count: int,
    seed: int = 7,
    duplicate_fraction: float = 0.5,
    families: Optional[Sequence[str]] = None,
    explore_mode: str = "materialized",
    duplicate_placement: str = "tail",
) -> list[Request]:
    """Register corpus backends on ``service`` and build a request mix.

    Draws ``count`` distinct manifest triples (optionally restricted to
    ``families``), realizes each one, registers its database as a
    service backend named by the triple id, and returns one request per
    triple **plus** duplicates for the last ``duplicate_fraction`` of
    the sample (fractions above 1 cycle through that tail, so a
    duplicate-*heavy* mix is one call). A duplicate targets the same
    backend with the same refinable shape but a slightly jittered
    constraint target, so its grid/tile tensors — keyed independently
    of the target — are served from the shared cache that the original
    populated: any shared-cache hit the run reports is cross-request
    dedupe at work.

    ``explore_mode`` overrides each realized config (the incremental
    engine never consults the grid cache, so the default forces the
    materializing path; pass ``""`` to keep the manifest's modes).

    ``duplicate_placement`` shapes the arrival order: ``"tail"``
    (default) appends every duplicate after the originals, so
    duplicates find the cache warm; ``"adjacent"`` places each
    original's duplicates immediately after it, so same-key requests
    race *in flight* — the shape that exercises cross-query pass
    fusion (``ServiceConfig(fusion=True)``) rather than the cache.
    """
    from repro.corpus.generator import realize
    from repro.corpus.manifest import DEFAULT_MANIFEST_PATH, load_manifest
    from repro.engine.memory_backend import MemoryBackend

    if duplicate_placement not in ("tail", "adjacent"):
        raise CorpusError(
            "duplicate_placement must be 'tail' or 'adjacent', "
            f"got {duplicate_placement!r}"
        )
    triples = list(load_manifest(DEFAULT_MANIFEST_PATH).triples)
    if families:
        wanted = set(families)
        triples = [
            triple for triple in triples
            if triple.spec.family in wanted
        ]
    if not triples:
        raise CorpusError("no manifest triples match the requested families")
    rng = random.Random(seed)
    chosen = rng.sample(triples, min(count, len(triples)))
    requests: list[Request] = []
    for triple in chosen:
        database, query, config = realize(triple.spec)
        if explore_mode:
            config = replace(config, explore_mode=explore_mode)
        name = triple.spec.triple_id
        service.register_backend(name, MemoryBackend(database))
        requests.append((name, query, config))
    duplicates = int(len(requests) * duplicate_fraction)
    if duplicates:
        total = len(requests)
        start = total - min(duplicates, total)
        dups_by_original: dict[int, list[Request]] = {}
        for index in range(duplicates):
            source = start + index % (total - start)
            name, query, config = requests[source]
            dups_by_original.setdefault(source, []).append(
                (name, _jitter_target(query, rng), config)
            )
        if duplicate_placement == "tail":
            for source in sorted(dups_by_original):
                requests.extend(dups_by_original[source])
        else:
            interleaved: list[Request] = []
            for index, original in enumerate(requests):
                interleaved.append(original)
                interleaved.extend(dups_by_original.get(index, []))
            requests = interleaved
    return requests


def _jitter_target(query: Query, rng: random.Random) -> Query:
    """The same ACQ with its constraint target nudged by up to 2%.

    The grid cache key ignores the target, so a jittered duplicate
    still dedupes against the original's tensors while asking a
    genuinely different question.
    """
    constraint = query.constraint
    target = constraint.target
    nudged = target * (1.0 + rng.uniform(-0.02, 0.02))
    if isinstance(target, int):
        nudged = max(int(round(nudged)), 1)
    return query.with_constraint(replace(constraint, target=nudged))


# ---------------------------------------------------------------------
# Arrival models


def _issue(
    service: AcquireService,
    index: int,
    request: Request,
) -> RequestRecord:
    """Submit one request synchronously and record its outcome."""
    backend, query, config = request
    record = RequestRecord(index=index, backend=backend)
    started = time.perf_counter()
    try:
        result = service.run(query, config, backend=backend)
    except ServiceError as error:
        record.latency_s = time.perf_counter() - started
        record.rejected_reason = error.reason
        return record
    record.latency_s = time.perf_counter() - started
    record.completed = True
    record.satisfied = result.satisfied
    execution = result.stats.execution
    record.queries_executed = execution.queries_executed
    record.rows_scanned = execution.rows_scanned
    record.cache_hits = execution.cache_hits
    record.cache_misses = execution.cache_misses
    record.fused_passes = execution.fused_passes
    record.fused_cells = execution.fused_cells
    return record


def _closed_loop_client(
    service: AcquireService,
    iterator: Iterator[tuple[int, Request]],
    guard: threading.Lock,
    records: list[RequestRecord],
    on_record: Optional[Callable[[RequestRecord], None]],
) -> None:
    """One closed-loop client: drain the shared iterator to exhaustion."""
    while True:
        with guard:
            item = next(iterator, None)
        if item is None:
            return
        index, request = item
        record = _issue(service, index, request)
        with guard:
            records.append(record)
        if on_record is not None:
            on_record(record)


def run_closed_loop(
    service: AcquireService,
    requests: Sequence[Request],
    concurrency: int,
    on_record: Optional[Callable[[RequestRecord], None]] = None,
) -> LoadReport:
    """``concurrency`` clients, each submitting its next request the
    moment the previous one completes."""
    before = service.stats()
    iterator = iter(list(enumerate(requests)))
    guard = threading.Lock()
    records: list[RequestRecord] = []

    started = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max(int(concurrency), 1),
        thread_name_prefix="repro-loadgen",
    ) as pool:
        futures = [
            pool.submit(
                _closed_loop_client,
                service,
                iterator,
                guard,
                records,
                on_record,
            )
            for _ in range(max(int(concurrency), 1))
        ]
        for future in futures:
            future.result()
    wall = time.perf_counter() - started
    records.sort(key=lambda record: record.index)
    return LoadReport(
        records=records,
        wall_s=wall,
        service=service.stats().since(before),
    )


def run_open_loop(
    service: AcquireService,
    requests: Sequence[Request],
    inter_arrival_s: float,
) -> LoadReport:
    """Submit at a fixed arrival gap, independent of completions.

    Arrivals that the service refuses (queue-full under the reject
    policy, budget) are recorded as rejected rather than retried —
    open-loop traffic does not slow down for a saturated server, which
    is exactly what makes this arm surface the backpressure policy.
    """
    before = service.stats()
    records: list[RequestRecord] = [
        RequestRecord(index=index, backend=request[0])
        for index, request in enumerate(requests)
    ]
    pending = []
    started = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max(len(requests), 1),
        thread_name_prefix="repro-loadgen-open",
    ) as pool:
        for index, request in enumerate(requests):
            due = started + index * max(inter_arrival_s, 0.0)
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            pending.append(pool.submit(_issue, service, index, request))
        for index, future in enumerate(pending):
            records[index] = future.result()
    wall = time.perf_counter() - started
    return LoadReport(
        records=records,
        wall_s=wall,
        service=service.stats().since(before),
    )
