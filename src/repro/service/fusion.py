"""Cross-query pass fusion: one backend pass serves many requests.

The service tier admits N concurrent refinement searches over shared
backends, and real constraint workloads arrive in bursts of
near-duplicates — the same tables, predicates, and grid geometry with
slightly different targets. Each such request pays its own Expand-layer
backend pass even though the *tensors* those passes compute are
identical (the grid cache only helps the requests that arrive after a
tensor is published). :class:`PassCoalescer` closes that gap: it
intercepts the cell/tile fetches of every in-flight request, groups
compatible fetches during a short batching window, and issues **one**
merged backend pass per group, handing each waiting request a read-only
view of its cells.

Compatibility. Two fetches may share a pass only when their tensors are
interchangeable, which is exactly the grid cache's target-independent
key family (``repro.core.grid_cache``): same layer (token — and thus
the same backend data), same query fingerprint (tables, predicates at
score 0, aggregate spec; the constraint target deliberately excluded),
and same space geometry. The coalescer key adds the layer's persistent
fingerprint (backend class + data digest) when one exists, mirroring
``TensorKey``; a Hypothesis property test pins that fetches with
different geometry, layer, or digest can never group.

Windows. The first fetch of a group becomes the *leader*: it parks for
an adaptive batching window — sized by
:meth:`~repro.core.plan.PlanCalibration.fusion_window_s` from observed
pass latency, capped by ``ServiceConfig.fusion_window_ms``, and
skipped entirely when at most one request is in flight — then executes
the merged pass on its own thread
(:meth:`~repro.engine.backends.EvaluationLayer.execute_grid_tiles` for
tile groups, ``execute_cells`` over the coordinate union for cell
groups) and distributes results through per-member futures. Fetches
that arrive while a tile pass is already executing join it in flight
rather than starting a new one. The window closes early once every
in-flight request has joined.

Attribution. The leader executes the merged pass under its own request
scopes, so the *physical* counters (``queries_executed``,
``grid_cells``, ``rows_scanned``, ...) credit the leader exactly as a
solo run would. Every request a shared pass served — leader included —
records the ``fused_passes``/``fused_cells``/``fusion_wait_s``
counters on its *own* thread via
:meth:`~repro.engine.backends.EvaluationLayer.count_fused`, so request
scopes keep partitioning the layer totals counter for counter.

Failure. A merged pass that raises resolves every member with None;
each member (leader included) then falls back to its own direct
backend pass, so one request's failure never propagates to another —
fusion is an optimization, never a correctness dependency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Callable, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.grid_cache import (
    layer_cache_token,
    query_fingerprint,
    space_fingerprint,
)
from repro.engine.backends import current_scopes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregates import AggState
    from repro.core.plan import PlanCalibration
    from repro.core.refined_space import RefinedSpace
    from repro.engine.backends import EvaluationLayer, PreparedQuery

#: Ceiling on a merged bounding-box pass; groups whose bounding box
#: would exceed it fall back to per-box passes (pure deduplication).
DEFAULT_MAX_MERGED_CELLS = 1 << 20

#: Bound on a follower's wait for the leader's pass. Generous — merged
#: passes are ordinary backend passes — but finite, so a stuck backend
#: degrades to the follower's own fallback pass instead of a hang.
FOLLOWER_TIMEOUT_S = 120.0


class FusedFetch(NamedTuple):
    """Outcome of a coalesced fetch.

    ``executed`` is True for the member that physically ran the merged
    pass on its own thread (it must store/count the tensor like any
    direct pass); False for members that adopted another request's
    result (they count only the fused counters, which the coalescer
    already recorded).
    """

    tensor: np.ndarray
    executed: bool


class _BoxSlot:
    """One distinct tile box within a group: a shared future plus a
    back-reference to the group (for the requester set and counters)."""

    __slots__ = ("future", "group")

    def __init__(self, group: "_Group") -> None:
        self.future: Future = Future()
        self.group = group


class _CellMember:
    """One request's cell batch within a cell group."""

    __slots__ = ("coords", "future")

    def __init__(self, coords: list[tuple[int, ...]]) -> None:
        self.coords = coords
        self.future: Future = Future()


class _Group:
    """One open batching window of compatible fetches.

    ``slots`` maps tile boxes to shared futures (tile groups);
    ``members`` holds per-request cell batches (cell groups). Both are
    mutated only under the coalescer lock; ``event`` lets joiners close
    the window early once every in-flight request is represented.
    """

    __slots__ = (
        "key",
        "prepared",
        "space",
        "slots",
        "members",
        "requesters",
        "fetches",
        "parallelism",
        "event",
    )

    def __init__(self, key: tuple, prepared: "PreparedQuery", space: "RefinedSpace") -> None:
        self.key = key
        self.prepared = prepared
        self.space = space
        self.slots: dict[tuple, _BoxSlot] = {}
        self.members: list[_CellMember] = []
        self.requesters: set = set()
        self.fetches = 0
        self.parallelism = 1
        self.event = threading.Event()


class PassCoalescer:
    """Cross-request fetch batcher for one service (see module docs).

    Args:
        window_s: cap on the batching window in seconds; the effective
            window adapts below it via ``calibration.fusion_window_s``
            and drops to zero while at most one request is in flight.
        calibration: shared :class:`~repro.core.plan.PlanCalibration`
            fed with every dispatch (and consulted for the window);
            optional.
        active_requests: callable returning the number of requests
            currently in flight — the service's ``in_flight`` gauge.
        max_merged_cells: ceiling on a merged bounding-box pass.
        on_fused: callback ``(groups, fetches)`` invoked after each
            dispatch that actually shared a pass across requests; the
            service uses it to feed :class:`ServiceStats`.
    """

    def __init__(
        self,
        window_s: float = 0.002,
        calibration: Optional["PlanCalibration"] = None,
        active_requests: Optional[Callable[[], int]] = None,
        max_merged_cells: int = DEFAULT_MAX_MERGED_CELLS,
        on_fused: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self._window_cap_s = max(float(window_s), 0.0)
        self._calibration = calibration
        self._active_requests = active_requests or (lambda: 1)
        self._max_merged_cells = int(max_merged_cells)
        self._on_fused = on_fused
        self._lock = threading.Lock()
        self._tile_groups: dict[tuple, _Group] = {}
        self._cell_groups: dict[tuple, _Group] = {}
        self._inflight: dict[tuple, _BoxSlot] = {}
        self._closed = False

    # -- keys ---------------------------------------------------------
    @staticmethod
    def compatibility_key(
        family: str,
        layer: "EvaluationLayer",
        prepared: "PreparedQuery",
        space: "RefinedSpace",
    ) -> tuple:
        """Target-independent grouping key for one fetch family.

        The same identity the grid cache proves safe: layer token (two
        layers never share — different data means a different layer),
        the layer's persistent fingerprint when it has one (backend
        class + content digest), the query fingerprint (constraint
        target excluded), and the space geometry.
        """
        probe = getattr(layer, "persistent_cache_key", None)
        fingerprint = probe() if callable(probe) else None
        return (
            str(family),
            layer_cache_token(layer),
            fingerprint,
            query_fingerprint(prepared.query),
            space_fingerprint(space),
        )

    @staticmethod
    def _requester_id() -> object:
        """Identity of the in-flight request behind the calling thread.

        The innermost request scope is one object per admitted request
        (re-established on pool threads), so its id distinguishes
        requests even when one request fans tile fetches across
        threads. Scope-less callers fall back to their thread id.
        """
        scopes = current_scopes()
        if scopes:
            return id(scopes[-1])
        return ("thread", threading.get_ident())

    def _window_s(self) -> float:
        """Effective batching window right now (0 = dispatch at once)."""
        if self._window_cap_s <= 0.0 or self._active_requests() <= 1:
            return 0.0
        if self._calibration is not None:
            return self._calibration.fusion_window_s(self._window_cap_s)
        return self._window_cap_s

    # -- tile fetches -------------------------------------------------
    def fetch_tile(
        self,
        layer: "EvaluationLayer",
        prepared: "PreparedQuery",
        space: "RefinedSpace",
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> Optional[FusedFetch]:
        """Coalesce one tile fetch; None means "run it yourself".

        Joins an open window for the compatibility key (or an already
        executing pass covering the same box), leads a new window when
        none exists, and returns the tile tensor with ``executed``
        marking whether this call ran the merged pass. Returns None
        when the coalescer is closed or the pass failed — the caller
        then falls back to its own direct backend pass.
        """
        box = (
            tuple(int(c) for c in lo),
            tuple(int(c) for c in hi),
        )
        key = self.compatibility_key("tiles", layer, prepared, space)
        me = self._requester_id()
        started = time.perf_counter()
        lead = False
        with self._lock:
            if self._closed:
                return None
            slot = self._inflight.get((key, box))
            if slot is not None:
                # A pass covering this box is already executing; join.
                slot.group.requesters.add(me)
                slot.group.fetches += 1
            else:
                group = self._tile_groups.get(key)
                if group is None:
                    group = _Group(key, prepared, space)
                    self._tile_groups[key] = group
                    lead = True
                slot = group.slots.get(box)
                if slot is None:
                    slot = _BoxSlot(group)
                    group.slots[box] = slot
                group.requesters.add(me)
                group.fetches += 1
                if (
                    not lead
                    and len(group.requesters) >= self._active_requests()
                ):
                    group.event.set()
        if lead:
            return self._lead_tiles(layer, slot.group, box, me, started)
        return self._follow(layer, slot, box, me, started)

    def _lead_tiles(
        self,
        layer: "EvaluationLayer",
        group: _Group,
        own_box: tuple,
        me: object,
        started: float,
    ) -> Optional[FusedFetch]:
        """Close the window, run the merged pass, distribute results."""
        window = self._window_s()
        if window > 0.0:
            group.event.wait(window)
        with self._lock:
            self._tile_groups.pop(group.key, None)
            slots = dict(group.slots)
            shared = any(r != me for r in group.requesters)
            for box in slots:
                self._inflight[(group.key, box)] = slots[box]
        boxes = sorted(slots)
        wait_s = time.perf_counter() - started
        pass_started = time.perf_counter()
        try:
            tensors = layer.execute_grid_tiles(
                group.prepared,
                group.space,
                boxes,
                max_merged_cells=self._max_merged_cells,
            )
        except Exception:
            self._resolve(group.key, slots, {})
            return None
        pass_s = time.perf_counter() - pass_started
        results = dict(zip(boxes, tensors))
        self._resolve(group.key, slots, results)
        self._report(group, passes=len(boxes), pass_s=pass_s, shared=shared)
        if shared:
            layer.count_fused(
                passes=1, cells=_box_cells(own_box), wait_s=wait_s
            )
        return FusedFetch(results[own_box], executed=True)

    def _follow(
        self,
        layer: "EvaluationLayer",
        slot: _BoxSlot,
        box: tuple,
        me: object,
        started: float,
    ) -> Optional[FusedFetch]:
        """Wait for a leader's pass to deliver this box (or fall back)."""
        try:
            tensor = slot.future.result(timeout=FOLLOWER_TIMEOUT_S)
        except Exception:
            return None
        if tensor is None:
            return None
        wait_s = time.perf_counter() - started
        with self._lock:
            shared = any(r != me for r in slot.group.requesters)
        if shared:
            layer.count_fused(
                passes=1, cells=_box_cells(box), wait_s=wait_s
            )
        return FusedFetch(tensor, executed=False)

    def _resolve(
        self, key: tuple, slots: dict[tuple, _BoxSlot], results: dict
    ) -> None:
        """Retire in-flight entries and wake every waiter (None on
        failure — waiters fall back to their own pass)."""
        with self._lock:
            for box in slots:
                self._inflight.pop((key, box), None)
        for box, slot in slots.items():
            slot.future.set_result(results.get(box))

    # -- cell-batch fetches -------------------------------------------
    def fetch_cells(
        self,
        layer: "EvaluationLayer",
        prepared: "PreparedQuery",
        space: "RefinedSpace",
        coords_list: Sequence[Sequence[int]],
        parallelism: int = 1,
    ) -> Optional[list["AggState"]]:
        """Coalesce one incremental cell batch; None means "run it
        yourself".

        Compatible batches arriving within the window are executed as
        one ``execute_cells`` pass over their coordinate union; each
        member receives exactly its own cells, in its own order —
        bit-identical to executing its batch alone, because a cell's
        state never depends on what else is in the pass.
        """
        coords = [tuple(int(c) for c in item) for item in coords_list]
        if not coords:
            return []
        key = self.compatibility_key("cells", layer, prepared, space)
        me = self._requester_id()
        started = time.perf_counter()
        member = _CellMember(coords)
        lead = False
        with self._lock:
            if self._closed:
                return None
            group = self._cell_groups.get(key)
            if group is None:
                group = _Group(key, prepared, space)
                self._cell_groups[key] = group
                lead = True
            group.members.append(member)
            group.requesters.add(me)
            group.fetches += 1
            if parallelism > group.parallelism:
                group.parallelism = parallelism
            if (
                not lead
                and len(group.requesters) >= self._active_requests()
            ):
                group.event.set()
        if lead:
            return self._lead_cells(layer, group, member, me, started)
        try:
            states = member.future.result(timeout=FOLLOWER_TIMEOUT_S)
        except Exception:
            return None
        if states is None:
            return None
        with self._lock:
            shared = any(r != me for r in group.requesters)
        if shared:
            layer.count_fused(
                passes=1,
                cells=len(coords),
                wait_s=time.perf_counter() - started,
            )
        return states

    def _lead_cells(
        self,
        layer: "EvaluationLayer",
        group: _Group,
        member: _CellMember,
        me: object,
        started: float,
    ) -> Optional[list["AggState"]]:
        window = self._window_s()
        if window > 0.0:
            group.event.wait(window)
        with self._lock:
            self._cell_groups.pop(group.key, None)
            members = list(group.members)
            shared = any(r != me for r in group.requesters)
            parallelism = group.parallelism
        union = sorted({c for m in members for c in m.coords})
        wait_s = time.perf_counter() - started
        pass_started = time.perf_counter()
        try:
            states = layer.execute_cells(
                group.prepared, group.space, union, parallelism=parallelism
            )
        except Exception:
            for other in members:
                if other is not member:
                    other.future.set_result(None)
            return None
        pass_s = time.perf_counter() - pass_started
        by_coords = dict(zip(union, states))
        for other in members:
            if other is not member:
                other.future.set_result(
                    [by_coords[c] for c in other.coords]
                )
        self._report(group, passes=1, pass_s=pass_s, shared=shared)
        if shared:
            layer.count_fused(
                passes=1, cells=len(member.coords), wait_s=wait_s
            )
        return [by_coords[c] for c in member.coords]

    # -- bookkeeping --------------------------------------------------
    def _report(
        self, group: _Group, passes: int, pass_s: float, shared: bool
    ) -> None:
        """Feed the calibration and the service after one dispatch."""
        with self._lock:
            fetches = group.fetches
        if self._calibration is not None:
            self._calibration.observe_fusion(fetches, passes, pass_s)
        if shared and self._on_fused is not None:
            self._on_fused(1, fetches)

    def close(self) -> None:
        """Stop coalescing: later fetches fall through to direct
        passes. Open windows are still drained by their leaders (every
        dispatch runs on a requester thread; there is no worker here).
        """
        with self._lock:
            self._closed = True


def _box_cells(box: tuple) -> int:
    """Grid cells in an inclusive ``(lo, hi)`` box."""
    lo, hi = box
    cells = 1
    for low, high in zip(lo, hi):
        cells *= high - low + 1
    return cells


__all__ = [
    "DEFAULT_MAX_MERGED_CELLS",
    "FusedFetch",
    "PassCoalescer",
]
