"""The concurrent multi-query ACQ driver (see package docstring).

Concurrency model: requests execute on a service-owned thread pool of
``workers`` threads, each running the ordinary
:class:`~repro.core.acquire.Acquire` driver against a registered
backend. Everything shared between requests is thread-safe by
construction — the backends' counting seams serialize on their
``_stats_lock``, the grid cache and plan calibration carry internal
locks, and per-request attribution rides on the backends' request
scopes (:meth:`~repro.engine.backends.EvaluationLayer.request_scope`),
so concurrent requests report exactly the counters a serial replay
would. Service bookkeeping (:class:`ServiceStats`, the backend
registry, the closed flag) is guarded by one service lock.

Admission happens on the *submitting* thread: budget checks first,
then a slot on the bounded admission semaphore (``workers +
max_queue`` slots; the policy decides reject-vs-wait when none is
free). The slot is released when the request finishes, so the semaphore
bounds queued + in-flight work — classic bounded-queue backpressure.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.grid_cache import (
    DEFAULT_CACHE_BYTES,
    GridTensorCache,
    PersistentGridCache,
)
from repro.core.plan import PlanCalibration
from repro.core.query import Query
from repro.core.result import AcquireResult
from repro.engine.backends import EvaluationLayer
from repro.exceptions import QueryModelError, ServiceError
from repro.service.fusion import PassCoalescer

DEFAULT_BACKEND = "default"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of :class:`AcquireService`.

    Attributes:
        workers: request-executing threads. Throughput scales with
            workers only on backends whose execution path releases the
            GIL (the sqlite backend does; see ``docs/SERVICE.md``).
        max_queue: admitted requests allowed to *wait* beyond the
            ``workers`` in flight; ``workers + max_queue`` bounds the
            service's total outstanding work.
        admission: backpressure policy when no slot is free —
            ``"reject"`` raises :class:`~repro.exceptions.ServiceError`
            (``reason="queue-full"``) immediately, ``"wait"`` blocks
            the submitter until a slot frees (or ``wait_timeout_s``
            expires, ``reason="timeout"``).
        wait_timeout_s: bound on the ``"wait"`` policy's block;
            ``None`` waits indefinitely.
        max_grid_queries_per_request: per-request query budget; each
            admitted request's ``max_grid_queries`` is clamped to it,
            so the driver's safety valve enforces the budget at
            runtime. ``None`` leaves the caller's value.
        max_rows_per_request: per-request row budget; requests whose
            largest referenced table exceeds it are rejected at
            admission (``reason="budget"``) — one backend pass over
            that table is the floor of the work the request would do.
            ``None`` disables the check.
        cache_bytes: byte budget of the shared
            :class:`~repro.core.grid_cache.GridTensorCache` injected
            into every request. ``0`` disables cache sharing — each
            request then keeps whatever cache its own config carries.
        cache_path: optional directory for a shared
            :class:`~repro.core.grid_cache.PersistentGridCache` tier
            under the shared memory cache.
        fusion: enable cross-query pass fusion — a
            :class:`~repro.service.fusion.PassCoalescer` is installed
            on every registered backend so compatible cell/tile
            fetches from concurrent in-flight requests merge into one
            backend pass (see ``docs/SERVICE.md``). Results stay
            bit-identical to serial; only the number of physical
            passes changes. Off by default.
        fusion_window_ms: upper bound on the batching window a fetch
            may wait for co-travellers, in milliseconds. The
            effective window adapts below this cap from observed pass
            latency, and drops to zero when only one request is in
            flight. ``0`` disables waiting entirely (merges then only
            happen between fetches that collide spontaneously).
    """

    workers: int = 4
    max_queue: int = 16
    admission: str = "reject"
    wait_timeout_s: Optional[float] = None
    max_grid_queries_per_request: Optional[int] = None
    max_rows_per_request: Optional[int] = None
    cache_bytes: int = DEFAULT_CACHE_BYTES
    cache_path: Optional[str] = None
    fusion: bool = False
    fusion_window_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise QueryModelError("service workers must be >= 1")
        if self.max_queue < 0:
            raise QueryModelError("service max_queue must be >= 0")
        if self.admission not in ("reject", "wait"):
            raise QueryModelError(
                "service admission must be 'reject' or 'wait', "
                f"got {self.admission!r}"
            )
        if self.cache_bytes < 0:
            raise QueryModelError("service cache_bytes must be >= 0")
        if self.fusion_window_ms < 0:
            raise QueryModelError(
                "service fusion_window_ms must be >= 0"
            )


@dataclass
class ServiceStats:
    """Counters accumulated by one :class:`AcquireService`.

    ``submitted`` counts every :meth:`AcquireService.submit` call;
    ``admitted`` the subset that passed budgets and backpressure;
    ``completed``/``failed`` their outcomes. ``rejected_queue``,
    ``rejected_budget`` and ``timeouts`` break down refusals by
    reason, and ``peak_in_flight`` records the highest concurrent
    execution observed (``in_flight`` is the live gauge).

    With :attr:`ServiceConfig.fusion` enabled, ``fused_groups``
    counts merged dispatches that actually served more than one
    request and ``fused_fetches`` the fetches those groups absorbed
    (``fused_fetches - fused_groups`` passes were saved).
    """

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue: int = 0
    rejected_budget: int = 0
    timeouts: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0
    fused_groups: int = 0
    fused_fetches: int = 0

    def snapshot(self) -> "ServiceStats":
        return replace(self)

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """Counter deltas relative to an earlier snapshot (every
        dataclass field, same no-drift discipline as
        :meth:`~repro.engine.backends.ExecutionStats.since`)."""
        return ServiceStats(
            **{
                field.name: getattr(self, field.name)
                - getattr(earlier, field.name)
                for field in fields(self)
            }
        )


def _execute_request(
    service: "AcquireService",
    driver: Acquire,
    query: Query,
    config: AcquireConfig,
) -> AcquireResult:
    """Pool task body (module-level so the task ships no instance)."""
    return service._run_admitted(driver, query, config)


class AcquireService:
    """Long-lived concurrent driver over registered backends.

    Register each shared :class:`EvaluationLayer` once, then submit
    ACQ requests from any thread::

        service = AcquireService(ServiceConfig(workers=4))
        service.register_backend("sales", layer)
        future = service.submit(query, config, backend="sales")
        result = future.result()

    Every admitted request runs with the service's shared grid cache
    and plan calibration injected into its config, so overlapping
    sweeps dedupe tile work across requests and the cost model learns
    from all traffic. :meth:`run` is the synchronous convenience
    wrapper; :meth:`close` drains and shuts the pool down (the service
    is also a context manager).
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        persistent = (
            PersistentGridCache(self.config.cache_path)
            if self.config.cache_path
            else None
        )
        #: Shared across every admitted request (None when sharing is
        #: disabled via ``cache_bytes=0``).
        self.grid_cache: Optional[GridTensorCache] = (
            GridTensorCache(self.config.cache_bytes, persistent=persistent)
            if self.config.cache_bytes > 0
            else None
        )
        #: Shared cost-model calibration fed by every request.
        self.calibration = PlanCalibration()
        #: Cross-query pass coalescer, installed on every registered
        #: backend when fusion is enabled (None otherwise). Built
        #: before the service lock exists conceptually: the coalescer
        #: may call :meth:`_active_requests` / :meth:`_count_fused`
        #: (which take the service lock) while holding its own lock,
        #: so the service must never call into the coalescer while
        #: holding ``_lock`` — the lock order is coalescer -> service.
        self.pass_coalescer: Optional[PassCoalescer] = (
            PassCoalescer(
                window_s=self.config.fusion_window_ms / 1000.0,
                calibration=self.calibration,
                active_requests=self._active_requests,
                on_fused=self._count_fused,
            )
            if self.config.fusion
            else None
        )
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self._backends: dict[str, tuple[EvaluationLayer, Acquire]] = {}
        self._closed = False
        self._slots = threading.BoundedSemaphore(
            self.config.workers + self.config.max_queue
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )

    # -- registry ----------------------------------------------------
    def register_backend(
        self, name: str, layer: EvaluationLayer
    ) -> None:
        """Make ``layer`` available to requests under ``name``.

        Re-registering a name replaces its layer (in-flight requests
        keep the driver they were admitted with).
        """
        driver = Acquire(layer)
        # Installed outside the service lock: the coalescer's methods
        # take the service lock (lock order coalescer -> service), so
        # the service never touches it while holding ``_lock``.
        if self.pass_coalescer is not None:
            layer.pass_coalescer = self.pass_coalescer
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed", reason="closed")
            self._backends[name] = (layer, driver)

    def backend(self, name: str = DEFAULT_BACKEND) -> EvaluationLayer:
        """The registered layer for ``name`` (for tests/metrics)."""
        with self._lock:
            entry = self._backends.get(name)
        if entry is None:
            raise ServiceError(
                f"unknown backend {name!r}", reason="unknown-backend"
            )
        return entry[0]

    def backend_names(self) -> list[str]:
        with self._lock:
            return sorted(self._backends)

    # -- submission --------------------------------------------------
    def submit(
        self,
        query: Query,
        config: Optional[AcquireConfig] = None,
        *,
        backend: str = DEFAULT_BACKEND,
    ) -> "Future[AcquireResult]":
        """Admit one ACQ request; returns a future for its result.

        Raises :class:`~repro.exceptions.ServiceError` when admission
        refuses the request (``reason`` is ``"closed"``,
        ``"unknown-backend"``, ``"budget"``, ``"queue-full"`` or
        ``"timeout"``); an admitted request's own failure surfaces on
        the future instead.
        """
        base = config or AcquireConfig()
        with self._lock:
            self._stats.submitted += 1
            closed = self._closed
            entry = self._backends.get(backend)
        if closed:
            raise ServiceError("service is closed", reason="closed")
        if entry is None:
            raise ServiceError(
                f"unknown backend {backend!r}", reason="unknown-backend"
            )
        layer, driver = entry
        self._check_row_budget(layer, query)
        effective = self._effective_config(base)
        self._acquire_slot()
        try:
            with self._lock:
                self._stats.admitted += 1
            future = self._pool.submit(
                _execute_request, self, driver, query, effective
            )
        except BaseException:
            self._slots.release()
            raise
        return future

    def run(
        self,
        query: Query,
        config: Optional[AcquireConfig] = None,
        *,
        backend: str = DEFAULT_BACKEND,
    ) -> AcquireResult:
        """Synchronous :meth:`submit`."""
        return self.submit(query, config, backend=backend).result()

    # -- admission ---------------------------------------------------
    def _check_row_budget(
        self, layer: EvaluationLayer, query: Query
    ) -> None:
        budget = self.config.max_rows_per_request
        if budget is None:
            return
        database = getattr(layer, "database", None)
        if database is None:
            return
        largest = max(
            (
                database.table(name).nrows
                for name in query.tables
                if database.has_table(name)
            ),
            default=0,
        )
        if largest > budget:
            with self._lock:
                self._stats.rejected_budget += 1
            raise ServiceError(
                f"row budget exceeded: table scan floor {largest} rows "
                f"> budget {budget}",
                reason="budget",
            )

    def _effective_config(self, base: AcquireConfig) -> AcquireConfig:
        """The caller's config with the service's shared state wired in.

        The shared grid cache (when sharing is enabled) and calibration
        replace whatever the caller set — cross-request dedupe and a
        traffic-wide cost model are the service's contract — and the
        query budget clamps ``max_grid_queries``.
        """
        updates: dict = {"calibration": self.calibration}
        if self.grid_cache is not None:
            updates["grid_cache"] = self.grid_cache
            updates["cache_path"] = None
        budget = self.config.max_grid_queries_per_request
        if budget is not None:
            updates["max_grid_queries"] = min(
                base.max_grid_queries, budget
            )
        return replace(base, **updates)

    def _acquire_slot(self) -> None:
        if self.config.admission == "reject":
            if not self._slots.acquire(blocking=False):
                with self._lock:
                    self._stats.rejected_queue += 1
                raise ServiceError(
                    "admission queue is full "
                    f"({self.config.workers} workers + "
                    f"{self.config.max_queue} queued)",
                    reason="queue-full",
                )
            return
        timeout = self.config.wait_timeout_s
        if not self._slots.acquire(timeout=timeout):
            with self._lock:
                self._stats.timeouts += 1
            raise ServiceError(
                f"no admission slot within {timeout}s", reason="timeout"
            )

    # -- execution ---------------------------------------------------
    def _run_admitted(
        self, driver: Acquire, query: Query, config: AcquireConfig
    ) -> AcquireResult:
        with self._lock:
            self._stats.in_flight += 1
            if self._stats.in_flight > self._stats.peak_in_flight:
                self._stats.peak_in_flight = self._stats.in_flight
        try:
            result = driver.run(query, config)
        except BaseException:
            with self._lock:
                self._stats.failed += 1
                self._stats.in_flight -= 1
            self._slots.release()
            raise
        with self._lock:
            self._stats.completed += 1
            self._stats.in_flight -= 1
        self._slots.release()
        return result

    # -- fusion hooks ------------------------------------------------
    def _active_requests(self) -> int:
        """Live in-flight gauge for the coalescer's window sizing.

        Called by the coalescer (possibly under its own lock); takes
        only the service lock, honouring the coalescer -> service
        lock order.
        """
        with self._lock:
            return self._stats.in_flight

    def _count_fused(self, groups: int, fetches: int) -> None:
        """Coalescer callback: one merged dispatch served ``fetches``
        fetches across ``groups`` group(s) of waiting requests."""
        with self._lock:
            self._stats.fused_groups += groups
            self._stats.fused_fetches += fetches

    # -- lifecycle / metrics -----------------------------------------
    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters."""
        with self._lock:
            return self._stats.snapshot()

    def close(self, wait: bool = True) -> None:
        """Stop admitting requests and shut the worker pool down.

        Idempotent. With ``wait=True`` (default) blocks until admitted
        requests finish.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
        if not already:
            # Closed outside the service lock (coalescer -> service
            # lock order); pending fused groups dispatch immediately
            # so draining requests are never parked on a window.
            if self.pass_coalescer is not None:
                self.pass_coalescer.close()
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "AcquireService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
