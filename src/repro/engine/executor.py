"""Candidate-relation construction for the memory backend.

The memory evaluation layer reduces an ACQ to a *candidate relation*:
the joined, pre-filtered set of tuples that could be admitted by *some*
refinement within the per-dimension caps, each carrying

* its signed minimal refinement score on every refinable dimension
  (see :mod:`repro.core.predicate`), and
* the value of the constraint's aggregate attribute.

Every cell/box query then becomes a conjunction of score-range filters
over numpy arrays — a faithful cost model for a database scan, with the
advantage that NOREFINE equi-joins are executed exactly once.

Join machinery: NOREFINE equi-joins use sort-based hash-equivalent
matching; refinable joins are materialized as *band joins* with the
half-width implied by the dimension cap, after which the join dimension
behaves exactly like a select dimension (paper section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicate import (
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import Query
from repro.engine.catalog import Database
from repro.engine.expression import Expression
from repro.exceptions import EngineError

#: Refuse to materialize joins bigger than this many rows.
DEFAULT_MAX_ROWS = 20_000_000


@dataclass
class CandidateRelation:
    """Output of :func:`build_candidate`.

    Attributes:
        scores: ``(n, d)`` signed per-dimension refinement scores.
        agg_values: aggregate attribute per tuple (zeros for COUNT(*)).
        rows_scanned: base-table rows touched while building.
        useful_max_scores: largest finite positive score per dimension
            (0 when no tuple needs expansion on that dimension).
        frame: per-table base-row indices of each candidate tuple,
            aligned with ``scores`` — the provenance needed to
            materialize result tuples (the paper's "result tuples can
            either be stored in main memory or paged to disk").
    """

    scores: np.ndarray
    agg_values: np.ndarray
    rows_scanned: int
    useful_max_scores: list[float]
    frame: dict[str, np.ndarray]

    @property
    def nrows(self) -> int:
        return int(self.scores.shape[0])


def build_candidate(
    database: Database,
    query: Query,
    dim_caps: list[float],
    max_rows: int = DEFAULT_MAX_ROWS,
) -> CandidateRelation:
    """Join, pre-filter and score the query's candidate tuples."""
    dims = query.refinable_predicates
    if len(dim_caps) != len(dims):
        raise EngineError(
            f"expected {len(dims)} dim caps, got {len(dim_caps)}"
        )
    frame_builder = _FrameBuilder(database, query, dict(zip(dims, dim_caps)))
    frame, rows_scanned = frame_builder.build(max_rows)
    frame_size = len(next(iter(frame.values()))) if frame else 0

    batch = _batch_for(database, frame, query)
    mask = _fixed_mask(query, batch, frame_size)

    score_columns = []
    useful_max = []
    for predicate, cap in zip(dims, dim_caps):
        scores = _dimension_scores(predicate, batch)
        scores = np.where(mask, scores, np.inf)
        scores = np.where(scores > cap, np.inf, scores)
        score_columns.append(scores)
        finite = scores[np.isfinite(scores)]
        positive = finite[finite > 0]
        useful_max.append(float(np.max(positive)) if len(positive) else 0.0)

    if score_columns:
        score_matrix = np.column_stack(score_columns)
        keep = np.all(np.isfinite(score_matrix), axis=1)
    else:
        score_matrix = np.empty((frame_size, 0), dtype=np.float64)
        keep = mask

    agg_values = _aggregate_values(query, batch, frame_size)
    return CandidateRelation(
        scores=score_matrix[keep],
        agg_values=agg_values[keep],
        rows_scanned=rows_scanned,
        useful_max_scores=useful_max,
        frame={table: indices[keep] for table, indices in frame.items()},
    )


# ----------------------------------------------------------------------
# Frame construction (joins)
# ----------------------------------------------------------------------
class _FrameBuilder:
    """Materializes the joined row-index frame for a query."""

    def __init__(
        self,
        database: Database,
        query: Query,
        dim_caps: dict[Predicate, float],
    ) -> None:
        self.database = database
        self.query = query
        self.dim_caps = dim_caps

    def build(self, max_rows: int) -> tuple[dict[str, np.ndarray], int]:
        rows_scanned = 0
        base_indices: dict[str, np.ndarray] = {}
        for table_name in self.query.tables:
            table = self.database.table(table_name)
            rows_scanned += len(table)
            base_indices[table_name] = self._prefilter(table_name)

        joins = [
            p for p in self.query.predicates if isinstance(p, JoinPredicate)
        ]
        pending = list(joins)
        first = self.query.tables[0]
        frame: dict[str, np.ndarray] = {first: base_indices[first]}
        remaining = [t for t in self.query.tables if t != first]

        while remaining:
            progressed = False
            for join in list(pending):
                bridge = self._bridging(join, frame, remaining)
                if bridge is None:
                    continue
                frame_expr, new_expr, new_table = bridge
                frame = self._band_join(
                    frame,
                    frame_expr,
                    new_table,
                    base_indices[new_table],
                    new_expr,
                    self._band_width(join),
                    max_rows,
                )
                pending.remove(join)
                remaining.remove(new_table)
                progressed = True
                break
            if progressed:
                continue
            # No join connects the frame to a remaining table: fall back
            # to a guarded cross product with the next table.
            new_table = remaining.pop(0)
            frame = self._cross_join(
                frame, new_table, base_indices[new_table], max_rows
            )

        # Joins whose tables are all in the frame act as filters.
        for join in pending:
            frame = self._filter_join(frame, join)
        return frame, rows_scanned

    # -- per-table pre-filtering ---------------------------------------
    def _prefilter(self, table_name: str) -> np.ndarray:
        """Rows of one table admissible within the dimension caps."""
        table = self.database.table(table_name)
        indices = np.arange(len(table))
        mask = np.ones(len(table), dtype=bool)
        batch = {
            f"{table_name}.{column}": table.column(column)
            for column in table.schema.column_names
        }
        for predicate in self.query.predicates:
            if isinstance(predicate, JoinPredicate):
                continue
            if _predicate_tables(predicate) != {table_name}:
                continue
            scores = _dimension_scores(predicate, batch)
            cap = self.dim_caps.get(predicate, 0.0)
            mask &= scores <= cap
        return indices[mask]

    def _band_width(self, join: JoinPredicate) -> float:
        if not join.refinable:
            return join.tolerance
        cap = self.dim_caps.get(join, 0.0)
        return join.band_at(cap)

    def _bridging(
        self,
        join: JoinPredicate,
        frame: dict[str, np.ndarray],
        remaining: list[str],
    ) -> tuple[Expression, Expression, str] | None:
        """If the join connects the frame to exactly one new table,
        return (frame-side expr, new-side expr, new table)."""
        frame_tables = set(frame)
        for frame_expr, new_expr in (
            (join.left, join.right),
            (join.right, join.left),
        ):
            new_tables = new_expr.tables()
            if (
                frame_expr.tables() <= frame_tables
                and len(new_tables) == 1
                and next(iter(new_tables)) in remaining
            ):
                return frame_expr, new_expr, next(iter(new_tables))
        return None

    # -- join kernels ----------------------------------------------------
    def _band_join(
        self,
        frame: dict[str, np.ndarray],
        frame_expr: Expression,
        new_table: str,
        new_indices: np.ndarray,
        new_expr: Expression,
        band: float,
        max_rows: int,
    ) -> dict[str, np.ndarray]:
        frame_values = _evaluate_on_frame(
            self.database, frame, frame_expr
        )
        new_batch = {
            f"{new_table}.{column}": self.database.table(new_table)
            .column(column)[new_indices]
            for column in _columns_of(new_expr, new_table)
        }
        new_values = np.asarray(
            new_expr.evaluate(new_batch), dtype=np.float64
        )
        if new_values.ndim == 0:
            new_values = np.full(len(new_indices), float(new_values))

        order = np.argsort(new_values, kind="stable")
        sorted_values = new_values[order]
        low = np.searchsorted(sorted_values, frame_values - band, side="left")
        high = np.searchsorted(sorted_values, frame_values + band, side="right")
        counts = high - low
        total = int(np.sum(counts))
        if total > max_rows:
            raise EngineError(
                f"band join to {new_table!r} would materialize {total} rows "
                f"(cap {max_rows}); lower the refinement cap"
            )
        frame_positions = np.repeat(np.arange(len(frame_values)), counts)
        offsets = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        new_positions = order[np.repeat(low, counts) + offsets]

        joined = {
            table: indices[frame_positions] for table, indices in frame.items()
        }
        joined[new_table] = new_indices[new_positions]
        return joined

    def _cross_join(
        self,
        frame: dict[str, np.ndarray],
        new_table: str,
        new_indices: np.ndarray,
        max_rows: int,
    ) -> dict[str, np.ndarray]:
        frame_size = len(next(iter(frame.values()))) if frame else 0
        total = frame_size * len(new_indices)
        if total > max_rows:
            raise EngineError(
                f"cross product with {new_table!r} would materialize "
                f"{total} rows (cap {max_rows}); add a join predicate"
            )
        joined = {
            table: np.repeat(indices, len(new_indices))
            for table, indices in frame.items()
        }
        joined[new_table] = np.tile(new_indices, frame_size)
        return joined

    def _filter_join(
        self, frame: dict[str, np.ndarray], join: JoinPredicate
    ) -> dict[str, np.ndarray]:
        left = _evaluate_on_frame(self.database, frame, join.left)
        right = _evaluate_on_frame(self.database, frame, join.right)
        band = self._band_width(join)
        mask = np.abs(left - right) <= band
        return {table: indices[mask] for table, indices in frame.items()}


# ----------------------------------------------------------------------
# Batch evaluation helpers
# ----------------------------------------------------------------------
def _columns_of(expr: Expression, table: str) -> list[str]:
    return [
        ref.split(".", 1)[1]
        for ref in expr.columns()
        if ref.startswith(table + ".")
    ]


def _evaluate_on_frame(
    database: Database, frame: dict[str, np.ndarray], expr: Expression
) -> np.ndarray:
    batch = {}
    for ref in expr.columns():
        table, column = ref.split(".", 1)
        batch[ref] = database.table(table).column(column)[frame[table]]
    values = np.asarray(expr.evaluate(batch), dtype=np.float64)
    if values.ndim == 0:
        size = len(next(iter(frame.values()))) if frame else 0
        values = np.full(size, float(values))
    return values


def _batch_for(
    database: Database, frame: dict[str, np.ndarray], query: Query
) -> dict[str, np.ndarray]:
    """Gather every column any predicate or the aggregate touches."""
    needed: set[str] = set()
    for predicate in query.predicates:
        if isinstance(predicate, SelectPredicate):
            needed |= predicate.expr.columns()
        elif isinstance(predicate, JoinPredicate):
            needed |= predicate.left.columns() | predicate.right.columns()
        else:
            needed |= predicate.column.columns()
    attribute = query.constraint.spec.attribute
    if attribute is not None:
        needed |= attribute.columns()
    batch = {}
    for ref in needed:
        table, column = ref.split(".", 1)
        batch[ref] = database.table(table).column(column)[frame[table]]
    return batch


def _fixed_mask(
    query: Query, batch: dict[str, np.ndarray], size: int
) -> np.ndarray:
    """Conjunction of every NOREFINE predicate over the frame."""
    mask = np.ones(size, dtype=bool)
    for predicate in query.fixed_predicates:
        if isinstance(predicate, JoinPredicate):
            continue  # applied during frame construction
        scores = _dimension_scores(predicate, batch)
        mask &= scores <= 0
    return mask


def _dimension_scores(
    predicate: Predicate, batch: dict[str, np.ndarray]
) -> np.ndarray:
    """Signed refinement scores of each frame tuple on one predicate."""
    if isinstance(predicate, SelectPredicate):
        values = np.asarray(predicate.expr.evaluate(batch), dtype=np.float64)
        return predicate.scores_of_values(values)
    if isinstance(predicate, JoinPredicate):
        left = np.asarray(predicate.left.evaluate(batch), dtype=np.float64)
        right = np.asarray(predicate.right.evaluate(batch), dtype=np.float64)
        return predicate.scores_of_values(np.abs(left - right))
    values = batch[next(iter(predicate.column.columns()))]
    return predicate.scores_of_values(values)


def _aggregate_values(
    query: Query, batch: dict[str, np.ndarray], size: int
) -> np.ndarray:
    attribute = query.constraint.spec.attribute
    if attribute is None:
        return np.zeros(size, dtype=np.float64)
    values = np.asarray(attribute.evaluate(batch), dtype=np.float64)
    if values.ndim == 0:
        values = np.full(size, float(values))
    return values


def _predicate_tables(predicate: Predicate) -> set[str]:
    if isinstance(predicate, SelectPredicate):
        return predicate.expr.tables()
    if isinstance(predicate, JoinPredicate):
        return predicate.left.tables() | predicate.right.tables()
    return predicate.column.tables()
