"""Grid bitmap index (paper section 7.4).

The paper: divide each attribute dimension into equi-width parts,
assign one bit per multi-dimensional grid cell, set the bit when the
cell contains at least one tuple, and consult the index in the Explore
phase to skip executing provably-empty cell queries.

Our grid lives in refinement-score space (equivalent to the paper's
attribute-space grid for skip-empty purposes, because the refined-space
cell is exactly an attribute-space box). The index stores the set of
non-empty cells; :meth:`is_empty` is an O(1) membership test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.refined_space import RefinedSpace
from repro.exceptions import EngineError


def _grid_coords(scores: np.ndarray, step: float) -> np.ndarray:
    positive = np.maximum(scores, 0.0)
    return np.ceil(positive / step - 1e-12).astype(np.int64)


class GridBitmapIndex:
    """Set-of-nonempty-cells index over a refined space grid."""

    def __init__(self, nonempty: frozenset[tuple[int, ...]], d: int) -> None:
        self._nonempty = nonempty
        self._d = d

    @classmethod
    def from_scores(
        cls, scores: np.ndarray, space: RefinedSpace
    ) -> "GridBitmapIndex":
        """Build from the candidate relation's signed score matrix."""
        if scores.shape[0] == 0:
            return cls(frozenset(), space.d)
        coords = _grid_coords(scores, space.step)
        nonempty = frozenset(map(tuple, coords.tolist()))
        return cls(nonempty, space.d)

    def is_empty(self, coords: Sequence[int]) -> bool:
        return tuple(int(c) for c in coords) not in self._nonempty

    @property
    def nonempty_cells(self) -> int:
        return len(self._nonempty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridBitmapIndex(nonempty={len(self._nonempty)}, d={self._d})"


class CountingGridIndex:
    """Per-cell tuple-count index, maintainable under updates.

    The paper's section 7.4 aside: "storing the number of tuples may be
    easier for keeping the index up-to-date but requires more space".
    This variant stores counts, so inserted/deleted tuples adjust cells
    incrementally instead of forcing a rebuild — a bit becomes stale the
    moment a deletion could have emptied its cell, a count never does.
    """

    def __init__(self, step: float, d: int) -> None:
        if step <= 0:
            raise EngineError("grid step must be > 0")
        self.step = float(step)
        self.d = d
        self._counts: dict[tuple[int, ...], int] = {}

    @classmethod
    def from_scores(
        cls, scores: np.ndarray, space: RefinedSpace
    ) -> "CountingGridIndex":
        index = cls(space.step, space.d)
        if scores.shape[0]:
            index.insert(scores)
        return index

    def _cells_of(self, scores: np.ndarray) -> list[tuple[int, ...]]:
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        if scores.shape[1] != self.d:
            raise EngineError(
                f"score arity {scores.shape[1]} != dimensionality {self.d}"
            )
        return [tuple(row) for row in _grid_coords(scores, self.step).tolist()]

    def insert(self, scores: np.ndarray) -> None:
        """Account for newly inserted tuples (rows of signed scores)."""
        for cell in self._cells_of(scores):
            self._counts[cell] = self._counts.get(cell, 0) + 1

    def remove(self, scores: np.ndarray) -> None:
        """Account for deleted tuples; empties are pruned."""
        for cell in self._cells_of(scores):
            current = self._counts.get(cell, 0)
            if current <= 0:
                raise EngineError(f"removing from empty cell {cell}")
            if current == 1:
                del self._counts[cell]
            else:
                self._counts[cell] = current - 1

    def count(self, coords: Sequence[int]) -> int:
        return self._counts.get(tuple(int(c) for c in coords), 0)

    def is_empty(self, coords: Sequence[int]) -> bool:
        """The same skip-empty interface the Explorer consumes."""
        return self.count(coords) == 0

    @property
    def nonempty_cells(self) -> int:
        return len(self._counts)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountingGridIndex(nonempty={len(self._counts)}, "
            f"total={self.total}, d={self.d})"
        )
