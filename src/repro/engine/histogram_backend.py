"""Histogram-based estimation evaluation layer.

The paper (section 3): the evaluation layer "can be replaced with other
techniques such as estimation, and/or sampling". This layer is the
*estimation* variant: it scans the data exactly once at prepare time to
build a per-dimension equi-width histogram over signed refinement
scores, then answers every cell/box request from the histograms under
the attribute-value-independence assumption — the same assumption
relational optimizers make for cardinality estimation.

Per-query cost is O(bins) with zero tuple access, so ACQUIRE's entire
search costs barely more than one scan. The price is estimation error:
exact on independent dimensions (up to histogram resolution), biased
when dimensions correlate. Supported aggregates: COUNT exactly in this
spirit; SUM via the mean-value heuristic (estimated count x the
dimension-agnostic mean of the aggregate attribute). MIN/MAX are not
estimable from marginal histograms and are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.aggregates import AggState
from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer, TopKAdmission
from repro.engine.catalog import Database
from repro.engine.executor import DEFAULT_MAX_ROWS, build_candidate
from repro.exceptions import EngineError, OSPViolationError

_SUPPORTED = {"COUNT", "SUM", "AVG"}


@dataclass
class _ScoreHistogram:
    """Equi-width histogram over one dimension's signed scores."""

    edges: np.ndarray  # bin edges, length bins + 1
    counts: np.ndarray  # per-bin tuple counts, length bins
    total: int

    def fraction_at_most(self, score: float) -> float:
        """Estimated fraction of tuples with signed score <= score."""
        if self.total == 0:
            return 0.0
        if score < self.edges[0]:
            return 0.0
        if score >= self.edges[-1]:
            return 1.0
        index = int(np.searchsorted(self.edges, score, side="right") - 1)
        index = min(max(index, 0), len(self.counts) - 1)
        below = float(np.sum(self.counts[:index]))
        left, right = self.edges[index], self.edges[index + 1]
        inside = self.counts[index]
        if right > left:
            below += inside * (score - left) / (right - left)
        return below / self.total

    def fraction_in(self, low: float, high: float) -> float:
        """Estimated fraction with score in (low, high]."""
        return max(
            self.fraction_at_most(high) - self.fraction_at_most(low), 0.0
        )


@dataclass
class _HistogramPrepared:
    query: Query
    histograms: list[_ScoreHistogram]
    total_rows: int
    mean_agg_value: float
    dim_caps: list[float]
    useful_max: list[float]


class HistogramBackend(EvaluationLayer):
    """Estimation layer: one scan, then histogram arithmetic only."""

    def __init__(
        self,
        database: Database,
        bins: int = 128,
        max_rows: int = DEFAULT_MAX_ROWS,
    ) -> None:
        super().__init__()
        if bins < 2:
            raise EngineError(f"need at least 2 histogram bins, got {bins}")
        self.database = database
        self.bins = bins
        self.max_rows = max_rows

    def persistent_cache_key(self) -> tuple:
        from repro.core.grid_cache import database_digest

        # Estimates depend on the bin count, so it is part of the
        # cross-process identity alongside the data digest.
        return ("HistogramBackend", self.bins, database_digest(self.database))

    def backend_spec(self, prepared: _HistogramPrepared):
        """Process-tier recipe: the histogram build is a deterministic
        function of (tables, bins, max_rows), so a worker re-``prepare``
        reproduces the parent's estimates bit for bit."""
        from repro.core.tile_worker import BackendSpec, database_tables

        return BackendSpec(
            factory="repro.engine.histogram_backend:HistogramBackend",
            tables=database_tables(self.database),
            kwargs={"bins": self.bins, "max_rows": self.max_rows},
            query=prepared.query,
            dim_caps=tuple(prepared.dim_caps),
            database_name=self.database.name,
        )

    # ------------------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ) -> _HistogramPrepared:
        aggregate = query.constraint.spec.aggregate
        if aggregate.name not in _SUPPORTED:
            raise OSPViolationError(
                f"{aggregate.name} cannot be estimated from marginal "
                "histograms; use an exact evaluation layer"
            )
        if dim_caps is None:
            dim_caps = [0.0] * query.dimensionality
        caps = [float(cap) for cap in dim_caps]
        with self._timed():
            candidate = build_candidate(
                self.database, query, caps, self.max_rows
            )
            histograms = []
            for dim in range(candidate.scores.shape[1]):
                scores = candidate.scores[:, dim]
                if len(scores) == 0:
                    edges = np.array([0.0, 1.0])
                    counts = np.zeros(1, dtype=np.int64)
                else:
                    low = float(np.min(scores))
                    high = float(np.max(scores))
                    if high == low:
                        high = low + 1e-9
                    counts, edges = np.histogram(
                        scores, bins=self.bins, range=(low, high)
                    )
                histograms.append(
                    _ScoreHistogram(
                        edges=edges,
                        counts=counts.astype(np.int64),
                        total=len(scores),
                    )
                )
            mean_value = (
                float(np.mean(candidate.agg_values))
                if candidate.nrows
                else 0.0
            )
        self._count_rows(candidate.rows_scanned)
        return _HistogramPrepared(
            query=query,
            histograms=histograms,
            total_rows=candidate.nrows,
            mean_agg_value=mean_value,
            dim_caps=caps,
            useful_max=list(candidate.useful_max_scores),
        )

    def useful_max_scores(self, prepared: _HistogramPrepared) -> list[float]:
        return list(prepared.useful_max)

    # ------------------------------------------------------------------
    def _estimate_count(
        self,
        prepared: _HistogramPrepared,
        fractions: Sequence[float],
    ) -> float:
        estimate = float(prepared.total_rows)
        for fraction in fractions:
            estimate *= fraction
        return estimate

    def _state_for(
        self, prepared: _HistogramPrepared, count: float
    ) -> AggState:
        aggregate = prepared.query.constraint.spec.aggregate
        if aggregate.name == "COUNT":
            return (count,)
        if aggregate.name == "SUM":
            return (count * prepared.mean_agg_value,)
        # AVG: (sum, count) with the mean-value heuristic.
        return (count * prepared.mean_agg_value, count)

    def _cell_state(
        self,
        prepared: _HistogramPrepared,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        """Pure histogram arithmetic for one cell (no bookkeeping)."""
        fractions = []
        for histogram, (low, high) in zip(
            prepared.histograms, space.cell_ranges(coords)
        ):
            if low < 0:
                fractions.append(histogram.fraction_at_most(0.0))
            else:
                fractions.append(histogram.fraction_in(low, high))
        return self._state_for(
            prepared, self._estimate_count(prepared, fractions)
        )

    def execute_cell(
        self,
        prepared: _HistogramPrepared,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        with self._timed():
            state = self._cell_state(prepared, space, coords)
        self._count_query("cell")
        return state

    def execute_cells(
        self,
        prepared: _HistogramPrepared,
        space: RefinedSpace,
        coords_list: Sequence[Sequence[int]],
        parallelism: int = 1,
    ) -> list[AggState]:
        """Native batch: histogram arithmetic for the whole layer.

        Estimation never touches tuples, so a batch is simply one
        bookkeeping round trip around the same per-cell arithmetic —
        estimates are bit-identical to serial by construction.
        ``parallelism`` is ignored (O(bins) per cell leaves nothing to
        parallelize).
        """
        coords_batch = [tuple(int(c) for c in coords) for coords in coords_list]
        if not coords_batch:
            return []
        with self._timed():
            states = [
                self._cell_state(prepared, space, coords)
                for coords in coords_batch
            ]
        self._count_batch(len(coords_batch))
        return states

    def execute_grid(
        self, prepared: _HistogramPrepared, space: RefinedSpace
    ) -> np.ndarray:
        """Native grid materialization: one estimation sweep.

        Under attribute-value independence a cell's estimated count is
        ``total * f_1 * ... * f_d`` with ``f_i`` the dimension-i annulus
        fraction — so the whole grid is the outer product of d per-level
        fraction vectors. The broadcasted multiply applies the factors
        in the same order as the serial per-cell loop, keeping every
        estimate bit-identical to :meth:`execute_cell`.
        """
        with self._timed():
            tensor = self._fraction_tensor(
                prepared,
                space,
                (0,) * len(prepared.histograms),
                space.max_coords,
            )
        self._count_grid(
            int(np.prod(tensor.shape[:-1], dtype=np.int64))
        )
        return tensor

    def execute_grid_tile(
        self,
        prepared: _HistogramPrepared,
        space: RefinedSpace,
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> np.ndarray:
        """Native tile materialization: the same outer product over the
        per-level fraction vectors sliced to ``lo..hi`` per dimension —
        each estimate is the identical product of the identical factors,
        so the tile is bit-identical to the full grid's ``[lo, hi]``
        box."""
        from repro.engine.backends import _check_tile_bounds

        lo, hi = _check_tile_bounds(space, lo, hi)
        with self._timed():
            tensor = self._fraction_tensor(prepared, space, lo, hi)
        self._count_grid(
            int(np.prod(tensor.shape[:-1], dtype=np.int64)), tile=True
        )
        return tensor

    def _fraction_tensor(
        self,
        prepared: _HistogramPrepared,
        space: RefinedSpace,
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> np.ndarray:
        """Cell tensor of the inclusive ``[lo, hi]`` box (no counters).

        Under attribute-value independence a cell's estimated count is
        ``total * f_1 * ... * f_d`` with ``f_i`` the dimension-i annulus
        fraction — so any rectangular box of the grid is the outer
        product of d per-level fraction vectors. The broadcasted
        multiply applies the factors in the same order as the serial
        per-cell loop, keeping every estimate bit-identical to
        :meth:`execute_cell`.
        """
        aggregate = prepared.query.constraint.spec.aggregate
        step = space.step
        count = np.array(float(prepared.total_rows))
        for histogram, low, high in zip(prepared.histograms, lo, hi):
            fractions = np.empty(high - low + 1)
            for level in range(low, high + 1):
                if level == 0:
                    fractions[0] = histogram.fraction_at_most(0.0)
                else:
                    fractions[level - low] = histogram.fraction_in(
                        (level - 1) * step, level * step
                    )
            count = count[..., None] * fractions
        if aggregate.name == "COUNT":
            tensor = count[..., None]
        elif aggregate.name == "SUM":
            tensor = (count * prepared.mean_agg_value)[..., None]
        else:  # AVG: (sum, count) with the mean-value heuristic.
            tensor = np.stack(
                (count * prepared.mean_agg_value, count), axis=-1
            )
        return np.ascontiguousarray(tensor, dtype=np.float64)

    def execute_box(
        self, prepared: _HistogramPrepared, scores: Sequence[float]
    ) -> AggState:
        if len(scores) != len(prepared.histograms):
            raise EngineError(
                f"box arity {len(scores)} != dimensionality "
                f"{len(prepared.histograms)}"
            )
        with self._timed():
            fractions = [
                histogram.fraction_at_most(score)
                for histogram, score in zip(prepared.histograms, scores)
            ]
            state = self._state_for(
                prepared, self._estimate_count(prepared, fractions)
            )
        self._count_query("box")
        return state

    def topk_admission(
        self, prepared: _HistogramPrepared, k: int
    ) -> TopKAdmission:
        raise EngineError(
            "top-k ranking needs tuple access; the histogram layer only "
            "estimates aggregates"
        )

    def fetch_rows(
        self,
        prepared: _HistogramPrepared,
        scores: Sequence[float],
        limit: Optional[int] = None,
    ) -> list[dict]:
        raise EngineError(
            "the histogram layer stores no tuples; re-run the refined "
            "query on an exact evaluation layer to fetch rows"
        )
