"""Table schemas and the column type system.

The engine is deliberately small: three column types (integer, float,
string) cover everything the paper's experiments need — numeric range
and join predicates over TPC-H-shaped tables, plus string columns for
the categorical-ontology extension (paper section 7.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SchemaError, UnknownColumnError


class ColumnType(enum.Enum):
    """Storage type of a column."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def numpy_dtype(self) -> type:
        """The numpy dtype used to store values of this type."""
        if self is ColumnType.INT:
            return np.int64
        if self is ColumnType.FLOAT:
            return np.float64
        return np.object_

    @property
    def is_numeric(self) -> bool:
        return self is not ColumnType.STR

    @property
    def sql_type(self) -> str:
        """The SQLite column type used by the SQL backend."""
        if self is ColumnType.INT:
            return "INTEGER"
        if self is ColumnType.FLOAT:
            return "REAL"
        return "TEXT"


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes:
        name: column name, unique within its table.
        ctype: storage type.
    """

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass
class TableSchema:
    """An ordered collection of columns belonging to one table.

    Column order matters for row-oriented loading; lookups by name are
    O(1) via an internal index.
    """

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name: {self.name!r}")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(column.name)
        self._by_name = {column.name: column for column in self.columns}

    @classmethod
    def build(cls, name: str, **column_types: ColumnType) -> TableSchema:
        """Convenience constructor: ``TableSchema.build('t', a=INT, b=FLOAT)``."""
        columns = [Column(cname, ctype) for cname, ctype in column_types.items()]
        return cls(name, columns)

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`UnknownColumnError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name
