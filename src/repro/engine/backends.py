"""The evaluation-layer interface (paper section 3, Figure 2).

ACQUIRE "delegates all actual query execution tasks to an evaluation
layer, which in this case is Postgres. However, the evaluation layer is
modular and can be replaced." This module defines that seam: the
abstract :class:`EvaluationLayer` plus the instrumentation every
implementation shares.

Execution requests come in four shapes:

* *cell queries* — the highly selective unit of the Explore phase:
  tuples whose per-dimension minimal refinement falls in a grid cell's
  annulus;
* *batched cell queries* — a whole layer of independent cells at once
  (:meth:`EvaluationLayer.execute_cells`); backends with a native bulk
  path answer them in one pass / one statement, everyone else falls
  back to a serial loop or an opt-in thread pool;
* *grid materialization* — the entire cell tensor of a refined space in
  one pass (:meth:`EvaluationLayer.execute_grid`); the materialized
  Explore path computes it once and answers every later grid query from
  memory (see ``docs/EXPLORE_MODES.md``);
* *grid tiles* — a rectangular subgrid of the cell tensor in one pass
  (:meth:`EvaluationLayer.execute_grid_tile`); the tiled Explore path
  materializes only the tiles the search actually reaches, extending on
  demand under the query budget;
* *box queries* — a full refined query at an arbitrary (possibly
  off-grid) PScore vector; used by the repartitioning step and by every
  baseline technique;
* *top-k admission* — order candidate tuples by total refinement
  distance and admit the first k; used by the Top-k baseline.

All are instrumented (queries issued, rows scanned, execution time,
batch round trips) so the harness can report machine-independent work
alongside wall-clock time. See ``docs/PARALLELISM.md`` for the batched
execution contract.

Per-request attribution: a layer shared by concurrent drivers keeps
one global ``stats`` object, so snapshot/delta accounting would bleed
one request's counters into another's report. Drivers therefore open a
:meth:`EvaluationLayer.request_scope` around each search: the scope is
a private :class:`ExecutionStats` registered in a ``contextvars``
context variable, and every counting seam credits the layer total
*and* every scope active on the calling thread (all under the existing
``_stats_lock``). Worker threads do not inherit the caller's context,
so the pooled paths (``execute_cells`` fallback, the tile schedulers)
re-establish the submitting request's scopes around each task — see
:func:`scoped_stats`.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.exceptions import EngineError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.aggregates import AggState, OSPAggregate
    from repro.core.query import Query
    from repro.core.refined_space import RefinedSpace


@dataclass
class ExecutionStats:
    """Counters accumulated by an evaluation layer.

    ``queries_executed`` counts physical backend round trips; a batched
    call is one round trip that answers many *logical* cell queries, so
    ``cell_queries`` grows by the batch size while ``queries_executed``
    grows by one. ``batches``/``batched_cells`` track native bulk
    execution, ``parallel_cells`` the thread-pool fallback, and
    ``grid_materializations``/``grid_cells`` grid materialization (one
    round trip computing every cell of a refined space, or of one
    rectangular tile of it — tile passes are additionally counted in
    ``grid_tiles``). ``cache_hits``/``cache_misses``/``cache_bytes``
    track :class:`~repro.core.grid_cache.GridTensorCache` lookups made
    on this layer's behalf; a hit serves ``cache_bytes`` tensor bytes
    without any backend pass. ``persistent_hits``/``persistent_bytes``
    are the subset of cache hits served from the cross-process
    :class:`~repro.core.grid_cache.PersistentGridCache` tier,
    ``block_hits`` counts finished block tensors served from cache
    (each one skips the backend pass *and* the d prefix passes), and
    ``parallel_tiles`` counts tiles whose materialization was
    dispatched to the sharded tile pipeline's worker pool.
    ``process_tiles``/``process_pools``/``process_fallbacks`` track the
    process tier of that pipeline (tiles fetched in worker processes,
    pools spawned on this layer's behalf, and tiles that fell back to
    an in-process fetch after a pool failure); ``shm_bytes`` counts
    tensor bytes returned through shared-memory blocks, and
    ``process_spawn_s``/``process_ipc_s`` the observed pool start-up
    and per-tile round-trip overheads the planner's calibration feeds
    on (see ``docs/PARALLELISM.md``).

    ``fused_passes``/``fused_cells`` count cross-query fusion (see
    ``docs/SERVICE.md``): backend passes a request shared with at least
    one other in-flight request through a
    :class:`~repro.service.fusion.PassCoalescer`, and the grid cells
    those shared passes delivered to *this* request. The physical pass
    is counted (``queries_executed`` etc.) by the one request that
    executed it; every sharing request instead records the fused
    counters, so per-request scopes still partition the layer totals
    exactly. ``fusion_wait_s`` is the time the request spent parked in
    coalescer batching windows.
    """

    queries_executed: int = 0
    cell_queries: int = 0
    box_queries: int = 0
    batches: int = 0
    batched_cells: int = 0
    parallel_cells: int = 0
    grid_materializations: int = 0
    grid_tiles: int = 0
    grid_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes: int = 0
    persistent_hits: int = 0
    persistent_bytes: int = 0
    block_hits: int = 0
    parallel_tiles: int = 0
    process_tiles: int = 0
    process_pools: int = 0
    process_fallbacks: int = 0
    shm_bytes: int = 0
    process_spawn_s: float = 0.0
    process_ipc_s: float = 0.0
    fused_passes: int = 0
    fused_cells: int = 0
    fusion_wait_s: float = 0.0
    rows_scanned: int = 0
    execution_time_s: float = 0.0

    def snapshot(self) -> "ExecutionStats":
        return replace(self)

    def since(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """Counter deltas relative to an earlier snapshot.

        Computed over every dataclass field so newly added counters can
        never silently drift out of the delta (a batch of N cells
        landing between snapshots must show up as N ``cell_queries``,
        not be dropped).
        """
        return ExecutionStats(
            **{
                field.name: getattr(self, field.name)
                - getattr(earlier, field.name)
                for field in fields(self)
            }
        )


#: Per-request stat scopes active on the current thread/context. Each
#: entry is an :class:`ExecutionStats` private to one in-flight driver
#: request; counting seams credit every active scope in addition to the
#: layer's global totals. A tuple (not a list) so captured values are
#: immutable snapshots safe to re-establish on worker threads.
_ACTIVE_SCOPES: contextvars.ContextVar[tuple[ExecutionStats, ...]] = (
    contextvars.ContextVar("repro_stat_scopes", default=())
)


def current_scopes() -> tuple[ExecutionStats, ...]:
    """The per-request stat scopes active on the calling thread."""
    return _ACTIVE_SCOPES.get()


@contextlib.contextmanager
def scoped_stats(
    scopes: tuple[ExecutionStats, ...]
) -> Iterator[tuple[ExecutionStats, ...]]:
    """Re-establish captured request scopes on the current thread.

    Pool workers start with an empty context, so tasks that execute
    backend work on behalf of a request capture
    :func:`current_scopes` at submit time and wrap their body in this
    context manager; counters then credit the submitting request even
    though the work ran on a pool thread.
    """
    token = _ACTIVE_SCOPES.set(scopes)
    try:
        yield scopes
    finally:
        _ACTIVE_SCOPES.reset(token)


def _sinks(stats: "ExecutionStats") -> tuple["ExecutionStats", ...]:
    """``stats`` plus every request scope active on the calling thread.

    Counting methods apply each increment to all sinks while holding
    ``_stats_lock``, so per-request attribution can never drift from
    the layer's global totals. Callers pass the already-read layer
    ``stats`` object; this helper only consults the context variable.
    """
    return (stats,) + _ACTIVE_SCOPES.get()


@dataclass
class TopKAdmission:
    """Result of a top-k-by-refinement-distance request.

    ``admitted`` is the number of tuples returned (== k unless fewer
    candidates exist); ``max_scores`` is the per-dimension maximum
    PScore among admitted tuples — the bounding refined query implied
    by the selected tuple set, used to assign Top-k a refinement score
    (paper Figure 8c compares refinement scores across methods).
    """

    admitted: int
    max_scores: tuple[float, ...]


class PreparedQuery(Protocol):
    """Marker protocol for backend-specific prepared state."""

    query: Query


class _Timer:
    """Context manager adding elapsed time to a stats object."""

    def __init__(
        self, stats: ExecutionStats, lock: Optional[threading.Lock] = None
    ) -> None:
        self._stats = stats
        self._lock = lock
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        scopes = _ACTIVE_SCOPES.get()
        if self._lock is None:
            self._stats.execution_time_s += elapsed
            for scope in scopes:
                scope.execution_time_s += elapsed
        else:
            with self._lock:
                self._stats.execution_time_s += elapsed
                for scope in scopes:
                    scope.execution_time_s += elapsed


class EvaluationLayer:
    """Abstract evaluation layer; see module docstring.

    ``dim_caps`` passed to :meth:`prepare` bound the refinement each
    dimension can ever receive (from predicate limits and the driver's
    configuration); backends may use them to bound materialization,
    e.g. the half-width of a relaxed band join.
    """

    #: Whether *thread* workers can overlap this backend's tile
    #: fetches. True only when the fetch path releases the GIL (the
    #: sqlite C library does; the numpy memory path mostly does not).
    #: The planner's ``tile_executor='auto'`` uses this to decide when
    #: escaping to processes is worth the spawn/IPC overhead.
    parallel_tile_scaling: bool = False

    #: Cross-query pass coalescer installed by the service tier, or
    #: None (see :class:`repro.service.fusion.PassCoalescer`). The
    #: attribute is duck-typed so the core never imports the service;
    #: explorers consult it before paying a backend pass and a bare
    #: layer costs one attribute read.
    pass_coalescer = None

    def __init__(self) -> None:
        self.stats = ExecutionStats()
        # Guards counter updates when execute_cells falls back to the
        # thread pool; uncontended in the (default) serial path.
        self._stats_lock = threading.Lock()
        # Lazily created, reused across layers/batches; see
        # _cell_pool_for. Torn down by close().
        self._cell_pool: Optional[ThreadPoolExecutor] = None
        self._cell_pool_size = 0
        self._cell_pool_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ) -> PreparedQuery:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (worker threads, connections).

        Safe to call more than once; the layer keeps working after a
        close (pools are re-created on demand).
        """
        with self._cell_pool_lock:
            pool, self._cell_pool = self._cell_pool, None
            self._cell_pool_size = 0
        if pool is not None:
            pool.shutdown(wait=True)

    def persistent_cache_key(self) -> Optional[tuple]:
        """Stable cross-process identity of this layer's data, or None.

        Used as the persistent-tier replacement for the process-unique
        layer cache token (see ``repro.core.grid_cache``). The base
        class opts out — only backends that can fingerprint their
        dataset (class + content digest) participate in the
        :class:`~repro.core.grid_cache.PersistentGridCache` tier.
        """
        return None

    def backend_spec(self, prepared: PreparedQuery) -> Optional[object]:
        """Picklable recipe rebuilding this layer + prepared state in a
        worker process, or None.

        Returns a :class:`repro.core.tile_worker.BackendSpec` when the
        backend can be reconstructed from serializable parts (tables as
        plain arrays, a sqlite snapshot, constructor arguments). The
        base class opts out, which routes the tiled Explore path to the
        thread tier; see ``docs/PARALLELISM.md`` ("Process tiles").
        """
        return None

    def _cell_pool_for(self, parallelism: int) -> ThreadPoolExecutor:
        """The layer's shared fallback thread pool, (re)sized on demand.

        One pool per layer, reused across every batch and traversal
        layer — constructing/tearing down an executor per batch costs
        more than the batch itself on small layers. Only replaced when
        the requested ``parallelism`` changes.
        """
        with self._cell_pool_lock:
            if self._cell_pool is None or self._cell_pool_size != parallelism:
                stale = self._cell_pool
                self._cell_pool = ThreadPoolExecutor(
                    max_workers=parallelism
                )
                self._cell_pool_size = parallelism
                if stale is not None:
                    stale.shutdown(wait=False)
            return self._cell_pool

    def useful_max_scores(self, prepared: PreparedQuery) -> list[float]:
        """Per-dimension maximum *useful* PScore.

        Expanding a predicate past the observed attribute domain admits
        no new tuples, so the refined-space grid is clipped at these
        scores. Backends return ``math.inf`` for dimensions they cannot
        bound; the driver then falls back to its configured cap.
        """
        raise NotImplementedError

    # -- execution --------------------------------------------------------
    def execute_cell(
        self,
        prepared: PreparedQuery,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        """Aggregate state of the grid cell at ``coords``."""
        raise NotImplementedError

    def execute_cells(
        self,
        prepared: PreparedQuery,
        space: RefinedSpace,
        coords_list: Sequence[Sequence[int]],
        parallelism: int = 1,
    ) -> list[AggState]:
        """Aggregate states of many independent grid cells.

        Returns one state per entry of ``coords_list``, in the same
        order. Backends with a native bulk path (one pass / one SQL
        statement for the whole batch) override this; the base
        implementation loops over :meth:`execute_cell` — serially, or
        via a ``ThreadPoolExecutor`` when ``parallelism > 1``. Either
        way results are merged in input order, so answer sets and
        sub-aggregate stores are bit-identical to serial execution;
        only timing (and ``parallel_cells``) can differ.
        """
        coords_batch = [tuple(int(c) for c in coords) for coords in coords_list]
        if not coords_batch:
            return []
        if parallelism > 1 and len(coords_batch) > 1:
            pool = self._cell_pool_for(parallelism)
            # Pool threads don't inherit the caller's context; carry
            # the request scopes over so per-request attribution holds.
            scopes = current_scopes()
            states = list(
                pool.map(
                    lambda coords: self._execute_cell_scoped(
                        scopes, prepared, space, coords
                    ),
                    coords_batch,
                )
            )
            with self._stats_lock:
                self.stats.parallel_cells += len(coords_batch)
            return states
        return [
            self.execute_cell(prepared, space, coords)
            for coords in coords_batch
        ]

    def _execute_cell_scoped(
        self,
        scopes: tuple[ExecutionStats, ...],
        prepared: PreparedQuery,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        """One pooled cell fetch under the submitting request's scopes."""
        with scoped_stats(scopes):
            return self.execute_cell(prepared, space, coords)

    def execute_grid(
        self, prepared: PreparedQuery, space: RefinedSpace
    ) -> np.ndarray:
        """Cell-aggregate tensor of the *entire* refined-space grid.

        Returns a float64 tensor of shape
        ``(*[m + 1 for m in space.max_coords], state_arity)`` whose
        entry at grid coordinates ``u`` is the aggregate state of the
        cell at ``u`` (empty cells hold the aggregate's identity state).
        This is the bulk entry point of the materialized Explore path
        (``docs/EXPLORE_MODES.md``): backends with a single-pass
        implementation override it; this fallback assembles the tensor
        from :meth:`execute_cells` so any third-party layer works.

        Callers are responsible for bounding ``space.grid_size`` (the
        driver's ``materialize_cell_cap``) — a refined space can be
        astronomically large.
        """
        aggregate = prepared.query.constraint.spec.aggregate
        tensor = grid_identity_tensor(space, aggregate)
        coords_list = list(np.ndindex(tensor.shape[:-1]))
        states = self.execute_cells(prepared, space, coords_list)
        for coords, state in zip(coords_list, states):
            tensor[coords] = state
        # execute_cells already counted the physical round trip(s).
        self._count_grid(len(coords_list), round_trip=False)
        return tensor

    def execute_grid_tile(
        self,
        prepared: PreparedQuery,
        space: RefinedSpace,
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> np.ndarray:
        """Cell-aggregate tensor of the rectangular subgrid ``[lo, hi]``.

        ``lo`` and ``hi`` are inclusive per-dimension grid coordinates;
        the returned float64 tensor has shape
        ``(*[hi_i - lo_i + 1], state_arity)`` and its entry at local
        offset ``u - lo`` is the aggregate state of the cell at ``u`` —
        bit-identical to :meth:`execute_cell` at the same coordinates,
        with empty cells holding the aggregate's identity state.

        This is the bulk entry point of the *tiled* Explore path
        (``docs/EXPLORE_MODES.md``): backends with a single-pass
        implementation override it; this fallback assembles the tile
        from :meth:`execute_cells` so any third-party layer works.
        """
        lo, hi = _check_tile_bounds(space, lo, hi)
        aggregate = prepared.query.constraint.spec.aggregate
        tensor = grid_identity_tensor(space, aggregate, lo, hi)
        coords_list = [
            tuple(c + o for c, o in zip(local, lo))
            for local in np.ndindex(tensor.shape[:-1])
        ]
        states = self.execute_cells(prepared, space, coords_list)
        for local, state in zip(np.ndindex(tensor.shape[:-1]), states):
            tensor[local] = state
        # execute_cells already counted the physical round trip(s).
        self._count_grid(len(coords_list), round_trip=False, tile=True)
        return tensor

    def execute_grid_tiles(
        self,
        prepared: PreparedQuery,
        space: RefinedSpace,
        boxes: Sequence[tuple[Sequence[int], Sequence[int]]],
        max_merged_cells: Optional[int] = None,
    ) -> list[np.ndarray]:
        """Cell tensors for several rectangular subgrids, ideally in
        one merged backend pass.

        ``boxes`` is a sequence of inclusive ``(lo, hi)`` bounds; the
        return value has one tensor per entry, in order, each
        bit-identical to :meth:`execute_grid_tile` over the same bounds
        (duplicate boxes share one read-only tensor). This is the
        merged entry point of cross-query fusion (``docs/SERVICE.md``):
        when the bounding box of all distinct boxes holds no more cells
        than the individual passes would have computed anyway (and no
        more than ``max_merged_cells``), one pass covers the bounding
        box and every box becomes a read-only view into it; otherwise
        the layer issues one pass per distinct box — fusion then
        degrades to deduplication, never a loss.

        A box spanning the full grid extent routes through
        :meth:`execute_grid` so whole-grid materializations keep their
        native path and counters.
        """
        normalized = [_check_tile_bounds(space, lo, hi) for lo, hi in boxes]
        unique = sorted(set(normalized))
        full = ((0,) * space.d, tuple(space.max_coords))
        tensors: dict[tuple, np.ndarray] = {}
        if len(unique) > 1:
            lo = tuple(
                min(box[0][axis] for box in unique)
                for axis in range(space.d)
            )
            hi = tuple(
                max(box[1][axis] for box in unique)
                for axis in range(space.d)
            )
            merged_cells = _box_cells(lo, hi)
            summed = sum(_box_cells(*box) for box in unique)
            within_cap = (
                max_merged_cells is None or merged_cells <= max_merged_cells
            )
            if merged_cells <= summed and within_cap:
                if (lo, hi) == full:
                    parent = self.execute_grid(prepared, space)
                else:
                    parent = self.execute_grid_tile(prepared, space, lo, hi)
                parent.setflags(write=False)
                for box_lo, box_hi in unique:
                    tensors[(box_lo, box_hi)] = parent[
                        tuple(
                            slice(l - p, h - p + 1)
                            for l, h, p in zip(box_lo, box_hi, lo)
                        )
                    ]
                return [tensors[box] for box in normalized]
        for box in unique:
            if box == full:
                tensor = self.execute_grid(prepared, space)
            else:
                tensor = self.execute_grid_tile(prepared, space, *box)
            tensor.setflags(write=False)
            tensors[box] = tensor
        return [tensors[box] for box in normalized]

    def execute_box(
        self, prepared: PreparedQuery, scores: Sequence[float]
    ) -> AggState:
        """Aggregate state of the full refined query at ``scores``."""
        raise NotImplementedError

    def execute_original(self, prepared: PreparedQuery) -> AggState:
        """Aggregate state of the unrefined query (all scores zero)."""
        dims = len(prepared.query.refinable_predicates)
        return self.execute_box(prepared, (0.0,) * dims)

    def topk_admission(
        self, prepared: PreparedQuery, k: int
    ) -> TopKAdmission:
        """Admit the k candidate tuples with smallest total refinement."""
        raise NotImplementedError

    def fetch_rows(
        self,
        prepared: PreparedQuery,
        scores: Sequence[float],
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Materialize the result tuples of a refined query.

        Returns dicts keyed by fully-qualified ``table.column`` names.
        This is the paper's note that "the corresponding result tuples
        can either be stored in main memory or paged to disk" made
        concrete: once the user picks one of ACQUIRE's alternatives,
        this returns its actual rows.
        """
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------
    def request_scope(self) -> "contextlib.AbstractContextManager[ExecutionStats]":
        """Open a per-request stat scope on the calling context.

        Yields a private :class:`ExecutionStats` that accumulates
        exactly the backend work performed while the scope is active on
        the executing thread (pooled paths re-establish it on their
        workers). Scopes nest: inner work credits every enclosing
        scope, mirroring what nested snapshot/delta windows reported.
        Drivers read the scope instead of ``stats.since(snapshot)`` so
        concurrent requests on a shared layer cannot attribute each
        other's work.
        """
        return self._request_scope()

    @contextlib.contextmanager
    def _request_scope(self) -> Iterator[ExecutionStats]:
        scope = ExecutionStats()
        token = _ACTIVE_SCOPES.set(_ACTIVE_SCOPES.get() + (scope,))
        try:
            yield scope
        finally:
            _ACTIVE_SCOPES.reset(token)

    def _count_rows(self, rows: int) -> None:
        """Record row accesses made outside a counted query round trip
        (data loads, candidate builds, grid/bitmap construction)."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.rows_scanned += rows

    def _count_query(self, kind: str, rows: int = 0) -> None:
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.queries_executed += 1
                stats.rows_scanned += rows
                if kind == "cell":
                    stats.cell_queries += 1
                elif kind == "box":
                    stats.box_queries += 1

    def _count_batch(self, cells: int, rows: int = 0) -> None:
        """Record one physical round trip answering ``cells`` cell queries."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.queries_executed += 1
                stats.batches += 1
                stats.cell_queries += cells
                stats.batched_cells += cells
                stats.rows_scanned += rows

    def _count_grid(
        self,
        cells: int,
        rows: int = 0,
        round_trip: bool = True,
        tile: bool = False,
    ) -> None:
        """Record one grid materialization covering ``cells`` cells.

        ``round_trip=False`` is for the base-class fallback, whose
        physical round trips were already counted by
        :meth:`execute_cells`. ``tile=True`` marks a rectangular-subgrid
        pass (:meth:`execute_grid_tile`), additionally counted in
        ``grid_tiles``.
        """
        with self._stats_lock:
            for stats in _sinks(self.stats):
                if round_trip:
                    stats.queries_executed += 1
                stats.grid_materializations += 1
                if tile:
                    stats.grid_tiles += 1
                stats.grid_cells += cells
                stats.rows_scanned += rows

    def count_cache_event(
        self,
        hit: bool,
        nbytes: int = 0,
        persistent: bool = False,
        block: bool = False,
    ) -> None:
        """Record one :class:`~repro.core.grid_cache.GridTensorCache`
        lookup made on this layer's behalf (the cache lives with the
        driver, but its effect — a saved backend pass — belongs in this
        layer's :class:`ExecutionStats` so harness deltas see it).
        ``persistent=True`` marks a hit served by the cross-process
        file tier; ``block=True`` marks a finished block tensor (the
        hit also skipped the prefix passes)."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                if hit:
                    stats.cache_hits += 1
                    stats.cache_bytes += nbytes
                    if persistent:
                        stats.persistent_hits += 1
                        stats.persistent_bytes += nbytes
                    if block:
                        stats.block_hits += 1
                else:
                    stats.cache_misses += 1

    def count_parallel_tiles(self, tiles: int) -> None:
        """Record ``tiles`` tile materializations dispatched to the
        sharded tile pipeline's worker pool."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.parallel_tiles += tiles

    def count_process_tiles(
        self,
        tiles: int = 0,
        pools: int = 0,
        fallbacks: int = 0,
        shm_bytes: int = 0,
        spawn_s: float = 0.0,
        ipc_s: float = 0.0,
    ) -> None:
        """Record process-tier scheduler activity (see
        :class:`ExecutionStats`): tiles fetched in worker processes,
        pools spawned, in-process fallbacks after pool failures,
        shared-memory bytes returned, and the observed spawn/IPC
        overheads the plan calibration learns from."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.process_tiles += tiles
                stats.process_pools += pools
                stats.process_fallbacks += fallbacks
                stats.shm_bytes += shm_bytes
                stats.process_spawn_s += spawn_s
                stats.process_ipc_s += ipc_s

    def count_fused(
        self, passes: int = 0, cells: int = 0, wait_s: float = 0.0
    ) -> None:
        """Record this request's share of cross-query fused passes
        (see :class:`ExecutionStats`): backend passes it shared with
        other in-flight requests, the grid cells those passes delivered
        to it, and the time it spent parked in the coalescer's batching
        window. Called on the beneficiary's own thread so its request
        scopes are the ones credited."""
        with self._stats_lock:
            for stats in _sinks(self.stats):
                stats.fused_passes += passes
                stats.fused_cells += cells
                stats.fusion_wait_s += wait_s

    def merge_stats(self, delta: ExecutionStats) -> None:
        """Fold a worker process's :meth:`ExecutionStats.since` delta
        into this layer's counters.

        Iterates dataclass fields so newly added counters are merged
        automatically — the same no-drift discipline as ``since()``.
        Used by the process tile scheduler: each worker snapshots its
        own layer stats around a fetch and ships the delta home, so
        ``cells_executed``-style accounting stays identical to the
        thread tier.
        """
        with self._stats_lock:
            for stats in _sinks(self.stats):
                for field in fields(stats):
                    setattr(
                        stats,
                        field.name,
                        getattr(stats, field.name)
                        + getattr(delta, field.name),
                    )

    def _timed(self) -> _Timer:
        with self._stats_lock:
            return _Timer(self.stats, self._stats_lock)

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.stats = ExecutionStats()


def grid_identity_tensor(
    space: "RefinedSpace",
    aggregate: "OSPAggregate",
    lo: Optional[Sequence[int]] = None,
    hi: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Identity-filled cell tensor for a refined space (or a tile of it).

    Without bounds the shape is
    ``(*[m + 1 for m in space.max_coords], state_arity)``; with
    inclusive ``lo``/``hi`` bounds it is the tile's
    ``(*[hi_i - lo_i + 1], state_arity)``. Every entry starts at the
    aggregate's identity state so cells a backend never touches (empty
    regions) finalize exactly as a serial query over an empty region
    would.
    """
    if lo is None or hi is None:
        shape = tuple(limit + 1 for limit in space.max_coords)
    else:
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
    identity = aggregate.identity()
    tensor = np.empty(shape + (len(identity),), dtype=np.float64)
    tensor[...] = identity
    return tensor


def _box_cells(lo: Sequence[int], hi: Sequence[int]) -> int:
    """Number of grid cells in the inclusive box ``[lo, hi]``."""
    cells = 1
    for low, high in zip(lo, hi):
        cells *= high - low + 1
    return cells


def _check_tile_bounds(
    space: "RefinedSpace", lo: Sequence[int], hi: Sequence[int]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Validate inclusive tile bounds against the grid extent."""
    lo = tuple(int(c) for c in lo)
    hi = tuple(int(c) for c in hi)
    if len(lo) != space.d or len(hi) != space.d:
        raise EngineError(
            f"tile bound arity ({len(lo)}, {len(hi)}) != "
            f"dimensionality {space.d}"
        )
    for l, h, limit in zip(lo, hi, space.max_coords):
        if not 0 <= l <= h <= limit:
            raise EngineError(
                f"tile bounds [{lo}, {hi}] outside grid extent "
                f"{space.max_coords}"
            )
    return lo, hi


__all__ = [
    "EvaluationLayer",
    "ExecutionStats",
    "PreparedQuery",
    "TopKAdmission",
    "current_scopes",
    "grid_identity_tensor",
    "scoped_stats",
]
