"""The evaluation-layer interface (paper section 3, Figure 2).

ACQUIRE "delegates all actual query execution tasks to an evaluation
layer, which in this case is Postgres. However, the evaluation layer is
modular and can be replaced." This module defines that seam: the
abstract :class:`EvaluationLayer` plus the instrumentation every
implementation shares.

Execution requests come in three shapes:

* *cell queries* — the highly selective unit of the Explore phase:
  tuples whose per-dimension minimal refinement falls in a grid cell's
  annulus;
* *box queries* — a full refined query at an arbitrary (possibly
  off-grid) PScore vector; used by the repartitioning step and by every
  baseline technique;
* *top-k admission* — order candidate tuples by total refinement
  distance and admit the first k; used by the Top-k baseline.

All three are instrumented (queries issued, rows scanned, execution
time) so the harness can report machine-independent work alongside
wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.aggregates import AggState
    from repro.core.query import Query
    from repro.core.refined_space import RefinedSpace


@dataclass
class ExecutionStats:
    """Counters accumulated by an evaluation layer."""

    queries_executed: int = 0
    cell_queries: int = 0
    box_queries: int = 0
    rows_scanned: int = 0
    execution_time_s: float = 0.0

    def snapshot(self) -> "ExecutionStats":
        return ExecutionStats(
            queries_executed=self.queries_executed,
            cell_queries=self.cell_queries,
            box_queries=self.box_queries,
            rows_scanned=self.rows_scanned,
            execution_time_s=self.execution_time_s,
        )

    def since(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """Counter deltas relative to an earlier snapshot."""
        return ExecutionStats(
            queries_executed=self.queries_executed - earlier.queries_executed,
            cell_queries=self.cell_queries - earlier.cell_queries,
            box_queries=self.box_queries - earlier.box_queries,
            rows_scanned=self.rows_scanned - earlier.rows_scanned,
            execution_time_s=self.execution_time_s - earlier.execution_time_s,
        )


@dataclass
class TopKAdmission:
    """Result of a top-k-by-refinement-distance request.

    ``admitted`` is the number of tuples returned (== k unless fewer
    candidates exist); ``max_scores`` is the per-dimension maximum
    PScore among admitted tuples — the bounding refined query implied
    by the selected tuple set, used to assign Top-k a refinement score
    (paper Figure 8c compares refinement scores across methods).
    """

    admitted: int
    max_scores: tuple[float, ...]


class PreparedQuery(Protocol):
    """Marker protocol for backend-specific prepared state."""

    query: Query


class _Timer:
    """Context manager adding elapsed time to a stats object."""

    def __init__(self, stats: ExecutionStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stats.execution_time_s += time.perf_counter() - self._start


class EvaluationLayer:
    """Abstract evaluation layer; see module docstring.

    ``dim_caps`` passed to :meth:`prepare` bound the refinement each
    dimension can ever receive (from predicate limits and the driver's
    configuration); backends may use them to bound materialization,
    e.g. the half-width of a relaxed band join.
    """

    def __init__(self) -> None:
        self.stats = ExecutionStats()

    # -- lifecycle -------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ) -> PreparedQuery:
        raise NotImplementedError

    def useful_max_scores(self, prepared: PreparedQuery) -> list[float]:
        """Per-dimension maximum *useful* PScore.

        Expanding a predicate past the observed attribute domain admits
        no new tuples, so the refined-space grid is clipped at these
        scores. Backends return ``math.inf`` for dimensions they cannot
        bound; the driver then falls back to its configured cap.
        """
        raise NotImplementedError

    # -- execution --------------------------------------------------------
    def execute_cell(
        self,
        prepared: PreparedQuery,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        """Aggregate state of the grid cell at ``coords``."""
        raise NotImplementedError

    def execute_box(
        self, prepared: PreparedQuery, scores: Sequence[float]
    ) -> AggState:
        """Aggregate state of the full refined query at ``scores``."""
        raise NotImplementedError

    def execute_original(self, prepared: PreparedQuery) -> AggState:
        """Aggregate state of the unrefined query (all scores zero)."""
        dims = len(prepared.query.refinable_predicates)
        return self.execute_box(prepared, (0.0,) * dims)

    def topk_admission(
        self, prepared: PreparedQuery, k: int
    ) -> TopKAdmission:
        """Admit the k candidate tuples with smallest total refinement."""
        raise NotImplementedError

    def fetch_rows(
        self,
        prepared: PreparedQuery,
        scores: Sequence[float],
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Materialize the result tuples of a refined query.

        Returns dicts keyed by fully-qualified ``table.column`` names.
        This is the paper's note that "the corresponding result tuples
        can either be stored in main memory or paged to disk" made
        concrete: once the user picks one of ACQUIRE's alternatives,
        this returns its actual rows.
        """
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------
    def _count_query(self, kind: str, rows: int = 0) -> None:
        self.stats.queries_executed += 1
        self.stats.rows_scanned += rows
        if kind == "cell":
            self.stats.cell_queries += 1
        elif kind == "box":
            self.stats.box_queries += 1

    def _timed(self) -> _Timer:
        return _Timer(self.stats)

    def reset_stats(self) -> None:
        self.stats = ExecutionStats()


__all__ = [
    "EvaluationLayer",
    "ExecutionStats",
    "PreparedQuery",
    "TopKAdmission",
]
