"""Evaluation-layer substrate: storage, expressions, execution backends.

The paper delegates all query execution to PostgreSQL and stresses that
the evaluation layer is modular.  This package provides two complete,
interchangeable evaluation layers behind one interface
(:class:`~repro.engine.backends.EvaluationLayer`):

* :class:`~repro.engine.memory_backend.MemoryBackend` — a from-scratch
  in-memory columnar engine on numpy arrays.
* :class:`~repro.engine.sqlite_backend.SQLiteBackend` — compiles every
  cell/box query to SQL and executes it against :mod:`sqlite3`, the
  closest stand-in for the paper's Postgres deployment.

Re-exports are resolved lazily (PEP 562) because the low-level modules
here (``expression``, ``schema``) are imported by ``repro.core`` while
the high-level backends import ``repro.core`` back; laziness keeps that
dependency diamond acyclic at import time.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Column": "repro.engine.schema",
    "ColumnType": "repro.engine.schema",
    "TableSchema": "repro.engine.schema",
    "Table": "repro.engine.table",
    "Database": "repro.engine.catalog",
    "Expression": "repro.engine.expression",
    "col": "repro.engine.expression",
    "const": "repro.engine.expression",
    "parse_column_ref": "repro.engine.expression",
    "EvaluationLayer": "repro.engine.backends",
    "ExecutionStats": "repro.engine.backends",
    "TopKAdmission": "repro.engine.backends",
    "MemoryBackend": "repro.engine.memory_backend",
    "SQLiteBackend": "repro.engine.sqlite_backend",
    "GridBitmapIndex": "repro.engine.bitmap_index",
    "SamplingBackend": "repro.engine.sampling",
    "HistogramBackend": "repro.engine.histogram_backend",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.engine.backends import (
        EvaluationLayer,
        ExecutionStats,
        TopKAdmission,
    )
    from repro.engine.bitmap_index import GridBitmapIndex
    from repro.engine.catalog import Database
    from repro.engine.expression import (
        Expression,
        col,
        const,
        parse_column_ref,
    )
    from repro.engine.memory_backend import MemoryBackend
    from repro.engine.histogram_backend import HistogramBackend
    from repro.engine.sampling import SamplingBackend
    from repro.engine.schema import Column, ColumnType, TableSchema
    from repro.engine.sqlite_backend import SQLiteBackend
    from repro.engine.table import Table
