"""Expression trees over table columns.

Predicate functions in the paper (section 2.2) are monotonic functions
of relation attributes: plain columns (``B.y``), arithmetic combinations
(``2*A.x``), and distance functions between two sides of a join
(``|A.x - B.x|``). This module provides the small expression language
that represents them, with two evaluators:

* :meth:`Expression.evaluate` — vectorized numpy evaluation against a
  batch of column arrays (memory backend).
* :meth:`Expression.to_sql` — rendering to a SQL scalar expression
  (SQLite backend).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from repro.exceptions import ExpressionError

#: Column batches map a fully-qualified "table.column" name to an array.
ColumnBatch = Mapping[str, np.ndarray]

_ARITH_OPS = {"+", "-", "*", "/"}


def _qualify(table: str, column: str) -> str:
    return f"{table}.{column}"


def parse_column_ref(ref: str, default_table: str | None = None) -> tuple[str, str]:
    """Split ``"table.column"`` (or bare ``"column"``) into its parts."""
    if "." in ref:
        table, _, column = ref.partition(".")
        if not table or not column:
            raise ExpressionError(f"malformed column reference: {ref!r}")
        return table, column
    if default_table is None:
        raise ExpressionError(f"unqualified column {ref!r} needs a default table")
    return default_table, ref


class Expression:
    """Base class for scalar expressions over one or more tables."""

    def evaluate(self, batch: ColumnBatch) -> np.ndarray:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError

    def tables(self) -> set[str]:
        """Names of every table whose columns the expression touches."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Fully-qualified names of every referenced column."""
        raise NotImplementedError

    # Operator sugar so tests and examples read naturally.
    def __add__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("+", self, wrap(other))

    def __sub__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("-", self, wrap(other))

    def __mul__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("*", self, wrap(other))

    def __truediv__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("/", self, wrap(other))

    def __radd__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("+", wrap(other), self)

    def __rsub__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("-", wrap(other), self)

    def __rmul__(self, other: ExpressionLike) -> Expression:
        return BinaryOp("*", wrap(other), self)


ExpressionLike = Union[Expression, int, float]


def wrap(value: ExpressionLike) -> Expression:
    """Coerce plain numbers to :class:`Constant` expressions."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise ExpressionError(f"cannot use {value!r} as an expression")


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to ``table.column``."""

    table: str
    column: str

    def evaluate(self, batch: ColumnBatch) -> np.ndarray:
        key = _qualify(self.table, self.column)
        try:
            return batch[key]
        except KeyError:
            raise ExpressionError(f"column {key!r} missing from batch") from None

    def to_sql(self) -> str:
        return f"{self.table}.{self.column}"

    def tables(self) -> set[str]:
        return {self.table}

    def columns(self) -> set[str]:
        return {_qualify(self.table, self.column)}

    def __repr__(self) -> str:
        return f"col({self.table}.{self.column})"


@dataclass(frozen=True)
class Constant(Expression):
    """A literal numeric constant."""

    value: float

    def evaluate(self, batch: ColumnBatch) -> np.ndarray:
        return np.asarray(self.value, dtype=np.float64)

    def to_sql(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))

    def tables(self) -> set[str]:
        return set()

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"const({self.value})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic between two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unsupported arithmetic operator: {self.op!r}")

    def evaluate(self, batch: ColumnBatch) -> np.ndarray:
        left = np.asarray(self.left.evaluate(batch), dtype=np.float64)
        right = np.asarray(self.right.evaluate(batch), dtype=np.float64)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        with np.errstate(divide="ignore", invalid="ignore"):
            return left / right

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def tables(self) -> set[str]:
        return self.left.tables() | self.right.tables()

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Abs(Expression):
    """Absolute value — the default join distance function Delta."""

    operand: Expression

    def evaluate(self, batch: ColumnBatch) -> np.ndarray:
        return np.abs(np.asarray(self.operand.evaluate(batch), dtype=np.float64))

    def to_sql(self) -> str:
        return f"ABS({self.operand.to_sql()})"

    def tables(self) -> set[str]:
        return self.operand.tables()

    def columns(self) -> set[str]:
        return self.operand.columns()


def col(ref: str, default_table: str | None = None) -> ColumnRef:
    """Build a column reference from ``"table.column"`` text."""
    table, column = parse_column_ref(ref, default_table)
    return ColumnRef(table, column)


def const(value: float) -> Constant:
    return Constant(float(value))


def absolute(expr: ExpressionLike) -> Abs:
    return Abs(wrap(expr))
