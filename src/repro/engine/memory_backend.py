"""In-memory numpy evaluation layer.

Prepares an ACQ by materializing its candidate relation once (joins,
NOREFINE filters, per-tuple signed refinement scores — see
:mod:`repro.engine.executor`), then answers every cell/box request with
vectorized score-range filters. Each request scans the candidate
relation, mirroring the per-query scan cost of the paper's Postgres
evaluation layer while keeping the whole system self-contained.

Two optional accelerators, both off by default because the paper's
baseline numbers assume plain per-query execution:

* ``vectorized_grid=True`` — pre-aggregates every grid cell in one pass
  (a generalization of the section 7.4 index idea to full pushdown);
  cell queries then cost a dictionary lookup.
* :meth:`MemoryBackend.build_bitmap_index` — the literal section 7.4
  structure: a bitmap over grid cells consulted to skip empty cells.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.aggregates import AggState
from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import (
    EvaluationLayer,
    TopKAdmission,
    grid_identity_tensor,
)
from repro.engine.bitmap_index import GridBitmapIndex
from repro.engine.catalog import Database
from repro.engine.executor import (
    DEFAULT_MAX_ROWS,
    CandidateRelation,
    build_candidate,
)
from repro.exceptions import EngineError


@dataclass
class _MemoryPrepared:
    """Backend-private prepared state."""

    query: Query
    candidate: CandidateRelation
    dim_caps: list[float]
    grid_cache: Dict[int, dict] = field(default_factory=dict)
    # Lazily built when the backend runs in indexed mode: candidate
    # rows ordered by their dimension-0 score, plus the sorted scores
    # themselves (the "index key").
    index_order: Optional[np.ndarray] = None
    index_keys: Optional[np.ndarray] = None


class MemoryBackend(EvaluationLayer):
    """Evaluation layer over the in-memory columnar engine.

    ``indexed=True`` gives cell queries an index-scan cost model: a
    sorted index over the first dimension's scores narrows each cell
    query to the tuples inside that dimension's annulus before the
    remaining dimensions are filtered — cost proportional to the slice,
    like a DBMS using a single-column B-tree, instead of a full scan.
    Results are bit-identical to the plain path.
    """

    def __init__(
        self,
        database: Database,
        max_rows: int = DEFAULT_MAX_ROWS,
        vectorized_grid: bool = False,
        indexed: bool = False,
    ) -> None:
        super().__init__()
        self.database = database
        self.max_rows = max_rows
        self.vectorized_grid = vectorized_grid
        self.indexed = indexed
        # Guards the lazy grid rebuild in _grid_for against concurrent
        # tile workers (the build is deterministic, so the lock only
        # prevents duplicated work and torn cache state).
        self._grid_build_lock = threading.Lock()

    def persistent_cache_key(self) -> tuple:
        from repro.core.grid_cache import database_digest

        return ("MemoryBackend", database_digest(self.database))

    def backend_spec(self, prepared: _MemoryPrepared):
        """Process-tier recipe: plain column arrays + constructor args.

        A worker re-``prepare``s from the shipped tables; the candidate
        relation build is deterministic, so worker tile fetches are
        bit-identical to the parent's.
        """
        from repro.core.tile_worker import BackendSpec, database_tables

        return BackendSpec(
            factory="repro.engine.memory_backend:MemoryBackend",
            tables=database_tables(self.database),
            kwargs={
                "max_rows": self.max_rows,
                "vectorized_grid": self.vectorized_grid,
                "indexed": self.indexed,
            },
            query=prepared.query,
            dim_caps=tuple(prepared.dim_caps),
            database_name=self.database.name,
        )

    # ------------------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ) -> _MemoryPrepared:
        if dim_caps is None:
            dim_caps = [0.0] * query.dimensionality
        caps = [float(cap) for cap in dim_caps]
        with self._timed():
            candidate = build_candidate(
                self.database, query, caps, self.max_rows
            )
        self._count_rows(candidate.rows_scanned)
        return _MemoryPrepared(query=query, candidate=candidate, dim_caps=caps)

    def useful_max_scores(self, prepared: _MemoryPrepared) -> list[float]:
        return list(prepared.candidate.useful_max_scores)

    # ------------------------------------------------------------------
    def execute_cell(
        self,
        prepared: _MemoryPrepared,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        aggregate = prepared.query.constraint.spec.aggregate
        if self.vectorized_grid:
            grid = self._grid_for(prepared, space)
            self._count_query("cell")
            return grid.get(tuple(int(c) for c in coords), aggregate.identity())
        candidate = prepared.candidate
        if self.indexed and candidate.scores.shape[1] > 0:
            return self._execute_cell_indexed(prepared, space, coords)
        with self._timed():
            mask = self._cell_mask(candidate.scores, space, coords)
            state = aggregate.lift(candidate.agg_values[mask])
        self._count_query("cell", rows=candidate.nrows)
        return state

    def execute_cells(
        self,
        prepared: _MemoryPrepared,
        space: RefinedSpace,
        coords_list: Sequence[Sequence[int]],
        parallelism: int = 1,
    ) -> list[AggState]:
        """Native batch: one vectorized pass answers the whole layer.

        Digitizes every tuple's score vector into grid coordinates once
        and group-aggregates (the :meth:`_build_grid` sweep), then reads
        the requested cells out of the grouped result. ``np.lexsort`` is
        stable, so within each cell the aggregate values are combined in
        ascending original-row order — the same order the serial mask
        extraction produces — making SUM/AVG bit-identical to
        :meth:`execute_cell`. ``parallelism`` is ignored: the single
        pass is already the fastest path.
        """
        coords_batch = [tuple(int(c) for c in coords) for coords in coords_list]
        if not coords_batch:
            return []
        aggregate = prepared.query.constraint.spec.aggregate
        if self.vectorized_grid:
            grid = self._grid_for(prepared, space)
            self._count_batch(len(coords_batch))
        else:
            with self._timed():
                grid = self._build_grid(prepared, space)
            self._count_batch(
                len(coords_batch), rows=prepared.candidate.nrows
            )
        return [
            grid.get(coords, aggregate.identity()) for coords in coords_batch
        ]

    def execute_grid(
        self,
        prepared: _MemoryPrepared,
        space: RefinedSpace,
    ) -> np.ndarray:
        """Native grid materialization: one digitize + group-by sweep.

        Runs the same :meth:`_build_grid` pass the batched path uses
        (stable ``np.lexsort`` grouping, so per-cell aggregate states
        are bit-identical to serial :meth:`execute_cell`) and scatters
        the grouped states into the full cell tensor. Tuples whose
        score exceeds the grid extent on any dimension belong to no
        in-grid cell and are dropped, exactly as serial cell queries
        would never see them.
        """
        aggregate = prepared.query.constraint.spec.aggregate
        if self.vectorized_grid:
            grid = self._grid_for(prepared, space)
            rows = 0
        else:
            with self._timed():
                grid = self._build_grid(prepared, space)
            rows = prepared.candidate.nrows
        with self._timed():
            tensor = grid_identity_tensor(space, aggregate)
            max_coords = space.max_coords
            for cell, state in grid.items():
                if all(c <= m for c, m in zip(cell, max_coords)):
                    tensor[cell] = state
        cells = int(np.prod(tensor.shape[:-1], dtype=np.int64))
        self._count_grid(cells, rows=rows)
        return tensor

    def execute_grid_tile(
        self,
        prepared: _MemoryPrepared,
        space: RefinedSpace,
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> np.ndarray:
        """Native tile materialization: one digitize + group-by sweep.

        The same :meth:`_build_grid` pass as :meth:`execute_grid`
        (per-cell states are bit-identical to serial
        :meth:`execute_cell` by the stable-lexsort argument), scattering
        only the cells that fall inside the inclusive ``[lo, hi]`` box.
        """
        from repro.engine.backends import _check_tile_bounds

        lo, hi = _check_tile_bounds(space, lo, hi)
        aggregate = prepared.query.constraint.spec.aggregate
        if self.vectorized_grid:
            grid = self._grid_for(prepared, space)
            rows = 0
        else:
            with self._timed():
                grid = self._build_grid(prepared, space)
            rows = prepared.candidate.nrows
        with self._timed():
            tensor = grid_identity_tensor(space, aggregate, lo, hi)
            for cell, state in grid.items():
                if all(l <= c <= h for c, l, h in zip(cell, lo, hi)):
                    tensor[tuple(c - l for c, l in zip(cell, lo))] = state
        cells = int(np.prod(tensor.shape[:-1], dtype=np.int64))
        self._count_grid(cells, rows=rows, tile=True)
        return tensor

    def _execute_cell_indexed(
        self,
        prepared: _MemoryPrepared,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        """Cell execution through the dimension-0 score index."""
        candidate = prepared.candidate
        aggregate = prepared.query.constraint.spec.aggregate
        with self._timed():
            if prepared.index_order is None:
                prepared.index_order = np.argsort(
                    candidate.scores[:, 0], kind="stable"
                )
                prepared.index_keys = candidate.scores[
                    prepared.index_order, 0
                ]
            ranges = space.cell_ranges(coords)
            low, high = ranges[0]
            keys = prepared.index_keys
            if low < 0:
                start = 0
                stop = int(np.searchsorted(keys, 0.0, side="right"))
            else:
                start = int(np.searchsorted(keys, low, side="right"))
                stop = int(np.searchsorted(keys, high, side="right"))
            slice_rows = prepared.index_order[start:stop]
            mask = np.ones(len(slice_rows), dtype=bool)
            for dim, (dim_low, dim_high) in enumerate(ranges[1:], start=1):
                column = candidate.scores[slice_rows, dim]
                if dim_low < 0:
                    mask &= column <= 0.0
                else:
                    mask &= (column > dim_low) & (column <= dim_high)
            state = aggregate.lift(
                candidate.agg_values[slice_rows[mask]]
            )
        self._count_query("cell", rows=len(slice_rows))
        return state

    def execute_box(
        self, prepared: _MemoryPrepared, scores: Sequence[float]
    ) -> AggState:
        candidate = prepared.candidate
        aggregate = prepared.query.constraint.spec.aggregate
        if len(scores) != candidate.scores.shape[1]:
            raise EngineError(
                f"box arity {len(scores)} != dimensionality "
                f"{candidate.scores.shape[1]}"
            )
        with self._timed():
            mask = np.ones(candidate.nrows, dtype=bool)
            for dim, score in enumerate(scores):
                mask &= candidate.scores[:, dim] <= score
            state = aggregate.lift(candidate.agg_values[mask])
        self._count_query("box", rows=candidate.nrows)
        return state

    def topk_admission(
        self, prepared: _MemoryPrepared, k: int
    ) -> TopKAdmission:
        """Admit the k tuples with smallest total refinement distance.

        Distance is the weighted L1 of per-dimension *expansion* needs
        (negative signed scores clamp to zero: a tuple inside the
        original interval needs no refinement on that dimension).
        """
        candidate = prepared.candidate
        dims = prepared.query.refinable_predicates
        with self._timed():
            needs = np.maximum(candidate.scores, 0.0)
            weights = np.array([p.weight for p in dims], dtype=np.float64)
            totals = needs @ weights if needs.size else np.zeros(0)
            admitted = min(k, candidate.nrows)
            if admitted == 0:
                max_scores = tuple(0.0 for _ in dims)
            else:
                chosen = np.argpartition(totals, admitted - 1)[:admitted]
                max_scores = tuple(
                    float(np.max(needs[chosen, dim])) for dim in range(len(dims))
                )
        self._count_query("box", rows=candidate.nrows)
        return TopKAdmission(admitted=admitted, max_scores=max_scores)

    def fetch_rows(
        self,
        prepared: _MemoryPrepared,
        scores: Sequence[float],
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Materialize tuples admitted by a refined query."""
        candidate = prepared.candidate
        with self._timed():
            mask = np.ones(candidate.nrows, dtype=bool)
            for dim, score in enumerate(scores):
                mask &= candidate.scores[:, dim] <= score
            positions = np.nonzero(mask)[0]
            if limit is not None:
                positions = positions[:limit]
            columns: dict[str, np.ndarray] = {}
            for table_name, indices in candidate.frame.items():
                table = self.database.table(table_name)
                chosen = indices[positions]
                for column in table.schema.column_names:
                    columns[f"{table_name}.{column}"] = table.column(
                        column
                    )[chosen]
            rows = [
                {key: values[i] for key, values in columns.items()}
                for i in range(len(positions))
            ]
        self._count_query("box", rows=candidate.nrows)
        return rows

    # ------------------------------------------------------------------
    # Accelerators
    # ------------------------------------------------------------------
    def build_bitmap_index(
        self, prepared: _MemoryPrepared, space: RefinedSpace
    ) -> GridBitmapIndex:
        """Section 7.4: bitmap over grid cells, built in one pass."""
        with self._timed():
            index = GridBitmapIndex.from_scores(
                prepared.candidate.scores, space
            )
        self._count_rows(prepared.candidate.nrows)
        return index

    def _grid_for(self, prepared: _MemoryPrepared, space: RefinedSpace) -> dict:
        key = id(space)
        with self._grid_build_lock:
            if key not in prepared.grid_cache:
                with self._timed():
                    grid = self._build_grid(prepared, space)
                    prepared.grid_cache.clear()
                    prepared.grid_cache[key] = grid
                self._count_rows(prepared.candidate.nrows)
            return prepared.grid_cache[key]

    def _build_grid(
        self, prepared: _MemoryPrepared, space: RefinedSpace
    ) -> dict:
        """Aggregate every non-empty grid cell in one sweep."""
        candidate = prepared.candidate
        aggregate = prepared.query.constraint.spec.aggregate
        coords = _digitize(candidate.scores, space.step)
        grid: dict[tuple[int, ...], AggState] = {}
        if candidate.nrows == 0:
            return grid
        order = np.lexsort(coords.T[::-1])
        sorted_coords = coords[order]
        sorted_values = candidate.agg_values[order]
        boundaries = np.any(np.diff(sorted_coords, axis=0) != 0, axis=1)
        starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1))
        ends = np.concatenate((starts[1:], [len(sorted_coords)]))
        for start, end in zip(starts, ends):
            cell = tuple(int(c) for c in sorted_coords[start])
            grid[cell] = aggregate.lift(sorted_values[start:end])
        return grid

    # ------------------------------------------------------------------
    @staticmethod
    def _cell_mask(
        scores: np.ndarray, space: RefinedSpace, coords: Sequence[int]
    ) -> np.ndarray:
        mask = np.ones(scores.shape[0], dtype=bool)
        for dim, (low, high) in enumerate(space.cell_ranges(coords)):
            column = scores[:, dim]
            if low < 0:
                mask &= column <= 0.0
            else:
                mask &= (column > low) & (column <= high)
        return mask


def _digitize(scores: np.ndarray, step: float) -> np.ndarray:
    """Grid coordinate of each signed score (cell 0 covers <= 0).

    Must agree bitwise with the serial cell predicate
    ``(c - 1) * step < s <= c * step`` (see :meth:`_cell_mask` /
    :meth:`RefinedSpace.cell_ranges`), which compares against the float
    *products*. When ``step`` is not exactly representable, the float
    *quotient* ``s / step`` can land a boundary-adjacent score one cell
    away from where the product comparison puts it — so after the ceil
    guess, nudge each coordinate until it satisfies exactly the serial
    predicate. The loops run at most once per element in practice.
    """
    positive = np.maximum(scores, 0.0)
    cells = np.ceil(positive / step - 1e-12).astype(np.int64)
    np.maximum(cells, 0, out=cells)
    while True:
        too_high = (cells > 0) & (positive <= (cells - 1) * step)
        if not too_high.any():
            break
        cells[too_high] -= 1
    while True:
        too_low = positive > cells * step
        if not too_low.any():
            break
        cells[too_low] += 1
    return cells
