"""SQLite evaluation layer.

The closest stand-in for the paper's deployment: ACQUIRE "sits outside
the DBMS ... all query execution tasks are delegated to the DBMS".
Every cell/box/top-k request is compiled to SQL and executed against an
in-memory :mod:`sqlite3` database loaded from the catalog, so each cell
query is a genuine database query with real planning, filtering and
aggregation cost.
"""

from __future__ import annotations

import math
import sqlite3
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.aggregates import AggState
from repro.core.interval import Interval
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import (
    EvaluationLayer,
    TopKAdmission,
    grid_identity_tensor,
)
from repro.core.grid_cache import database_digest
from repro.engine.catalog import Database
from repro.engine.schema import ColumnType
from repro.exceptions import EngineError

@dataclass
class _SQLitePrepared:
    query: Query
    dim_caps: list[float]
    from_sql: str
    fixed_sql: list[str]


class SQLiteBackend(EvaluationLayer):
    """Evaluation layer that compiles every request to SQL."""

    #: The sqlite3 C library releases the GIL during statement
    #: execution, so thread workers genuinely overlap tile fetches.
    parallel_tile_scaling = True

    def __init__(
        self, database: Database, create_indexes: bool = True
    ) -> None:
        super().__init__()
        self.database = database
        self.create_indexes = create_indexes
        self._connection = sqlite3.connect(
            ":memory:", check_same_thread=False
        )
        self._owner_ident = threading.get_ident()
        # Worker threads (the sharded tile pipeline) read through
        # private deserialized snapshots of the primary database —
        # shared-cache connections would serialize on the cache mutex,
        # losing the fetch overlap the scheduler exists to create. A
        # generation counter invalidates snapshots when later loads or
        # index builds change the primary; each worker holds one full
        # copy, so memory scales with ``tile_workers``, not tiles.
        self._local = threading.local()
        self._readers: list[sqlite3.Connection] = []
        self._readers_lock = threading.Lock()
        self._load_generation = 0
        self._snapshot_generation = -1
        self._snapshot_data: Optional[bytes] = None
        self._snapshot_lock = threading.Lock()
        # Loads and index builds are DDL against the shared primary
        # connection: not idempotent, so concurrent cold ``prepare``
        # calls (the service tier shares one backend across requests)
        # must serialize on this lock.
        self._load_lock = threading.Lock()
        self._loaded: set[str] = set()
        self._indexed: set[str] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._readers_lock:
            readers, self._readers = self._readers, []
        for connection in readers:
            try:
                connection.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()
        self._connection.close()
        super().close()

    def persistent_cache_key(self) -> tuple:
        return ("SQLiteBackend", database_digest(self.database))

    def backend_spec(self, prepared: _SQLitePrepared):
        """Process-tier recipe: tables + the primary's serialized image.

        The snapshot (``Connection.serialize``, Python >= 3.11) lets
        workers skip the CREATE TABLE + INSERT reload; older runtimes
        ship tables only and workers reload through ``prepare``.
        """
        from repro.core.tile_worker import BackendSpec, database_tables

        snapshot: Optional[bytes] = None
        if hasattr(self._connection, "serialize"):
            snapshot = self._snapshot()[1]
        return BackendSpec(
            factory="repro.engine.sqlite_backend:SQLiteBackend",
            tables=database_tables(self.database),
            kwargs={"create_indexes": self.create_indexes},
            query=prepared.query,
            dim_caps=tuple(prepared.dim_caps),
            database_name=self.database.name,
            sqlite_snapshot=snapshot,
        )

    def restore_snapshot(
        self, snapshot: bytes, loaded: Sequence[str]
    ) -> bool:
        """Adopt a serialized database image (worker-side restore).

        Marks ``loaded`` tables as installed so the subsequent
        ``prepare`` skips re-inserting them; indexes already live in
        the image, and ``CREATE INDEX IF NOT EXISTS`` makes the
        re-ensure a no-op. Returns False (leaving the reload path to
        ``prepare``) when this runtime cannot deserialize.
        """
        if not hasattr(self._connection, "deserialize"):
            return False
        with self._load_lock:
            self._connection.deserialize(snapshot)
            self._loaded.update(loaded)
            self._load_generation += 1
        return True

    def _snapshot(self) -> tuple[int, bytes]:
        """Serialized image of the primary database, memoized per load
        generation. All loads/index builds happen on the primary
        connection before any worker reads (``_ensure_tiles`` installs
        every table the prepared query touches), so a snapshot taken at
        fetch time is complete for that query."""
        with self._snapshot_lock:
            if self._snapshot_generation != self._load_generation:
                self._snapshot_data = self._connection.serialize()
                self._snapshot_generation = self._load_generation
            assert self._snapshot_data is not None
            return self._snapshot_generation, self._snapshot_data

    def _cursor(self) -> sqlite3.Cursor:
        """A read cursor safe for the calling thread.

        The owning thread reads through the primary connection; worker
        threads get a lazily created per-thread private connection
        deserialized from the primary's current image. Private copies
        (rather than shared-cache readers) keep concurrent tile fetches
        off any shared page-cache mutex, so they genuinely overlap.
        """
        if threading.get_ident() == self._owner_ident:
            return self._connection.cursor()
        if not hasattr(self._connection, "serialize"):
            # Python < 3.11 has no Connection.serialize; fall back to
            # the shared primary connection (the sqlite3 module
            # serializes access internally) — correct, just without
            # genuine fetch overlap.
            return self._connection.cursor()
        generation = getattr(self._local, "generation", -1)
        connection = getattr(self._local, "connection", None)
        with self._load_lock:
            current_generation = self._load_generation
        if connection is None or generation != current_generation:
            image_generation, image = self._snapshot()
            if connection is None:
                connection = sqlite3.connect(
                    ":memory:", check_same_thread=False
                )
                with self._readers_lock:
                    self._readers.append(connection)
                self._local.connection = connection
            connection.deserialize(image)
            self._local.generation = image_generation
        return connection.cursor()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_loaded(self, table_name: str) -> None:
        with self._load_lock:
            if table_name in self._loaded:
                return
            table = self.database.table(table_name)
            columns_sql = ", ".join(
                f"{column.name} {column.ctype.sql_type}"
                for column in table.schema.columns
            )
            cursor = self._connection.cursor()
            cursor.execute(f"CREATE TABLE {table_name} ({columns_sql})")
            names = table.schema.column_names
            placeholders = ", ".join("?" for _ in names)
            column_lists = [table.column(name).tolist() for name in names]
            cursor.executemany(
                f"INSERT INTO {table_name} VALUES ({placeholders})",
                zip(*column_lists) if column_lists else [],
            )
            self._connection.commit()
            self._loaded.add(table_name)
            self._load_generation += 1
            self._count_rows(len(table))

    def _ensure_index(self, table_name: str, column_name: str) -> None:
        with self._load_lock:
            key = f"{table_name}.{column_name}"
            if not self.create_indexes or key in self._indexed:
                return
            cursor = self._connection.cursor()
            cursor.execute(
                f"CREATE INDEX IF NOT EXISTS idx_{table_name}_{column_name} "
                f"ON {table_name} ({column_name})"
            )
            self._indexed.add(key)
            self._load_generation += 1

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ) -> _SQLitePrepared:
        if dim_caps is None:
            dim_caps = [0.0] * query.dimensionality
        with self._timed():
            for table_name in query.tables:
                self._ensure_loaded(table_name)
            for predicate in query.predicates:
                for ref in _predicate_columns(predicate):
                    table_name, column_name = ref.split(".", 1)
                    column = self.database.table(table_name).schema.column(
                        column_name
                    )
                    if column.ctype is not ColumnType.STR:
                        self._ensure_index(table_name, column_name)
        fixed_sql = [
            predicate.sql_condition(0.0) for predicate in query.fixed_predicates
        ]
        return _SQLitePrepared(
            query=query,
            dim_caps=[float(cap) for cap in dim_caps],
            from_sql=", ".join(query.tables),
            fixed_sql=fixed_sql,
        )

    def useful_max_scores(self, prepared: _SQLitePrepared) -> list[float]:
        """Bound each dimension from per-table MIN/MAX statistics."""
        scores = []
        for predicate in prepared.query.refinable_predicates:
            if isinstance(predicate, SelectPredicate):
                tables = predicate.expr.tables()
                if len(tables) == 1:
                    domain = self._expr_domain(
                        predicate.expr.to_sql(), next(iter(tables))
                    )
                    scores.append(predicate.max_useful_score(domain))
                else:
                    scores.append(math.inf)
            elif isinstance(predicate, CategoricalPredicate):
                scores.append(
                    predicate.max_useful_score(Interval(0.0, 0.0))
                )
            else:
                scores.append(math.inf)
        return scores

    def _expr_domain(self, expr_sql: str, table_name: str) -> Interval:
        cursor = self._cursor()
        with self._timed():
            row = cursor.execute(
                f"SELECT MIN({expr_sql}), MAX({expr_sql}) FROM {table_name}"
            ).fetchone()
        self._count_query("box")
        if row is None or row[0] is None:
            return Interval(0.0, 0.0)
        return Interval(float(row[0]), float(row[1]))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_aggregate(
        self, prepared: _SQLitePrepared, conditions: list[str], kind: str
    ) -> AggState:
        spec = prepared.query.constraint.spec
        attribute_sql = (
            spec.attribute.to_sql() if spec.attribute is not None else None
        )
        selects = ", ".join(spec.aggregate.sql_selects(attribute_sql))
        where = " AND ".join(f"({c})" for c in conditions) or "1=1"
        sql = f"SELECT {selects} FROM {prepared.from_sql} WHERE {where}"
        cursor = self._cursor()
        with self._timed():
            row = cursor.execute(sql).fetchone()
        self._count_query(kind)
        return spec.aggregate.state_from_sql(tuple(row))

    def execute_cell(
        self,
        prepared: _SQLitePrepared,
        space: RefinedSpace,
        coords: Sequence[int],
    ) -> AggState:
        conditions = list(prepared.fixed_sql)
        for predicate, (low, high) in zip(
            space.dims, space.cell_ranges(coords)
        ):
            conditions.append(predicate.sql_annulus(low, high))
        return self._run_aggregate(prepared, conditions, "cell")

    def execute_cells(
        self,
        prepared: _SQLitePrepared,
        space: RefinedSpace,
        coords_list: Sequence[Sequence[int]],
        parallelism: int = 1,
    ) -> list[AggState]:
        """Native batch: one ``GROUP BY`` statement answers the layer.

        Each dimension gets a CASE ladder over the same
        ``sql_condition`` thresholds the serial annulus uses; the first
        (smallest) matching level is the tuple's minimal refinement
        coordinate, so grouping by the ladders buckets tuples exactly
        as N per-cell round trips would. Cells absent from the result
        are empty; their state is the aggregate identity, which is what
        ``state_from_sql`` yields for an all-NULL row too.

        ``parallelism`` is ignored: one statement is already the
        fastest path, and sqlite3 connections are not shareable across
        threads anyway.
        """
        coords_batch = [tuple(int(c) for c in coords) for coords in coords_list]
        if not coords_batch:
            return []
        dims = space.dims
        if not dims:
            return super().execute_cells(prepared, space, coords_batch)
        max_coords = [
            max(coords[d] for coords in coords_batch)
            for d in range(len(dims))
        ]
        grouped = self._grouped_cell_states(prepared, space, max_coords)
        self._count_batch(len(coords_batch))
        identity = prepared.query.constraint.spec.aggregate.identity()
        return [grouped.get(coords, identity) for coords in coords_batch]

    def execute_grid(
        self, prepared: _SQLitePrepared, space: RefinedSpace
    ) -> np.ndarray:
        """Native grid materialization: one ``GROUP BY`` over the full
        grid's bucket expressions.

        The same CASE-ladder statement the batched path issues, with the
        ladders spanning every level of each dimension's extent; the
        grouped states are scattered into the identity-filled tensor.
        """
        dims = space.dims
        if not dims:
            return super().execute_grid(prepared, space)
        aggregate = prepared.query.constraint.spec.aggregate
        grouped = self._grouped_cell_states(
            prepared, space, list(space.max_coords)
        )
        with self._timed():
            tensor = grid_identity_tensor(space, aggregate)
            max_coords = space.max_coords
            for cell, state in grouped.items():
                if all(c <= m for c, m in zip(cell, max_coords)):
                    tensor[cell] = state
        cells = int(np.prod(tensor.shape[:-1], dtype=np.int64))
        self._count_grid(cells)
        return tensor

    def execute_grid_tile(
        self,
        prepared: _SQLitePrepared,
        space: RefinedSpace,
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> np.ndarray:
        """Native tile materialization: one bounded ``GROUP BY``.

        The same CASE-ladder statement as :meth:`execute_grid` with the
        ladders spanning only levels ``lo..hi`` per dimension and the
        WHERE clause excluding tuples already admitted below ``lo``
        (their minimal coordinate belongs to another tile), so each
        group is exactly the annulus a serial cell query would see.
        """
        from repro.engine.backends import _check_tile_bounds

        lo, hi = _check_tile_bounds(space, lo, hi)
        dims = space.dims
        if not dims:
            return super().execute_grid_tile(prepared, space, lo, hi)
        aggregate = prepared.query.constraint.spec.aggregate
        grouped = self._grouped_cell_states(
            prepared, space, list(hi), min_coords=list(lo)
        )
        with self._timed():
            tensor = grid_identity_tensor(space, aggregate, lo, hi)
            for cell, state in grouped.items():
                if all(l <= c <= h for c, l, h in zip(cell, lo, hi)):
                    tensor[tuple(c - l for c, l in zip(cell, lo))] = state
        cells = int(np.prod(tensor.shape[:-1], dtype=np.int64))
        self._count_grid(cells, tile=True)
        return tensor

    def _grouped_cell_states(
        self,
        prepared: _SQLitePrepared,
        space: RefinedSpace,
        max_coords: Sequence[int],
        min_coords: Optional[Sequence[int]] = None,
    ) -> dict[tuple[int, ...], AggState]:
        """One ``GROUP BY`` statement bucketing tuples into grid cells.

        Each dimension gets a CASE ladder over the same
        ``sql_condition`` thresholds the serial annulus uses; the first
        (smallest) matching level is the tuple's minimal refinement
        coordinate, so grouping by the ladders buckets tuples exactly
        as per-cell round trips would. Cells absent from the result are
        empty; their state is the aggregate identity.

        ``min_coords`` restricts the bucketing to the box
        ``[min_coords, max_coords]``: ladders start at the lower bound
        and tuples admitted at level ``min_coords[d] - 1`` (minimal
        coordinate below the box) are filtered out, so the first
        matching level is still each tuple's true minimal coordinate.
        """
        dims = space.dims
        spec = prepared.query.constraint.spec
        step = space.step
        if min_coords is None:
            min_coords = [0] * len(dims)
        aliases = [f"cell_b{d}" for d in range(len(dims))]
        bucket_exprs = []
        for d, predicate in enumerate(dims):
            ladder = " ".join(
                f"WHEN {predicate.sql_condition(level * step)} THEN {level}"
                for level in range(min_coords[d], max_coords[d] + 1)
            )
            bucket_exprs.append(f"CASE {ladder} ELSE -1 END")
        conditions = list(prepared.fixed_sql)
        for d, predicate in enumerate(dims):
            conditions.append(predicate.sql_condition(max_coords[d] * step))
            if min_coords[d] > 0:
                below = predicate.sql_condition((min_coords[d] - 1) * step)
                conditions.append(f"NOT ({below})")
        where = " AND ".join(f"({c})" for c in conditions) or "1=1"
        attribute_sql = (
            spec.attribute.to_sql() if spec.attribute is not None else None
        )
        agg_selects = spec.aggregate.sql_selects(attribute_sql)
        select_items = ", ".join(
            [
                f"({expr}) AS {alias}"
                for expr, alias in zip(bucket_exprs, aliases)
            ]
            + agg_selects
        )
        sql = (
            f"SELECT {select_items} FROM {prepared.from_sql} "
            f"WHERE {where} GROUP BY {', '.join(aliases)}"
        )
        cursor = self._cursor()
        with self._timed():
            fetched = cursor.execute(sql).fetchall()
        grouped: dict[tuple[int, ...], AggState] = {}
        for row in fetched:
            key = tuple(int(value) for value in row[: len(dims)])
            grouped[key] = spec.aggregate.state_from_sql(
                tuple(row[len(dims):])
            )
        return grouped

    def execute_box(
        self, prepared: _SQLitePrepared, scores: Sequence[float]
    ) -> AggState:
        dims = prepared.query.refinable_predicates
        if len(scores) != len(dims):
            raise EngineError(
                f"box arity {len(scores)} != dimensionality {len(dims)}"
            )
        conditions = list(prepared.fixed_sql)
        for predicate, score in zip(dims, scores):
            conditions.append(predicate.sql_condition(score))
        return self._run_aggregate(prepared, conditions, "box")

    def fetch_rows(
        self,
        prepared: _SQLitePrepared,
        scores: Sequence[float],
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Materialize tuples admitted by a refined query via SQL."""
        dims = prepared.query.refinable_predicates
        conditions = list(prepared.fixed_sql)
        for predicate, score in zip(dims, scores):
            conditions.append(predicate.sql_condition(score))
        where = " AND ".join(f"({c})" for c in conditions) or "1=1"
        select_items = []
        keys = []
        for table_name in prepared.query.tables:
            table = self.database.table(table_name)
            for column in table.schema.column_names:
                keys.append(f"{table_name}.{column}")
                select_items.append(
                    f'{table_name}.{column} AS "{table_name}.{column}"'
                )
        sql = (
            f"SELECT {', '.join(select_items)} "
            f"FROM {prepared.from_sql} WHERE {where}"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        cursor = self._cursor()
        with self._timed():
            fetched = cursor.execute(sql).fetchall()
        self._count_query("box")
        return [dict(zip(keys, row)) for row in fetched]

    # ------------------------------------------------------------------
    # Top-k baseline support
    # ------------------------------------------------------------------
    def topk_admission(self, prepared: _SQLitePrepared, k: int) -> TopKAdmission:
        """The paper's Top-k rewrite: ORDER BY refinement distance LIMIT k."""
        dims = prepared.query.refinable_predicates
        need_exprs = [_need_sql(predicate) for predicate in dims]
        total = (
            " + ".join(
                f"{predicate.weight!r} * ({need})"
                for predicate, need in zip(dims, need_exprs)
            )
            or "0"
        )
        conditions = list(prepared.fixed_sql)
        for predicate, cap in zip(dims, prepared.dim_caps):
            admissible = _admissible_sql(predicate, cap)
            if admissible:
                conditions.append(admissible)
        where = " AND ".join(f"({c})" for c in conditions) or "1=1"
        inner_selects = ", ".join(
            f"({need}) AS need_{index}" for index, need in enumerate(need_exprs)
        )
        outer_selects = ", ".join(
            ["COUNT(*)"] + [f"MAX(need_{index})" for index in range(len(dims))]
        )
        sql = (
            f"SELECT {outer_selects} FROM ("
            f"SELECT {inner_selects} FROM {prepared.from_sql} "
            f"WHERE {where} ORDER BY ({total}) LIMIT {int(k)})"
        )
        cursor = self._cursor()
        with self._timed():
            row = cursor.execute(sql).fetchone()
        self._count_query("box")
        admitted = int(row[0])
        max_scores = tuple(
            0.0 if value is None else float(value) for value in row[1:]
        )
        return TopKAdmission(admitted=admitted, max_scores=max_scores)


# ----------------------------------------------------------------------
# SQL fragments
# ----------------------------------------------------------------------
def _need_sql(predicate: Predicate) -> str:
    """SQL for a tuple's expansion need (clamped-at-zero PScore)."""
    if isinstance(predicate, SelectPredicate):
        expr = predicate.expr.to_sql()
        scale = 100.0 / predicate.effective_denominator
        if predicate.direction is Direction.UPPER:
            hi = predicate.interval.hi
            return (
                f"CASE WHEN {expr} <= {hi!r} THEN 0.0 "
                f"ELSE ({expr} - {hi!r}) * {scale!r} END"
            )
        if predicate.direction is Direction.LOWER:
            lo = predicate.interval.lo
            return (
                f"CASE WHEN {expr} >= {lo!r} THEN 0.0 "
                f"ELSE ({lo!r} - {expr}) * {scale!r} END"
            )
        center = predicate.interval.lo
        return f"ABS({expr} - {center!r}) * {scale!r}"
    if isinstance(predicate, JoinPredicate):
        delta = predicate.delta_sql()
        scale = 100.0 / predicate.denominator
        return (
            f"CASE WHEN {delta} <= {predicate.tolerance!r} THEN 0.0 "
            f"ELSE ({delta} - {predicate.tolerance!r}) * {scale!r} END"
        )
    # Categorical: a CASE ladder over roll-up levels.
    assert isinstance(predicate, CategoricalPredicate)
    column = predicate.column.to_sql()
    clauses = []
    previous: frozenset[str] = frozenset()
    for level in range(predicate.ontology.depth + 1):
        covered = predicate.ontology.expand(predicate.accepted, level)
        fresh = covered - previous
        previous = covered
        if not fresh:
            continue
        in_list = ", ".join(
            "'" + value.replace("'", "''") + "'" for value in sorted(fresh)
        )
        clauses.append(
            f"WHEN {column} IN ({in_list}) "
            f"THEN {level * predicate.level_scale!r}"
        )
    return "CASE " + " ".join(clauses) + " ELSE 1e18 END"


def _admissible_sql(predicate: Predicate, cap: float) -> str | None:
    """Filter for tuples admissible within the dimension cap."""
    if isinstance(predicate, SelectPredicate):
        outer = predicate.interval_at(cap if predicate.refinable else 0.0)
        expr = predicate.expr.to_sql()
        parts = []
        if math.isfinite(outer.lo):
            parts.append(f"{expr} >= {outer.lo!r}")
        if math.isfinite(outer.hi):
            parts.append(f"{expr} <= {outer.hi!r}")
        return " AND ".join(parts) if parts else None
    if isinstance(predicate, JoinPredicate):
        band = predicate.band_at(cap if predicate.refinable else 0.0)
        if band == 0:
            return f"{predicate.left.to_sql()} = {predicate.right.to_sql()}"
        return f"{predicate.delta_sql()} <= {band!r}"
    assert isinstance(predicate, CategoricalPredicate)
    return predicate.sql_condition(cap if predicate.refinable else 0.0)


def _predicate_columns(predicate: Predicate) -> set[str]:
    if isinstance(predicate, SelectPredicate):
        return predicate.expr.columns()
    if isinstance(predicate, JoinPredicate):
        return predicate.left.columns() | predicate.right.columns()
    return predicate.column.columns()
