"""Shared SQLite plumbing for the engine layer.

The :mod:`sqlite3` standard-library module is an evaluation-layer
implementation detail: the repo invariant (enforced by
engine lint, EL302) is that only ``repro.engine`` imports it.
Code elsewhere that needs a SQLite file as a storage substrate — e.g.
the paged sub-aggregate store — goes through this seam instead.
"""

from __future__ import annotations

import sqlite3

Connection = sqlite3.Connection
Cursor = sqlite3.Cursor


def connect(path: str) -> sqlite3.Connection:
    """Open a SQLite database at ``path`` (``":memory:"`` works too)."""
    return sqlite3.connect(path)
