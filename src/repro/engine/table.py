"""Columnar in-memory table.

Rows are stored column-wise in numpy arrays; all filter and aggregate
work in the memory backend operates on these arrays directly. This is
the storage substrate underneath the paper's "evaluation layer".
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.engine.schema import Column, ColumnType, TableSchema
from repro.exceptions import SchemaError, UnknownColumnError


class Table:
    """An immutable-after-load columnar table.

    Construction paths:

    * ``Table(schema)`` then :meth:`load_rows` / :meth:`load_columns`.
    * :meth:`from_columns` for the common dict-of-arrays case.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {
            column.name: np.empty(0, dtype=column.ctype.numpy_dtype)
            for column in schema.columns
        }
        self._nrows = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls, name: str, columns: Mapping[str, Sequence[Any] | np.ndarray]
    ) -> Table:
        """Build a table by inferring a schema from column data.

        Integer arrays become INT columns, floating arrays FLOAT, and
        anything else STR.
        """
        schema_columns = []
        arrays: dict[str, np.ndarray] = {}
        for cname, values in columns.items():
            array = np.asarray(values)
            if np.issubdtype(array.dtype, np.integer):
                ctype = ColumnType.INT
            elif np.issubdtype(array.dtype, np.floating):
                ctype = ColumnType.FLOAT
            else:
                ctype = ColumnType.STR
                array = array.astype(object)
            schema_columns.append(Column(cname, ctype))
            arrays[cname] = array.astype(ctype.numpy_dtype)
        table = cls(TableSchema(name, schema_columns))
        table.load_columns(arrays)
        return table

    def load_columns(self, columns: Mapping[str, Sequence[Any] | np.ndarray]) -> None:
        """Replace the table contents with the given column arrays."""
        missing = set(self.schema.column_names) - set(columns)
        if missing:
            raise SchemaError(f"missing columns on load: {sorted(missing)}")
        extra = set(columns) - set(self.schema.column_names)
        if extra:
            raise SchemaError(f"unexpected columns on load: {sorted(extra)}")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged column lengths: {sorted(lengths)}")
        for column in self.schema.columns:
            array = np.asarray(columns[column.name])
            self._columns[column.name] = array.astype(column.ctype.numpy_dtype)
        self._nrows = lengths.pop() if lengths else 0

    def load_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Load row tuples ordered as in the schema."""
        materialized = list(rows)
        names = self.schema.column_names
        if materialized and len(materialized[0]) != len(names):
            raise SchemaError(
                f"row arity {len(materialized[0])} != schema arity {len(names)}"
            )
        columns = {
            name: [row[index] for row in materialized]
            for index, name in enumerate(names)
        }
        self.load_columns(columns)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def nrows(self) -> int:
        return self._nrows

    def __len__(self) -> int:
        return self._nrows

    def column(self, name: str) -> np.ndarray:
        """The full column array (shared, do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise UnknownColumnError(name, self.name) from None

    def row(self, index: int) -> dict[str, Any]:
        """Materialize a single row as a dict (for debugging/tests)."""
        return {name: self._columns[name][index] for name in self.schema.column_names}

    def iter_rows(self) -> Iterable[tuple[Any, ...]]:
        """Yield rows as tuples in schema column order."""
        arrays = [self._columns[name] for name in self.schema.column_names]
        for index in range(self._nrows):
            yield tuple(array[index] for array in arrays)

    def select(self, mask: np.ndarray) -> Table:
        """Return a new table with only the rows where ``mask`` is True."""
        result = Table(self.schema)
        result.load_columns(
            {name: array[mask] for name, array in self._columns.items()}
        )
        return result

    def take(self, indices: np.ndarray) -> dict[str, np.ndarray]:
        """Gather rows by position, returned as bare column arrays."""
        return {name: array[indices] for name, array in self._columns.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._nrows}, cols={len(self.schema)})"
