"""Sampling-based estimation layer.

The paper (section 3) notes ACQUIRE's evaluation layer "can be replaced
with other techniques such as estimation, and/or sampling", and its
experiments include a 1k-tuple dataset "to mimic a sample based
approach" (section 8.4.3). This wrapper makes that substitution a
first-class citizen: it Bernoulli-samples every table once, delegates
all execution to an inner evaluation layer over the sample, and scales
extensive aggregates (COUNT, SUM, and AVG's numerator/denominator)
back up by the inverse sampling fraction. MIN/MAX are reported
unscaled (they are not extensive; sampling only narrows their range).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.aggregates import AggState
from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer, TopKAdmission
from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.exceptions import EngineError

#: Aggregates whose states scale linearly with the sampling fraction.
_EXTENSIVE = {"COUNT", "SUM", "AVG"}


def sample_database(
    database: Database,
    fraction: float,
    seed: int = 0,
    tables: Optional[Sequence[str]] = None,
) -> Database:
    """Bernoulli-sample a database.

    ``tables`` restricts sampling to the named tables (the others are
    copied whole). For join queries this is essential: independently
    sampling both sides of a foreign key destroys almost every matching
    pair (the classic join-synopsis problem), so the standard practice
    — sample the fact table, keep dimensions intact — is the default
    recommendation for star-shaped ACQs.
    """
    if not 0 < fraction <= 1:
        raise EngineError(f"sampling fraction must be in (0, 1], got {fraction}")
    to_sample = set(tables) if tables is not None else set(
        database.table_names
    )
    unknown = to_sample - set(database.table_names)
    if unknown:
        raise EngineError(f"cannot sample unknown tables: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    sampled = Database(f"{database.name}_sample")
    for table in database:
        if table.name in to_sample:
            mask = rng.random(len(table)) < fraction
        else:
            mask = np.ones(len(table), dtype=bool)
        sampled.add_table(
            Table.from_columns(
                table.name,
                {
                    name: table.column(name)[mask]
                    for name in table.schema.column_names
                },
            )
        )
    return sampled


class SamplingBackend(EvaluationLayer):
    """Estimation layer: run on a sample, scale results back up."""

    def __init__(
        self,
        database: Database,
        fraction: float,
        seed: int = 0,
        backend_factory: Optional[Callable[[Database], EvaluationLayer]] = None,
        tables: Optional[Sequence[str]] = None,
        presampled: bool = False,
    ) -> None:
        super().__init__()
        self._default_factory = backend_factory is None
        if backend_factory is None:
            from repro.engine.memory_backend import MemoryBackend

            backend_factory = MemoryBackend
        self.fraction = float(fraction)
        self.sampled_tables = (
            frozenset(tables) if tables is not None
            else frozenset(database.table_names)
        )
        if presampled:
            # ``database`` already *is* the sample (the process tier
            # ships sampled tables so workers reproduce the parent's
            # draw exactly); only the scale factor is reconstructed.
            if not 0 < self.fraction <= 1:
                raise EngineError(
                    "sampling fraction must be in (0, 1], got "
                    f"{self.fraction}"
                )
            self.sampled_database = database
        else:
            self.sampled_database = sample_database(
                database, fraction, seed, tables
            )
        self._inner = backend_factory(self.sampled_database)

    @property
    def parallel_tile_scaling(self) -> bool:  # type: ignore[override]
        """Thread-tier scaling is the inner layer's property."""
        return bool(getattr(self._inner, "parallel_tile_scaling", False))

    def backend_spec(self, prepared):
        """Process-tier recipe: ship the *sampled* tables presampled.

        Only available with the default (memory) inner factory — a
        custom ``backend_factory`` callable is not picklable, so those
        layers stay on the thread tier.
        """
        if not self._default_factory:
            return None
        from repro.core.tile_worker import BackendSpec, database_tables

        return BackendSpec(
            factory="repro.engine.sampling:SamplingBackend",
            tables=database_tables(self.sampled_database),
            kwargs={
                "fraction": self.fraction,
                "tables": sorted(self.sampled_tables),
                "presampled": True,
            },
            query=prepared.query,
            dim_caps=tuple(prepared.dim_caps),
            database_name=self.sampled_database.name,
        )

    def persistent_cache_key(self) -> tuple:
        from repro.core.grid_cache import database_digest

        # The sampled database digest captures fraction/seed/tables
        # (different draws differ in content); the inner class matters
        # because it executes the sampled queries.
        return (
            "SamplingBackend",
            type(self._inner).__name__,
            database_digest(self.sampled_database),
        )

    def close(self) -> None:
        self._inner.close()
        super().close()

    # Delegate stats to the inner layer so instrumentation is unified.
    @property
    def stats(self):  # type: ignore[override]
        return self._inner.stats

    @stats.setter
    def stats(self, value) -> None:
        # The base-class __init__ assigns a fresh stats object before
        # _inner exists; ignore it and keep delegating afterwards.
        if hasattr(self, "_inner"):
            self._inner.stats = value

    def reset_stats(self) -> None:
        self._inner.reset_stats()

    # ------------------------------------------------------------------
    def prepare(
        self, query: Query, dim_caps: Optional[Sequence[float]] = None
    ):
        return self._inner.prepare(query, dim_caps)

    def useful_max_scores(self, prepared) -> list[float]:
        return self._inner.useful_max_scores(prepared)

    def _scale(self, query: Query, state: AggState) -> AggState:
        aggregate = query.constraint.spec.aggregate
        if aggregate.name not in _EXTENSIVE:
            return state
        # Sampled tables thin the result independently, so the
        # join/cross result scales by the product of the fractions of
        # the *sampled* tables referenced by the query.
        sampled = sum(
            1 for table in query.tables if table in self.sampled_tables
        )
        factor = self.fraction ** sampled
        if factor == 0:
            return state
        return tuple(value / factor for value in state)

    def execute_cell(self, prepared, space: RefinedSpace, coords) -> AggState:
        state = self._inner.execute_cell(prepared, space, coords)
        return self._scale(prepared.query, state)

    def execute_cells(
        self, prepared, space: RefinedSpace, coords_list, parallelism: int = 1
    ) -> list[AggState]:
        """Delegate the batch to the inner layer, then scale each state."""
        states = self._inner.execute_cells(
            prepared, space, coords_list, parallelism=parallelism
        )
        return [self._scale(prepared.query, state) for state in states]

    def execute_grid(self, prepared, space: RefinedSpace) -> np.ndarray:
        """Delegate grid materialization, then rescale the tensor.

        The elementwise ``tensor / factor`` applies the exact division
        :meth:`_scale` performs per state component, so the rescaled
        grid is bit-identical to scaling each cell individually.
        """
        tensor = self._inner.execute_grid(prepared, space)
        aggregate = prepared.query.constraint.spec.aggregate
        if aggregate.name not in _EXTENSIVE:
            return tensor
        sampled = sum(
            1 for table in prepared.query.tables
            if table in self.sampled_tables
        )
        factor = self.fraction ** sampled
        if factor == 0:
            return tensor
        return tensor / factor

    def execute_grid_tile(self, prepared, space, lo, hi) -> np.ndarray:
        """Delegate tile materialization, then rescale like
        :meth:`execute_grid` — the same elementwise division keeps the
        tile bit-identical to the rescaled full grid's ``[lo, hi]``
        box."""
        tensor = self._inner.execute_grid_tile(prepared, space, lo, hi)
        aggregate = prepared.query.constraint.spec.aggregate
        if aggregate.name not in _EXTENSIVE:
            return tensor
        sampled = sum(
            1 for table in prepared.query.tables
            if table in self.sampled_tables
        )
        factor = self.fraction ** sampled
        if factor == 0:
            return tensor
        return tensor / factor

    def execute_box(self, prepared, scores) -> AggState:
        state = self._inner.execute_box(prepared, scores)
        return self._scale(prepared.query, state)

    def topk_admission(self, prepared, k: int) -> TopKAdmission:
        scaled_k = max(int(round(k * self.fraction)), 1)
        admission = self._inner.topk_admission(prepared, scaled_k)
        return TopKAdmission(
            admitted=min(int(round(admission.admitted / self.fraction)), k),
            max_scores=admission.max_scores,
        )
