"""Database catalog: named tables plus their statistics."""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.engine.statistics import ColumnStats, TableStats
from repro.engine.table import Table
from repro.exceptions import SchemaError, UnknownTableError


class Database:
    """A collection of named tables with per-column statistics.

    This is the catalog both evaluation layers and the SQL binder work
    against. Tables are registered once; statistics are computed lazily
    and cached.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        self._stats[table.name] = TableStats(table)
        return table

    def create_table(
        self, name: str, columns: Mapping[str, Sequence[Any] | np.ndarray]
    ) -> Table:
        """Build a table from column data and register it."""
        return self.add_table(Table.from_columns(name, columns))

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name]
        del self._stats[name]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def stats(self, table_name: str) -> TableStats:
        if table_name not in self._stats:
            raise UnknownTableError(table_name)
        return self._stats[table_name]

    def column_stats(self, table_name: str, column_name: str) -> ColumnStats:
        return self.stats(table_name).column(column_name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {name: len(table) for name, table in self._tables.items()}
        return f"Database({self.name!r}, tables={sizes})"
