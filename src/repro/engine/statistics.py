"""Per-column statistics used to bound refinement.

ACQUIRE's refined space is finite in practice because expanding a
predicate past the attribute's observed domain admits no new tuples.
The catalog keeps cheap min/max/ndv statistics plus an equi-width
histogram per numeric column; the workload generator also uses the
histograms to place predicate bounds at chosen selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.schema import ColumnType
from repro.engine.table import Table

_DEFAULT_BINS = 64


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for a single numeric column.

    ``total`` is the sum of every value in the column — the maximum
    achievable SUM over any (single-table) refined query when values
    are non-negative, which is what the static analyzer's
    satisfiability pass bounds against.
    """

    name: str
    min_value: float
    max_value: float
    ndv: int
    count: int
    histogram: np.ndarray
    bin_edges: np.ndarray
    total: float = 0.0

    @property
    def width(self) -> float:
        return self.max_value - self.min_value

    def quantile_value(self, fraction: float) -> float:
        """Approximate value at the given cumulative fraction of rows.

        Uses the histogram, which is all the workload generator needs
        to place a predicate bound at a target selectivity.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        cumulative = np.cumsum(self.histogram)
        total = cumulative[-1] if len(cumulative) else 0
        if total == 0:
            return self.min_value
        target = fraction * total
        bin_index = int(np.searchsorted(cumulative, target, side="left"))
        bin_index = min(bin_index, len(self.histogram) - 1)
        prev = cumulative[bin_index - 1] if bin_index > 0 else 0
        in_bin = self.histogram[bin_index]
        left = self.bin_edges[bin_index]
        right = self.bin_edges[bin_index + 1]
        if in_bin == 0:
            return float(left)
        offset = (target - prev) / in_bin
        return float(left + offset * (right - left))

    def selectivity_below(self, value: float) -> float:
        """Approximate fraction of rows with column <= value."""
        if self.count == 0:
            return 0.0
        if value <= self.min_value:
            return 0.0
        if value >= self.max_value:
            return 1.0
        bin_index = int(
            np.searchsorted(self.bin_edges, value, side="right") - 1
        )
        bin_index = min(max(bin_index, 0), len(self.histogram) - 1)
        below = float(np.sum(self.histogram[:bin_index]))
        left = self.bin_edges[bin_index]
        right = self.bin_edges[bin_index + 1]
        if right > left:
            below += self.histogram[bin_index] * (value - left) / (right - left)
        return below / self.count


class TableStats:
    """Lazily-computed statistics for every numeric column of a table."""

    def __init__(self, table: Table, bins: int = _DEFAULT_BINS) -> None:
        self._table = table
        self._bins = bins
        self._cache: dict[str, ColumnStats] = {}

    def column(self, name: str) -> ColumnStats:
        if name not in self._cache:
            self._cache[name] = self._compute(name)
        return self._cache[name]

    def _compute(self, name: str) -> ColumnStats:
        column_def = self._table.schema.column(name)
        values = self._table.column(name)
        if column_def.ctype is ColumnType.STR:
            # Strings get degenerate stats; ontology predicates never
            # consult numeric bounds.
            unique = len(set(values.tolist()))
            return ColumnStats(
                name=name,
                min_value=float("nan"),
                max_value=float("nan"),
                ndv=unique,
                count=len(values),
                histogram=np.zeros(1, dtype=np.int64),
                bin_edges=np.array([0.0, 1.0]),
                total=float("nan"),
            )
        if len(values) == 0:
            return ColumnStats(
                name=name,
                min_value=0.0,
                max_value=0.0,
                ndv=0,
                count=0,
                histogram=np.zeros(self._bins, dtype=np.int64),
                bin_edges=np.linspace(0.0, 1.0, self._bins + 1),
                total=0.0,
            )
        numeric = values.astype(np.float64)
        low = float(np.min(numeric))
        high = float(np.max(numeric))
        # Degenerate or subnormal ranges cannot be split into finite
        # bins; widen to a unit interval (the stats stay exact).
        if high == low or (high - low) / self._bins == 0.0:
            high = low + 1.0
        histogram, edges = np.histogram(numeric, bins=self._bins, range=(low, high))
        return ColumnStats(
            name=name,
            min_value=float(np.min(numeric)),
            max_value=float(np.max(numeric)),
            ndv=int(len(np.unique(numeric))),
            count=len(values),
            histogram=histogram.astype(np.int64),
            bin_edges=edges,
            total=float(np.sum(numeric)),
        )
