"""ACQ SQL dialect (paper section 2.1).

Two keywords extend plain SQL: ``CONSTRAINT AGG(attr) Op X`` states the
aggregate constraint and ``NOREFINE`` pins a predicate. Example (the
paper's Q2')::

    SELECT * FROM supplier, part, partsupp
    CONSTRAINT SUM(ps_availqty) >= 0.1M
    WHERE (s_suppkey = ps_suppkey) NOREFINE AND
          (p_partkey = ps_partkey) NOREFINE AND
          (p_retailprice < 1000) AND (s_acctbal < 2000) AND
          (p_size = 10) NOREFINE AND
          (p_type = 'SMALL BURNISHED STEEL') NOREFINE

:func:`parse_acq` turns dialect text into a bound
:class:`repro.core.query.Query`; :func:`format_query` renders it back;
:func:`format_refined_query` renders an ACQUIRE answer as the plain SQL
a user would run.
"""

from repro.sqlext.parser import parse_statement
from repro.sqlext.binder import (
    QuerySpans,
    bind_statement,
    bind_with_spans,
    parse_acq,
)
from repro.sqlext.formatter import format_query, format_refined_query

__all__ = [
    "QuerySpans",
    "parse_statement",
    "bind_statement",
    "bind_with_spans",
    "parse_acq",
    "format_query",
    "format_refined_query",
]
