"""Bind parsed ACQ statements to the catalog, producing core queries.

Binding performs the paper's section 2.2 decomposition:

* each numeric condition becomes a predicate function + interval, with
  the interval's anchored side taken from catalog statistics ("if the
  minimum value of B.y is 0, the predicate (B.y < 50) is decomposed
  into P_F = B.y and P_I = (0, 50)");
* range conditions (``10 < y < 50`` or BETWEEN) are rewritten into two
  one-sided predicates so either side refines independently;
* cross-table equalities become (refinable) equi-join predicates with
  the denominator-100 convention; other cross-table comparisons become
  one-sided predicates over the difference expression;
* string equality / IN on a string column becomes a categorical
  predicate, refined through an ontology tree (section 7.3) — an
  explicitly supplied one, or a flat fallback built from the column's
  distinct values (which can only relax to "any value");
* the CONSTRAINT clause binds to an OSP aggregate (section 2.6),
  rejecting STDDEV and friends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.ontology import OntologyTree
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine import expression as engine_expr
from repro.engine.catalog import Database
from repro.engine.schema import ColumnType
from repro.exceptions import BindError, OSPViolationError, QueryModelError
from repro.sqlext import ast
from repro.sqlext.parser import parse_statement


@dataclass(frozen=True)
class QuerySpans:
    """Source locations of the bound query's parts.

    Maps each bound predicate's name (and the constraint) back to the
    ``(start, end)`` character span of the SQL text it came from, so the
    static analyzer can point diagnostics at the offending clause. Every
    predicate produced from one conjunct shares that conjunct's span
    (a range condition binds to two predicates, for instance).
    """

    source: Optional[str] = None
    constraint: Optional[ast.Span] = None
    predicates: Mapping[str, ast.Span] = field(default_factory=dict)
    extra_constraints: tuple[Optional[ast.Span], ...] = ()

    def predicate_span(self, name: str) -> Optional[ast.Span]:
        return self.predicates.get(name)

    def constraint_span_at(self, index: int) -> Optional[ast.Span]:
        """Span of the index-th constraint (0 = the primary clause)."""
        if index == 0:
            return self.constraint
        if 0 < index <= len(self.extra_constraints):
            return self.extra_constraints[index - 1]
        return None


def parse_acq(
    text: str,
    database: Database,
    ontologies: Optional[Mapping[str, OntologyTree]] = None,
    name: str = "acq",
) -> Query:
    """Parse and bind ACQ dialect text in one call."""
    return bind_statement(parse_statement(text), database, ontologies, name)


def bind_statement(
    statement: ast.SelectStatement,
    database: Database,
    ontologies: Optional[Mapping[str, OntologyTree]] = None,
    name: str = "acq",
) -> Query:
    """Bind a parse tree against a catalog."""
    return _Binder(database, ontologies or {}).bind(statement, name)


def bind_with_spans(
    statement: ast.SelectStatement,
    database: Database,
    ontologies: Optional[Mapping[str, OntologyTree]] = None,
    name: str = "acq",
    source: Optional[str] = None,
) -> tuple[Query, QuerySpans]:
    """Bind a parse tree, also returning predicate/constraint spans."""
    binder = _Binder(database, ontologies or {})
    query = binder.bind(statement, name)
    constraint_span = (
        statement.constraint.span if statement.constraint is not None else None
    )
    return query, QuerySpans(
        source=source,
        constraint=constraint_span,
        predicates=dict(binder.spans),
        extra_constraints=tuple(
            clause.span for clause in statement.extra_constraints
        ),
    )


class _Binder:
    def __init__(
        self, database: Database, ontologies: Mapping[str, OntologyTree]
    ) -> None:
        self.database = database
        self.ontologies = ontologies
        self.tables: tuple[str, ...] = ()
        self.spans: dict[str, ast.Span] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def bind(self, statement: ast.SelectStatement, name: str) -> Query:
        for table in statement.tables:
            if not self.database.has_table(table):
                raise BindError(f"unknown table {table!r} in FROM clause")
        self.tables = statement.tables

        if statement.constraint is None:
            raise BindError(
                "an ACQ requires a CONSTRAINT clause "
                "(CONSTRAINT AGG(attr) Op X)"
            )
        constraint = self._bind_constraint(statement.constraint)
        extra_constraints = tuple(
            self._bind_constraint(clause)
            for clause in statement.extra_constraints
        )

        predicates: list[Predicate] = []
        for conjunct in statement.conjuncts:
            bound = self._bind_conjunct(conjunct)
            if conjunct.span is not None:
                for predicate in bound:
                    self.spans[predicate.name] = conjunct.span
            predicates.extend(bound)
        return Query.build(
            name, statement.tables, predicates, constraint, extra_constraints
        )

    # ------------------------------------------------------------------
    def _bind_constraint(
        self, clause: ast.ConstraintClause
    ) -> AggregateConstraint:
        # Unsupported aggregates and operators both surface as
        # BindError (naming the offender); OSP violations keep their
        # dedicated type so callers can distinguish "no such aggregate"
        # from "known but unsupported by ACQUIRE".
        try:
            aggregate = get_aggregate(clause.function)
        except OSPViolationError:
            raise
        except QueryModelError as exc:
            raise BindError(
                f"unsupported aggregate {clause.function!r} in CONSTRAINT "
                f"clause: {exc}"
            ) from exc
        attribute = None
        if clause.argument is not None:
            attribute = self._bind_expr(clause.argument)
        elif aggregate.needs_attribute:
            raise BindError(f"{aggregate.name} requires an attribute argument")
        spec = AggregateSpec(aggregate, attribute)
        try:
            op = ConstraintOp.parse(clause.op)
        except QueryModelError as exc:
            raise BindError(
                f"unsupported constraint operator {clause.op!r}: {exc}"
            ) from exc
        return AggregateConstraint(spec, op, clause.target)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _bind_conjunct(self, conjunct: ast.Conjunct) -> list[Predicate]:
        condition = conjunct.condition
        refinable = not conjunct.norefine
        if isinstance(condition, ast.InCondition):
            return [self._bind_in(condition, refinable)]
        if isinstance(condition, ast.RangeCondition):
            return self._bind_range(condition, refinable)
        return self._bind_comparison(condition, refinable)

    def _bind_comparison(
        self, condition: ast.Comparison, refinable: bool
    ) -> list[Predicate]:
        # String equality => categorical predicate.
        for left, right in (
            (condition.left, condition.right),
            (condition.right, condition.left),
        ):
            if isinstance(right, ast.StringLit) and isinstance(left, ast.ColRef):
                if condition.op != "=":
                    raise BindError(
                        "string predicates only support '=' and IN"
                    )
                return [
                    self._categorical(
                        left, frozenset({right.value}), refinable
                    )
                ]

        left = self._bind_expr(condition.left)
        right = self._bind_expr(condition.right)
        left_tables = left.tables()
        right_tables = right.tables()

        if left_tables and right_tables and left_tables != right_tables:
            # Cross-table condition.
            if condition.op == "=":
                return [
                    JoinPredicate(
                        name=self._name("join"),
                        left=left,
                        right=right,
                        refinable=refinable,
                    )
                ]
            # Non-equi cross-table comparison: one-sided predicate on
            # the difference expression (paper 2.2's Delta form).
            difference = engine_expr.BinaryOp("-", left, right)
            return [
                self._one_sided(
                    difference, condition.op, 0.0, refinable, compound=True
                )
            ]

        # Single-relation numeric condition: normalize to expr OP const.
        expr, op, bound = self._normalize(left, condition.op, right)
        if op == "=":
            return [
                SelectPredicate(
                    name=self._name("eq"),
                    expr=expr,
                    interval=Interval.point(bound),
                    direction=Direction.POINT,
                    refinable=refinable,
                )
            ]
        return [self._one_sided(expr, op, bound, refinable)]

    def _normalize(
        self,
        left: engine_expr.Expression,
        op: str,
        right: engine_expr.Expression,
    ) -> tuple[engine_expr.Expression, str, float]:
        """Rewrite so the column expression is on the left."""
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
        left_const = isinstance(left, engine_expr.Constant)
        right_const = isinstance(right, engine_expr.Constant)
        if left_const and right_const:
            raise BindError(
                "comparison between two constants is not a predicate"
            )
        if left_const:
            return right, flipped[op], float(left.value)
        if right_const:
            return left, op, float(right.value)
        raise BindError(
            "single-table comparisons must compare an expression "
            "against a constant"
        )

    def _one_sided(
        self,
        expr: engine_expr.Expression,
        op: str,
        bound: float,
        refinable: bool,
        compound: bool = False,
    ) -> SelectPredicate:
        """Build a one-sided select predicate anchored at the domain."""
        domain = self._expr_domain(expr) if not compound else None
        if op in ("<", "<="):
            low = domain.min_value if domain is not None else -math.inf
            low = min(low, bound)
            return SelectPredicate(
                name=self._name("le"),
                expr=expr,
                interval=Interval(low, bound),
                direction=Direction.UPPER,
                refinable=refinable,
            )
        if op in (">", ">="):
            high = domain.max_value if domain is not None else math.inf
            high = max(high, bound)
            return SelectPredicate(
                name=self._name("ge"),
                expr=expr,
                interval=Interval(bound, high),
                direction=Direction.LOWER,
                refinable=refinable,
            )
        raise BindError(f"unsupported comparison operator {op!r}")

    def _bind_range(
        self, condition: ast.RangeCondition, refinable: bool
    ) -> list[Predicate]:
        """Rewrite ``low <= expr <= high`` as two one-sided predicates
        (paper section 2.2) so each side refines independently."""
        expr = self._bind_expr(condition.expr)
        low = self._constant(condition.low, "range lower bound")
        high = self._constant(condition.high, "range upper bound")
        if low > high:
            raise BindError(f"empty range: {low} > {high}")
        lower_pred = self._one_sided(expr, ">=", low, refinable)
        upper_pred = self._one_sided(expr, "<=", high, refinable)
        return [lower_pred, upper_pred]

    def _bind_in(
        self, condition: ast.InCondition, refinable: bool
    ) -> Predicate:
        values = []
        for node in condition.values:
            if not isinstance(node, ast.StringLit):
                raise BindError(
                    "IN lists support string values only (numeric IN "
                    "does not define a refinement direction)"
                )
            values.append(node.value)
        return self._categorical(
            condition.column, frozenset(values), refinable
        )

    def _categorical(
        self, column_node: ast.ColRef, accepted: frozenset[str], refinable: bool
    ) -> CategoricalPredicate:
        column = self._resolve_column(column_node)
        table = self.database.table(column.table)
        if table.schema.column(column.column).ctype is not ColumnType.STR:
            raise BindError(
                f"categorical predicate on non-string column "
                f"{column.to_sql()!r}"
            )
        ontology = self.ontologies.get(
            f"{column.table}.{column.column}"
        ) or self.ontologies.get(column.column)
        if ontology is None:
            ontology = self._flat_ontology(column)
        for value in accepted:
            if value not in ontology:
                raise BindError(
                    f"value {value!r} not present in the ontology for "
                    f"{column.to_sql()}"
                )
        return CategoricalPredicate(
            name=self._name("cat"),
            column=column,
            accepted=accepted,
            ontology=ontology,
            refinable=refinable,
        )

    def _flat_ontology(self, column: engine_expr.ColumnRef) -> OntologyTree:
        """Depth-1 fallback: one roll-up step relaxes to 'any value'."""
        tree = OntologyTree(root=f"any_{column.column}")
        table = self.database.table(column.table)
        for value in sorted(set(table.column(column.column).tolist())):
            tree.add_edge(tree.root, str(value))
        return tree

    # ------------------------------------------------------------------
    # Expressions and names
    # ------------------------------------------------------------------
    def _bind_expr(self, node: ast.ExprNode) -> engine_expr.Expression:
        if isinstance(node, ast.NumberLit):
            return engine_expr.Constant(node.value)
        if isinstance(node, ast.StringLit):
            raise BindError(
                f"string literal {node.value!r} in numeric context"
            )
        if isinstance(node, ast.ColRef):
            return self._resolve_column(node)
        if isinstance(node, ast.BinOp):
            return engine_expr.BinaryOp(
                node.op, self._bind_expr(node.left), self._bind_expr(node.right)
            )
        if isinstance(node, ast.AbsCall):
            return engine_expr.Abs(self._bind_expr(node.operand))
        raise BindError(f"cannot bind expression node {node!r}")

    def _resolve_column(self, node: ast.ColRef) -> engine_expr.ColumnRef:
        if node.table is not None:
            if node.table not in self.tables:
                raise BindError(
                    f"table {node.table!r} (in {node.display()}) "
                    "is not in the FROM clause"
                )
            if not self.database.table(node.table).schema.has_column(
                node.column
            ):
                raise BindError(f"unknown column {node.display()!r}")
            return engine_expr.ColumnRef(node.table, node.column)
        owners = [
            table
            for table in self.tables
            if self.database.table(table).schema.has_column(node.column)
        ]
        if not owners:
            raise BindError(f"unknown column {node.column!r}")
        if len(owners) > 1:
            raise BindError(
                f"ambiguous column {node.column!r} "
                f"(in tables {', '.join(owners)})"
            )
        return engine_expr.ColumnRef(owners[0], node.column)

    def _constant(self, node: ast.ExprNode, what: str) -> float:
        bound = self._bind_expr(node)
        if not isinstance(bound, engine_expr.Constant):
            raise BindError(f"{what} must be a numeric constant")
        return float(bound.value)

    def _expr_domain(self, expr: engine_expr.Expression):
        """Column statistics when the expression is a bare column."""
        if isinstance(expr, engine_expr.ColumnRef):
            return self.database.column_stats(expr.table, expr.column)
        return None

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"
