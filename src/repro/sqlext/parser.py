"""Recursive-descent parser for the ACQ SQL dialect.

Grammar (informal)::

    statement  := SELECT projection FROM tables [constraint] [WHERE conj]
    projection := '*' | ident (',' ident)*
    tables     := ident (',' ident)*
    constraint := CONSTRAINT acqc (AND acqc)*
    acqc       := ident '(' ('*' | expr) ')' cmp NUMBER
    conj       := conjunct (AND conjunct)*
    conjunct   := ['('] condition [')'] [NOREFINE]
    condition  := expr cmp expr [cmp expr]          -- chained = range
                | expr BETWEEN expr AND expr
                | colref IN '(' literal (',' literal)* ')'
    expr       := term (('+'|'-') term)*
    term       := unary (('*'|'/') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | STRING | colref | '(' expr ')' | ABS '(' expr ')'
    colref     := ident ['.' ident]

Numeric literals accept the K/M/B magnitude suffixes the paper uses
(``COUNT(*) = 1M``).
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.sqlext import ast
from repro.sqlext.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<", ">", "<=", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise ParseError(
                f"expected {word}, found {self._current.text!r}",
                self._current.position,
            )
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._current
        if token.type is not TokenType.PUNCT or token.text != char:
            raise ParseError(
                f"expected {char!r}, found {token.text!r}", token.position
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._current
        if token.type is not TokenType.IDENT:
            raise ParseError(
                f"expected identifier, found {token.text!r}", token.position
            )
        return self._advance()

    def _match_punct(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCT and token.text == char:
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------
    def parse_statement(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        projection = self._parse_projection()
        self._expect_keyword("FROM")
        tables = self._parse_name_list()
        constraint = None
        extra_constraints: tuple[ast.ConstraintClause, ...] = ()
        if self._match_keyword("CONSTRAINT"):
            # A conjunction of aggregate constraints: CONSTRAINT c1 AND
            # c2 AND ... — unambiguous because the predicate conjuncts
            # only start after the WHERE keyword.
            constraint = self._parse_constraint()
            extras = []
            while self._match_keyword("AND"):
                extras.append(self._parse_constraint())
            extra_constraints = tuple(extras)
        conjuncts: tuple[ast.Conjunct, ...] = ()
        if self._match_keyword("WHERE"):
            conjuncts = self._parse_conjuncts()
        self._match_punct(";")
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input: {self._current.text!r}",
                self._current.position,
            )
        return ast.SelectStatement(
            projection, tables, constraint, conjuncts, extra_constraints
        )

    def _parse_projection(self) -> tuple[str, ...]:
        if self._match_punct("*"):
            return ("*",)
        names = [self._expect_ident().text]
        while self._match_punct(","):
            names.append(self._expect_ident().text)
        return tuple(names)

    def _parse_name_list(self) -> tuple[str, ...]:
        names = [self._expect_ident().text]
        while self._match_punct(","):
            names.append(self._expect_ident().text)
        return tuple(names)

    def _parse_constraint(self) -> ast.ConstraintClause:
        start = self._current.position
        function = self._expect_ident().text
        self._expect_punct("(")
        argument: ast.ExprNode | None
        if self._match_punct("*"):
            argument = None
        else:
            argument = self._parse_expr()
        self._expect_punct(")")
        op_token = self._advance()
        if op_token.type is not TokenType.OP or op_token.text not in _COMPARISONS:
            raise ParseError(
                f"expected comparison operator, found {op_token.text!r}",
                op_token.position,
            )
        value = self._parse_signed_number()
        return ast.ConstraintClause(
            function, argument, op_token.text, value, span=(start, self._end())
        )

    def _parse_signed_number(self) -> float:
        sign = 1.0
        if self._current.type is TokenType.OP and self._current.text == "-":
            self._advance()
            sign = -1.0
        token = self._advance()
        if token.type is not TokenType.NUMBER:
            raise ParseError(
                f"expected number, found {token.text!r}", token.position
            )
        return sign * float(token.value)  # type: ignore[arg-type]

    def _parse_conjuncts(self) -> tuple[ast.Conjunct, ...]:
        conjuncts = [self._parse_conjunct()]
        while self._match_keyword("AND"):
            conjuncts.append(self._parse_conjunct())
        return tuple(conjuncts)

    def _parse_conjunct(self) -> ast.Conjunct:
        start = self._current.position
        condition = self._parse_maybe_parenthesized_condition()
        norefine = self._match_keyword("NOREFINE")
        return ast.Conjunct(condition, norefine, span=(start, self._end()))

    def _end(self) -> int:
        """End offset of the most recently consumed token."""
        last = self._tokens[self._index - 1]
        return last.position + len(last.text)

    def _parse_maybe_parenthesized_condition(self) -> ast.ConditionNode:
        """Handle the paper's ``(pred) NOREFINE`` style.

        A leading ``(`` is ambiguous: it may wrap a whole condition or
        just an arithmetic sub-expression (``(2*x) < y``). Try the
        condition reading first and backtrack on failure.
        """
        if self._current.type is TokenType.PUNCT and self._current.text == "(":
            saved = self._index
            self._advance()
            try:
                condition = self._parse_condition()
                self._expect_punct(")")
                return condition
            except ParseError:
                self._index = saved
        return self._parse_condition()

    def _parse_condition(self) -> ast.ConditionNode:
        left = self._parse_expr()
        if self._match_keyword("BETWEEN"):
            low = self._parse_expr()
            self._expect_keyword("AND")
            high = self._parse_expr()
            return ast.RangeCondition(expr=left, low=low, high=high)
        if self._match_keyword("IN"):
            if not isinstance(left, ast.ColRef):
                raise ParseError(
                    "IN requires a column reference on the left",
                    self._current.position,
                )
            self._expect_punct("(")
            values = [self._parse_expr()]
            while self._match_punct(","):
                values.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InCondition(left, tuple(values))
        op_token = self._advance()
        if op_token.type is not TokenType.OP or op_token.text not in _COMPARISONS:
            raise ParseError(
                f"expected comparison, found {op_token.text!r}",
                op_token.position,
            )
        right = self._parse_expr()
        follow = self._current
        if follow.type is TokenType.OP and follow.text in _COMPARISONS:
            # Chained comparison, e.g. 25 <= age <= 35.
            self._advance()
            third = self._parse_expr()
            return self._build_range(left, op_token.text, right, follow.text, third)
        return ast.Comparison(op_token.text, left, right)

    @staticmethod
    def _build_range(
        left: ast.ExprNode,
        first_op: str,
        middle: ast.ExprNode,
        second_op: str,
        right: ast.ExprNode,
    ) -> ast.RangeCondition:
        ascending = {"<", "<="}
        descending = {">", ">="}
        if first_op in ascending and second_op in ascending:
            return ast.RangeCondition(
                expr=middle,
                low=left,
                high=right,
                low_strict=first_op == "<",
                high_strict=second_op == "<",
            )
        if first_op in descending and second_op in descending:
            return ast.RangeCondition(
                expr=middle,
                low=right,
                high=left,
                low_strict=second_op == ">",
                high_strict=first_op == ">",
            )
        raise ParseError(
            f"inconsistent chained comparison {first_op} ... {second_op}",
            0,
        )

    # -- expressions ----------------------------------------------------
    def _parse_expr(self) -> ast.ExprNode:
        node = self._parse_term()
        while self._current.type is TokenType.OP and self._current.text in "+-":
            op = self._advance().text
            node = ast.BinOp(op, node, self._parse_term())
        return node

    def _parse_term(self) -> ast.ExprNode:
        node = self._parse_unary()
        while (
            self._current.type is TokenType.OP and self._current.text == "/"
        ) or (
            self._current.type is TokenType.PUNCT and self._current.text == "*"
        ):
            op = self._advance().text
            node = ast.BinOp(op, node, self._parse_unary())
        return node

    def _parse_unary(self) -> ast.ExprNode:
        if self._current.type is TokenType.OP and self._current.text == "-":
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.NumberLit):
                return ast.NumberLit(-operand.value)
            return ast.BinOp("-", ast.NumberLit(0.0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.ExprNode:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLit(float(token.value))  # type: ignore[arg-type]
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(str(token.value))
        if token.is_keyword("ABS"):
            self._advance()
            self._expect_punct("(")
            operand = self._parse_expr()
            self._expect_punct(")")
            return ast.AbsCall(operand)
        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            node = self._parse_expr()
            self._expect_punct(")")
            return node
        if token.type is TokenType.IDENT:
            self._advance()
            if self._match_punct("."):
                column = self._expect_ident().text
                return ast.ColRef(column=column, table=token.text)
            return ast.ColRef(column=token.text)
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.position
        )


def parse_statement(text: str) -> ast.SelectStatement:
    """Parse ACQ dialect text into a :class:`SelectStatement`."""
    return _Parser(tokenize(text)).parse_statement()
