"""Render core queries back to SQL text.

Two renderings:

* :func:`format_query` — the ACQ dialect (CONSTRAINT / NOREFINE),
  round-trippable through the parser;
* :func:`format_refined_query` — plain executable SQL for one of
  ACQUIRE's refined answers, which is what the user would paste into
  their real database once they pick an alternative.
"""

from __future__ import annotations

import math

from repro.core.predicate import (
    CategoricalPredicate,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import Query
from repro.core.result import RefinedQuery


def _number(value: float) -> str:
    if math.isinf(value):
        return "1e308" if value > 0 else "-1e308"
    if float(value).is_integer():
        return str(int(value))
    return f"{value!r}"


def _predicate_sql(
    predicate: Predicate, score: float, dialect: bool = False
) -> str:
    """SQL condition of one predicate at a given refinement score.

    ``dialect=True`` renders the ACQ-dialect form, where one-sided
    predicates show only their *moving* bound (the anchored side is the
    attribute domain, re-derived from statistics on re-parse);
    ``dialect=False`` renders fully-bounded plain SQL, exactly matching
    the evaluation layers' admission semantics.
    """
    if isinstance(predicate, SelectPredicate):
        refined = predicate.interval_at(score)
        expr = predicate.expr.to_sql()
        if dialect:
            from repro.core.predicate import Direction

            if predicate.direction is Direction.UPPER:
                return f"{expr} <= {_number(refined.hi)}"
            if predicate.direction is Direction.LOWER:
                return f"{expr} >= {_number(refined.lo)}"
            if refined.is_point:
                return f"{expr} = {_number(refined.lo)}"
        parts = []
        if math.isfinite(refined.lo):
            parts.append(f"{expr} >= {_number(refined.lo)}")
        if math.isfinite(refined.hi):
            parts.append(f"{expr} <= {_number(refined.hi)}")
        return " AND ".join(parts) if parts else "1=1"
    if isinstance(predicate, JoinPredicate):
        return predicate.sql_condition(score)
    assert isinstance(predicate, CategoricalPredicate)
    return predicate.sql_condition(score)


def format_query(query: Query) -> str:
    """Render a core query in the ACQ dialect of paper section 2.1."""
    lines = [f"SELECT * FROM {', '.join(query.tables)}"]
    lines.append(
        "CONSTRAINT "
        + " AND ".join(c.describe() for c in query.constraints)
    )
    conditions = []
    for predicate in query.predicates:
        text = f"({_predicate_sql(predicate, 0.0, dialect=True)})"
        if not predicate.refinable:
            text += " NOREFINE"
        conditions.append(text)
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines)


def format_refined_query(refined: RefinedQuery) -> str:
    """Render an ACQUIRE answer as plain SQL with refined bounds."""
    query = refined.query
    conditions = []
    for predicate, score in zip(query.refinable_predicates, refined.pscores):
        conditions.append(f"({_predicate_sql(predicate, score)})")
    for predicate in query.fixed_predicates:
        conditions.append(f"({_predicate_sql(predicate, 0.0)})")
    where = "\n  AND ".join(conditions) if conditions else "1=1"
    return (
        f"SELECT * FROM {', '.join(query.tables)}\n"
        f"WHERE {where}"
    )
