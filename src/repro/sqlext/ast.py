"""Parse tree for the ACQ SQL dialect (pre-binding)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

#: Half-open ``(start, end)`` character offsets into the source text.
Span = tuple[int, int]


# -- scalar expressions -------------------------------------------------
@dataclass(frozen=True)
class NumberLit:
    value: float


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class ColRef:
    column: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "ExprNode"
    right: "ExprNode"


@dataclass(frozen=True)
class AbsCall:
    operand: "ExprNode"


ExprNode = Union[NumberLit, StringLit, ColRef, BinOp, AbsCall]


# -- predicates ----------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """``left op right``; chained comparisons (``a <= x <= b``) are
    parsed into :class:`RangeCondition`."""

    op: str
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class RangeCondition:
    """``low <= expr <= high`` or ``expr BETWEEN low AND high``.

    ``low_strict`` / ``high_strict`` record ``<`` vs ``<=``.
    """

    expr: ExprNode
    low: ExprNode
    high: ExprNode
    low_strict: bool = False
    high_strict: bool = False


@dataclass(frozen=True)
class InCondition:
    column: ColRef
    values: tuple[ExprNode, ...]


ConditionNode = Union[Comparison, RangeCondition, InCondition]


@dataclass(frozen=True)
class Conjunct:
    """One WHERE conjunct, optionally pinned with NOREFINE.

    ``span`` records where the conjunct's text sits in the source so
    diagnostics can point back at it; it never participates in
    equality (parse trees compare structurally).
    """

    condition: ConditionNode
    norefine: bool = False
    span: Optional[Span] = field(default=None, compare=False)


# -- statement -----------------------------------------------------------
@dataclass(frozen=True)
class ConstraintClause:
    """``CONSTRAINT AGG(attr) Op X``."""

    function: str
    argument: Optional[ExprNode]  # None for COUNT(*)
    op: str
    target: float
    span: Optional[Span] = field(default=None, compare=False)


@dataclass(frozen=True)
class SelectStatement:
    """A parsed ACQ.

    ``extra_constraints`` holds the second and later clauses of a
    multi-constraint ``CONSTRAINT c1 AND c2 AND ...`` conjunction; the
    common single-constraint statement leaves it empty.
    """

    projection: tuple[str, ...]  # ("*",) or column names
    tables: tuple[str, ...]
    constraint: Optional[ConstraintClause]
    conjuncts: tuple[Conjunct, ...]
    extra_constraints: tuple[ConstraintClause, ...] = ()
