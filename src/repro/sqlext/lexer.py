"""Tokenizer for the ACQ SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ParseError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "CONSTRAINT",
    "NOREFINE",
    "BETWEEN",
    "IN",
    "NOT",
    "ABS",
    "AS",
}

#: Magnitude suffixes accepted on numeric literals (the paper writes
#: ``COUNT(*) = 1M`` and ``SUM(ps_availqty) >= 0.1M``).
SUFFIXES = {"K": 1e3, "M": 1e6, "B": 1e9}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_PUNCT = "(),.*;"


def tokenize(text: str) -> list[Token]:
    """Split dialect text into tokens; raises :class:`ParseError`."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char == "'":
            end = index + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise ParseError("unterminated string literal", index)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(
                Token(TokenType.STRING, text[index : end + 1], "".join(parts), index)
            )
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit terminates the number
                    # (e.g. "1.e" is invalid, but "t1.x" never gets here).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            # Scientific notation: 1e6, 2.5E-3, 1e+06.
            if end < length and text[end] in "eE":
                exp_end = end + 1
                if exp_end < length and text[exp_end] in "+-":
                    exp_end += 1
                if exp_end < length and text[exp_end].isdigit():
                    while exp_end < length and text[exp_end].isdigit():
                        exp_end += 1
                    end = exp_end
            literal = text[index:end]
            value = float(literal)
            if end < length and text[end].upper() in SUFFIXES:
                suffix = text[end].upper()
                # Only treat the letter as a suffix when it ends the word
                # (so identifiers like "10Mbit" still fail loudly).
                if end + 1 < length and (
                    text[end + 1].isalnum() or text[end + 1] == "_"
                ):
                    raise ParseError(
                        f"malformed numeric literal near {literal!r}", index
                    )
                value *= SUFFIXES[suffix]
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[index:end], value, index))
            index = end
            continue
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, index)), None
        )
        if matched_op is not None:
            tokens.append(Token(TokenType.OP, matched_op, matched_op, index))
            index += len(matched_op)
            continue
        if char in "+-/":
            tokens.append(Token(TokenType.OP, char, char, index))
            index += 1
            continue
        if char in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, char, char, index))
            index += 1
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, upper, index))
            else:
                tokens.append(Token(TokenType.IDENT, word, word, index))
            index = end
            continue
        raise ParseError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.EOF, "", None, length))
    return tokens
