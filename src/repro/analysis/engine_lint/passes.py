"""AST passes of the engine lint (EL1xx–EL4xx).

Unlike the ACQ analyzer — which inspects a *user query* against a
catalog — these passes inspect the reproduction's own source, guarding
invariants the type system cannot see:

EL1xx   tensor purity / aliasing. The PR-4 ``prefix_combine`` bug
        (an in-place ``out=`` write through a parameter that aliased a
        cached tensor) motivates this family: inside the tensor-hot
        modules (``core/grid_explore.py``, ``core/grid_cache.py`` and
        the engine backends) mutating a function parameter or a
        cache-returned value in place is flagged.

EL2xx   lock discipline. For every class that owns a
        ``threading.Lock``/``RLock``, any ``self``-rooted attribute
        path written under the lock *somewhere* becomes "guarded";
        reading or writing a guarded path outside a ``with
        self.<lock>:`` block is flagged. ``__init__``/``__post_init__``
        are exempt (no concurrent aliases exist yet), and guarded sets
        merge down the inheritance chain so a subclass touching an
        inherited counter unlocked is still caught.

EL3xx   exception / import policy, absorbed from the retired
        ``tools/lint_invariants.py``: every ``raise`` must use a class
        from :mod:`repro.exceptions` (EL301), and only engine modules
        may import :mod:`sqlite3` (EL302).

EL4xx   counter drift. Attribute access on values statically known to
        be ``ExecutionStats``/``SearchStats`` must name a declared
        field or method (EL401), and a hand-written ``since()`` that
        does not iterate ``dataclasses.fields`` must still mention
        every numeric field (EL402).

EL5xx   fork / process-pool safety, motivated by the process tile
        tier (``core/tile_worker.py``): a bound method submitted to an
        executor drags its whole instance — locks, pools, backends —
        into the task closure, which deadlocks or fails to pickle on a
        process pool (EL501); a module that creates
        ``multiprocessing.shared_memory`` blocks must also close *and*
        unlink them, and one that only attaches must at least close
        (EL502); lambdas and nested functions shipped to an executor
        ``submit``/``map`` or as a pool ``initializer=`` cannot cross
        a spawn boundary at all (EL503).

Precision notes (documented, deliberate):

* EL2xx treats *any* owned lock as satisfying the guard — a class with
  two locks is assumed to partition its state sensibly.  Reading a
  bare prefix of a guarded path (``self.stats`` when only
  ``self.stats.rows_scanned`` is guarded) is not flagged: handing out
  the object is a policy question, mutating through it is not.
* EL1xx flags by syntactic shape; intentionally in-place kernels are
  recorded in the baseline file with a reason rather than silenced in
  code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine_lint.model import EngineFinding

#: Modules whose code moves ndarrays around; EL1xx applies only here.
TENSOR_SCOPE_MARKERS = ("core/grid_explore.py", "core/grid_cache.py", "engine/")

#: Modules allowed to import sqlite3 (EL302).
ENGINE_SCOPE_MARKER = "engine/"

#: Class names treated as stats dataclasses by EL4xx.
STATS_CLASS_NAMES = frozenset(
    {"ExecutionStats", "SearchStats", "ServiceStats"}
)

#: Raise targets permitted everywhere in addition to repro.exceptions.
RAISE_ALLOWLIST = frozenset({"NotImplementedError"})

#: Methods where unlocked access is allowed: the object is not yet
#: (or no longer) shared, so no concurrent alias can exist.
LOCK_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__"})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


# --------------------------------------------------------------------------
# module / context model
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LintModule:
    """One parsed source file."""

    path: Path
    rel: str  # repo-relative posix path, used in findings and baselines
    tree: ast.Module


def _attr_path(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``("stats", "rows_scanned")`` for ``self.stats.rows_scanned``.

    Returns None unless the chain is rooted at a ``self`` name.
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id == "self" and parts:
        return tuple(reversed(parts))
    return None


def _callable_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_lock_ctor(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and _callable_name(value.func) in _LOCK_FACTORIES


def _walk_class(node: ast.ClassDef) -> Iterator[ast.AST]:
    """Walk a class body without descending into nested classes."""
    stack: List[ast.AST] = list(node.body)
    while stack:
        sub = stack.pop()
        yield sub
        if isinstance(sub, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(sub))


def _lock_items(node: ast.AST, lock_attrs: Set[str]) -> bool:
    """True when a ``with`` statement acquires one of the class locks."""
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        path = _attr_path(item.context_expr)
        if path is not None and len(path) == 1 and path[0] in lock_attrs:
            return True
    return False


def _write_target_paths(target: ast.expr) -> Iterator[Tuple[Tuple[str, ...], ast.expr]]:
    """Self-rooted paths mutated by an assignment target.

    Covers plain attribute stores, subscript stores into an attribute
    (mutating the container counts as writing the attribute), and
    tuple/starred unpacking.
    """
    if isinstance(target, ast.Attribute):
        path = _attr_path(target)
        if path is not None:
            yield path, target
    elif isinstance(target, ast.Subscript):
        base: ast.expr = target.value
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            path = _attr_path(base)
            if path is not None:
                yield path, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _write_target_paths(element)
    elif isinstance(target, ast.Starred):
        yield from _write_target_paths(target.value)


@dataclass
class ClassInfo:
    """Per-class facts collected in the first phase."""

    name: str
    rel: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    lock_attrs: Set[str] = field(default_factory=set)
    guarded: Set[Tuple[str, ...]] = field(default_factory=set)
    stats_attrs: Dict[str, str] = field(default_factory=dict)


@dataclass
class StatsClassInfo:
    """Field/method inventory of an ExecutionStats/SearchStats class."""

    name: str
    rel: str
    node: ast.ClassDef
    fields: Dict[str, str] = field(default_factory=dict)  # name -> annotation
    methods: Set[str] = field(default_factory=set)


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _annotation_stats_name(node: Optional[ast.expr]) -> Optional[str]:
    """Stats-class name mentioned anywhere inside an annotation."""
    if node is None:
        return None
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in STATS_CLASS_NAMES:
            return sub.id
        if isinstance(sub, ast.Attribute) and sub.attr in STATS_CLASS_NAMES:
            return sub.attr
        if isinstance(sub, ast.Constant) and sub.value in STATS_CLASS_NAMES:
            return str(sub.value)
    return None


def _collect_class(node: ast.ClassDef, rel: str) -> ClassInfo:
    info = ClassInfo(name=node.name, rel=rel, node=node, bases=_base_names(node))
    # Phase a: which attributes are locks?
    for sub in _walk_class(node):
        if isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value):
            for target in sub.targets:
                path = _attr_path(target)
                if path is not None and len(path) == 1:
                    info.lock_attrs.add(path[0])
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                path = _attr_path(item.context_expr)
                if path is not None and len(path) == 1 and "lock" in path[0].lower():
                    info.lock_attrs.add(path[0])
    # Phase b: which self-paths are written under one of those locks?
    for sub in _walk_class(node):
        if not _lock_items(sub, info.lock_attrs):
            continue
        for stmt in sub.body:  # type: ignore[attr-defined]
            for inner in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(inner, ast.Assign):
                    targets = list(inner.targets)
                elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                    targets = [inner.target]
                elif isinstance(inner, ast.Delete):
                    targets = list(inner.targets)
                for target in targets:
                    for path, _ in _write_target_paths(target):
                        if path[0] not in info.lock_attrs:
                            info.guarded.add(path)
    # Phase c: which attributes hold stats objects?
    for sub in _walk_class(node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            ctor = _callable_name(sub.value.func)
            if ctor in STATS_CLASS_NAMES:
                for target in sub.targets:
                    path = _attr_path(target)
                    if path is not None and len(path) == 1:
                        info.stats_attrs[path[0]] = ctor
        elif isinstance(sub, ast.AnnAssign):
            stats = _annotation_stats_name(sub.annotation)
            if stats is not None:
                path = _attr_path(sub.target)
                if path is not None and len(path) == 1:
                    info.stats_attrs[path[0]] = stats
                elif isinstance(sub.target, ast.Name):
                    info.stats_attrs[sub.target.id] = stats
    return info


def _collect_stats_class(node: ast.ClassDef, rel: str) -> StatsClassInfo:
    info = StatsClassInfo(name=node.name, rel=rel, node=node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ""
            if isinstance(stmt.annotation, ast.Name):
                annotation = stmt.annotation.id
            elif isinstance(stmt.annotation, ast.Constant):
                annotation = str(stmt.annotation.value)
            info.fields[stmt.target.id] = annotation
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.fields[target.id] = ""
    return info


def _runtime_exception_names() -> FrozenSet[str]:
    import repro.exceptions as exc_module

    names = set()
    for name in dir(exc_module):
        obj = getattr(exc_module, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            names.add(name)
    return frozenset(names)


class ProjectContext:
    """Cross-module facts shared by all passes.

    Built once from the full module list so that, e.g., the lock
    discipline of ``EvaluationLayer`` reaches its subclasses in other
    files, and ``ExecutionStats`` fields declared in ``backends.py``
    validate references everywhere.
    """

    def __init__(self, modules: Iterable[LintModule]) -> None:
        self.modules: Tuple[LintModule, ...] = tuple(modules)
        self.classes: Dict[str, ClassInfo] = {}
        self.stats_classes: Dict[str, StatsClassInfo] = {}
        exception_names: Set[str] = set(_runtime_exception_names())
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    info = _collect_class(node, module.rel)
                    self.classes.setdefault(node.name, info)
                    if node.name in STATS_CLASS_NAMES:
                        self.stats_classes.setdefault(
                            node.name, _collect_stats_class(node, module.rel)
                        )
            if module.rel.endswith("exceptions.py"):
                exception_names.update(
                    node.name
                    for node in module.tree.body
                    if isinstance(node, ast.ClassDef)
                )
        self.exception_names: FrozenSet[str] = frozenset(exception_names)

    # -- inheritance merges -------------------------------------------

    def merged_lock_state(
        self, name: str, _seen: Optional[Set[str]] = None
    ) -> Tuple[FrozenSet[str], FrozenSet[Tuple[str, ...]]]:
        seen = _seen if _seen is not None else set()
        if name in seen or name not in self.classes:
            return frozenset(), frozenset()
        seen.add(name)
        info = self.classes[name]
        locks: Set[str] = set(info.lock_attrs)
        guarded: Set[Tuple[str, ...]] = set(info.guarded)
        for base in info.bases:
            base_locks, base_guarded = self.merged_lock_state(base, seen)
            locks.update(base_locks)
            guarded.update(base_guarded)
        return frozenset(locks), frozenset(guarded)

    def merged_stats_attrs(
        self, name: str, _seen: Optional[Set[str]] = None
    ) -> Dict[str, str]:
        seen = _seen if _seen is not None else set()
        if name in seen or name not in self.classes:
            return {}
        seen.add(name)
        info = self.classes[name]
        merged: Dict[str, str] = {}
        for base in info.bases:
            merged.update(self.merged_stats_attrs(base, seen))
        merged.update(info.stats_attrs)
        return merged


# --------------------------------------------------------------------------
# EL1xx — tensor purity / aliasing
# --------------------------------------------------------------------------


def _finding(
    code: str,
    message: str,
    module: LintModule,
    node: ast.AST,
    scope: Tuple[str, ...],
    hint: Optional[str] = None,
) -> EngineFinding:
    return EngineFinding(
        code=code,
        message=message,
        path=module.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        symbol=".".join(scope),
        hint=hint,
    )


def _function_params(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names


_CACHE_ACCESSORS = frozenset({"lookup", "get", "put"})


def _cache_born_targets(node: ast.Assign) -> Iterator[str]:
    """Names bound to values fetched from a cache-like receiver."""
    value = node.value
    if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)):
        return
    if value.func.attr not in _CACHE_ACCESSORS:
        return
    receiver = value.func.value
    receiver_name = ""
    if isinstance(receiver, ast.Name):
        receiver_name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        receiver_name = receiver.attr
    if "cache" not in receiver_name.lower():
        return
    for target in node.targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    yield element.id


def _subscript_base_name(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    if not isinstance(target, ast.Subscript):
        return None
    base: ast.expr = target.value
    while isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id, target
    return None


def tensor_purity_pass(module: LintModule, ctx: ProjectContext) -> List[EngineFinding]:
    """EL101–EL104: in-place mutation through parameters/cache values."""
    if not any(marker in module.rel for marker in TENSOR_SCOPE_MARKERS):
        return []
    findings: List[EngineFinding] = []

    def scan(
        node: ast.AST,
        params: FrozenSet[str],
        cache_born: Set[str],
        scope: Tuple[str, ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = params | frozenset(_function_params(node.args))
            child_scope = scope + (node.name,)
            born: Set[str] = set(cache_born)
            for stmt in node.body:
                scan(stmt, inner, born, child_scope)
            return
        if isinstance(node, ast.Lambda):
            inner = params | frozenset(_function_params(node.args))
            scan(node.body, inner, set(cache_born), scope + ("<lambda>",))
            return
        if isinstance(node, ast.ClassDef):
            child_scope = scope + (node.name,)
            for stmt in node.body:
                scan(stmt, params, cache_born, child_scope)
            return
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                name = node.target.id
                if name in params:
                    findings.append(
                        _finding(
                            "EL101",
                            f"augmented assignment mutates parameter {name!r} in place",
                            module,
                            node,
                            scope,
                            hint="callers may hold aliases; assign a new value or copy first",
                        )
                    )
                elif name in cache_born:
                    findings.append(
                        _finding(
                            "EL104",
                            f"augmented assignment mutates cache-returned value {name!r}",
                            module,
                            node,
                            scope,
                            hint="cached tensors are shared; copy before mutating",
                        )
                    )
            based = _subscript_base_name(node.target)
            if based is not None:
                name, span = based
                if name in params:
                    findings.append(
                        _finding(
                            "EL102",
                            f"subscript store mutates parameter {name!r} in place",
                            module,
                            span,
                            scope,
                            hint="callers may hold aliases; write into a local copy",
                        )
                    )
                elif name in cache_born:
                    findings.append(
                        _finding(
                            "EL104",
                            f"subscript store mutates cache-returned value {name!r}",
                            module,
                            span,
                            scope,
                            hint="cached tensors are shared; copy before mutating",
                        )
                    )
        elif isinstance(node, ast.Assign):
            for born_name in _cache_born_targets(node):
                cache_born.add(born_name)
            for target in node.targets:
                based = _subscript_base_name(target)
                if based is None:
                    continue
                name, span = based
                if name in params:
                    findings.append(
                        _finding(
                            "EL102",
                            f"subscript store mutates parameter {name!r} in place",
                            module,
                            span,
                            scope,
                            hint="callers may hold aliases; write into a local copy",
                        )
                    )
                elif name in cache_born:
                    findings.append(
                        _finding(
                            "EL104",
                            f"subscript store mutates cache-returned value {name!r}",
                            module,
                            span,
                            scope,
                            hint="cached tensors are shared; copy before mutating",
                        )
                    )
            # a rebind kills the alias: ``x = cache.get(); x = x.copy()``
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in cache_born:
                    if target.id not in set(_cache_born_targets(node)):
                        cache_born.discard(target.id)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg != "out" or not isinstance(keyword.value, ast.Name):
                    continue
                name = keyword.value.id
                if name in params:
                    findings.append(
                        _finding(
                            "EL103",
                            f"out= aliases parameter {name!r}; the in-place write escapes the callee",
                            module,
                            keyword.value,
                            scope,
                            hint="allocate the output locally, or document the in-place contract and suppress",
                        )
                    )
                elif name in cache_born:
                    findings.append(
                        _finding(
                            "EL104",
                            f"out= writes into cache-returned value {name!r}",
                            module,
                            keyword.value,
                            scope,
                            hint="cached tensors are shared; copy before mutating",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            scan(child, params, cache_born, scope)

    for stmt in module.tree.body:
        scan(stmt, frozenset(), set(), ())
    return findings


# --------------------------------------------------------------------------
# EL2xx — lock discipline
# --------------------------------------------------------------------------


def _path_text(path: Tuple[str, ...]) -> str:
    return "self." + ".".join(path)


def lock_discipline_pass(module: LintModule, ctx: ProjectContext) -> List[EngineFinding]:
    """EL201/EL202: unlocked write/read of a lock-guarded attribute path."""
    findings: List[EngineFinding] = []

    def check_class(node: ast.ClassDef, scope: Tuple[str, ...]) -> None:
        locks, guarded = ctx.merged_lock_state(node.name)
        class_scope = scope + (node.name,)
        if locks and guarded:
            lock_text = ", ".join(f"self.{name}" for name in sorted(locks))

            def write_hit(path: Tuple[str, ...]) -> bool:
                return any(
                    path[: len(g)] == g or g[: len(path)] == path for g in guarded
                )

            def read_hit(path: Tuple[str, ...]) -> bool:
                return any(path[: len(g)] == g for g in guarded)

            def flag(code: str, verb: str, path: Tuple[str, ...], span: ast.AST, fn_scope: Tuple[str, ...]) -> None:
                findings.append(
                    _finding(
                        code,
                        f"{verb} {_path_text(path)} outside the guarding lock ({lock_text})",
                        module,
                        span,
                        fn_scope,
                        hint=f"wrap the access in a with-block on the guarding lock ({lock_text})",
                    )
                )

            def handle_target(target: ast.expr, under: bool, fn_scope: Tuple[str, ...]) -> None:
                if isinstance(target, ast.Attribute):
                    path = _attr_path(target)
                    if path is not None:
                        if not under and path[0] not in locks and write_hit(path):
                            flag("EL201", "write to", path, target, fn_scope)
                        return  # the chain itself carries no further reads
                    scan(target.value, under, fn_scope)
                    return
                if isinstance(target, ast.Subscript):
                    base: ast.expr = target
                    while isinstance(base, ast.Subscript):
                        scan(base.slice, under, fn_scope)
                        base = base.value
                    path = _attr_path(base) if isinstance(base, ast.Attribute) else None
                    if path is not None:
                        # mutating the container counts as writing the attr
                        if not under and path[0] not in locks and write_hit(path):
                            flag("EL201", "write to", path, target, fn_scope)
                        return
                    scan(base, under, fn_scope)
                    return
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        handle_target(element, under, fn_scope)
                    return
                if isinstance(target, ast.Starred):
                    handle_target(target.value, under, fn_scope)

            def scan(sub: ast.AST, under: bool, fn_scope: Tuple[str, ...]) -> None:
                if isinstance(sub, (ast.With, ast.AsyncWith)):
                    inner = under or _lock_items(sub, locks)
                    for item in sub.items:
                        scan(item.context_expr, under, fn_scope)
                        if item.optional_vars is not None:
                            handle_target(item.optional_vars, inner, fn_scope)
                    for stmt in sub.body:
                        scan(stmt, inner, fn_scope)
                    return
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        handle_target(target, under, fn_scope)
                    scan(sub.value, under, fn_scope)
                    return
                if isinstance(sub, ast.AugAssign):
                    handle_target(sub.target, under, fn_scope)
                    scan(sub.value, under, fn_scope)
                    return
                if isinstance(sub, ast.AnnAssign):
                    if sub.value is not None:
                        handle_target(sub.target, under, fn_scope)
                        scan(sub.value, under, fn_scope)
                    return
                if isinstance(sub, ast.Delete):
                    for target in sub.targets:
                        handle_target(target, under, fn_scope)
                    return
                if isinstance(sub, ast.Attribute):
                    path = _attr_path(sub)
                    if path is not None and path[0] not in locks and not under:
                        if read_hit(path):
                            flag("EL202", "read of", path, sub, fn_scope)
                            return  # don't re-flag the inner chain
                    scan(sub.value, under, fn_scope)
                    return
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_scope = fn_scope + (sub.name,)
                    for stmt in sub.body:
                        scan(stmt, under, nested_scope)
                    return
                if isinstance(sub, ast.Lambda):
                    scan(sub.body, under, fn_scope + ("<lambda>",))
                    return
                if isinstance(sub, ast.ClassDef):
                    check_class(sub, fn_scope)
                    return
                for child in ast.iter_child_nodes(sub):
                    scan(child, under, fn_scope)

            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name in LOCK_EXEMPT_METHODS:
                        continue
                    fn_scope = class_scope + (stmt.name,)
                    for inner_stmt in stmt.body:
                        scan(inner_stmt, False, fn_scope)
                elif isinstance(stmt, ast.ClassDef):
                    check_class(stmt, class_scope)
        else:
            for stmt in node.body:
                if isinstance(stmt, ast.ClassDef):
                    check_class(stmt, class_scope)

    def find_classes(node: ast.AST, scope: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                check_class(child, scope)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                find_classes(child, scope + (child.name,))
            else:
                find_classes(child, scope)

    find_classes(module.tree, ())
    return findings


# --------------------------------------------------------------------------
# EL3xx — exception / import policy (absorbed from tools/lint_invariants.py)
# --------------------------------------------------------------------------


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return "<expression>"


def exception_policy_pass(module: LintModule, ctx: ProjectContext) -> List[EngineFinding]:
    """EL301 (typed exceptions) and EL302 (sqlite3 isolation)."""
    findings: List[EngineFinding] = []
    in_engine = ENGINE_SCOPE_MARKER in module.rel
    is_exceptions_module = module.rel.endswith("exceptions.py")

    def check_import(name: str, node: ast.AST, scope: Tuple[str, ...]) -> None:
        if name.split(".")[0] == "sqlite3" and not in_engine:
            findings.append(
                _finding(
                    "EL302",
                    "sqlite3 may only be imported under src/repro/engine/",
                    module,
                    node,
                    scope,
                    hint="go through the evaluation-layer API or repro.engine.sqlite_util",
                )
            )

    def scan(node: ast.AST, scope: Tuple[str, ...]) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                check_import(alias.name, node, scope)
        elif isinstance(node, ast.ImportFrom):
            if node.module:
                check_import(node.module, node, scope)
        elif isinstance(node, ast.Raise) and not is_exceptions_module:
            name = _raised_name(node)
            ok = (
                name is None
                or name in ctx.exception_names
                or name in RAISE_ALLOWLIST
                or (name is not None and name[:1].islower() and name != "<expression>")
                or (name == "AttributeError" and scope[-1:] == ("__getattr__",))
            )
            if not ok:
                findings.append(
                    _finding(
                        "EL301",
                        f"raise {name} — raise a class from repro.exceptions instead",
                        module,
                        node,
                        scope,
                        hint="pick (or add) a ReproError subclass so callers can catch one base type",
                    )
                )
        new_scope = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            new_scope = scope + (node.name,)
        elif isinstance(node, ast.Lambda):
            new_scope = scope + ("<lambda>",)
        for child in ast.iter_child_nodes(node):
            scan(child, new_scope)

    scan(module.tree, ())
    return findings


# --------------------------------------------------------------------------
# EL4xx — stats counter drift
# --------------------------------------------------------------------------

#: Attributes always fine on a stats object (dataclass/Python protocol).
_STATS_ATTR_ALLOWLIST = frozenset(
    {"__dict__", "__class__", "__dataclass_fields__"}
)

_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})


def stats_drift_pass(module: LintModule, ctx: ProjectContext) -> List[EngineFinding]:
    """EL401 (undeclared field reference) and EL402 (since() coverage)."""
    if not ctx.stats_classes:
        return []
    findings: List[EngineFinding] = []

    def stats_info(name: Optional[str]) -> Optional[StatsClassInfo]:
        if name is None:
            return None
        return ctx.stats_classes.get(name)

    def check_access(
        node: ast.Attribute, owner: StatsClassInfo, scope: Tuple[str, ...]
    ) -> None:
        attr = node.attr
        if (
            attr in owner.fields
            or attr in owner.methods
            or attr.startswith("__")
            or attr in _STATS_ATTR_ALLOWLIST
        ):
            return
        findings.append(
            _finding(
                "EL401",
                f"{owner.name} has no field {attr!r}",
                module,
                node,
                scope,
                hint=f"declare {attr!r} on {owner.name} ({owner.rel}) or fix the reference",
            )
        )

    def scan_function(
        node: ast.AST,
        local_stats: Dict[str, str],
        attr_stats: Dict[str, str],
        scope: Tuple[str, ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(local_stats)
            for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                stats = _annotation_stats_name(arg.annotation)
                if stats is not None:
                    inner[arg.arg] = stats
            child_scope = scope + (node.name,)
            for stmt in node.body:
                scan_function(stmt, inner, attr_stats, child_scope)
            return
        if isinstance(node, ast.ClassDef):
            scan_class(node, scope)
            return
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call):
                ctor = _callable_name(node.value.func)
                if ctor in STATS_CLASS_NAMES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_stats[target.id] = ctor
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            stats = _annotation_stats_name(node.annotation)
            if stats is not None:
                local_stats[node.target.id] = stats
        if isinstance(node, ast.Attribute):
            owner: Optional[StatsClassInfo] = None
            value = node.value
            if isinstance(value, ast.Name):
                owner = stats_info(local_stats.get(value.id))
            elif isinstance(value, ast.Attribute):
                path = _attr_path(value)
                if path is not None and len(path) == 1:
                    owner = stats_info(attr_stats.get(path[0]))
            if owner is not None:
                check_access(node, owner, scope)
        for child in ast.iter_child_nodes(node):
            scan_function(child, local_stats, attr_stats, scope)

    def scan_class(node: ast.ClassDef, scope: Tuple[str, ...]) -> None:
        attr_stats = ctx.merged_stats_attrs(node.name)
        class_scope = scope + (node.name,)
        if node.name in STATS_CLASS_NAMES:
            check_since(node, class_scope)
        for stmt in node.body:
            scan_function(stmt, {}, attr_stats, class_scope)

    def check_since(node: ast.ClassDef, class_scope: Tuple[str, ...]) -> None:
        owner = ctx.stats_classes.get(node.name)
        if owner is None or owner.rel != module.rel:
            return
        since = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "since"
            ),
            None,
        )
        if since is None:
            return
        uses_fields = any(
            isinstance(sub, ast.Call) and _callable_name(sub.func) == "fields"
            for sub in ast.walk(since)
        )
        if uses_fields:
            return
        mentioned: Set[str] = set()
        for sub in ast.walk(since):
            if isinstance(sub, ast.Attribute):
                mentioned.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                mentioned.add(sub.value)
        missing = sorted(
            name
            for name, annotation in owner.fields.items()
            if annotation in _NUMERIC_ANNOTATIONS and name not in mentioned
        )
        if missing:
            findings.append(
                _finding(
                    "EL402",
                    f"{node.name}.since() does not cover numeric field(s): "
                    + ", ".join(missing),
                    module,
                    since,
                    class_scope + ("since",),
                    hint="iterate dataclasses.fields(self) instead of hand-listing fields",
                )
            )

    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            scan_class(stmt, ())
        else:
            scan_function(stmt, {}, {}, ())
    return findings


# --------------------------------------------------------------------------
# EL5xx — fork / process-pool safety
# --------------------------------------------------------------------------

#: Executor methods that take a task callable as their first argument.
_TASK_DISPATCHERS = frozenset({"submit", "map"})


def _import_bound_names(tree: ast.Module) -> FrozenSet[str]:
    """Every name bound by an import anywhere in the module.

    Module aliases and imported functions are picklable by reference
    (``pickle`` ships the qualified name, not the object), so a task
    rooted at one of these is process-safe by construction.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return frozenset(names)


def _root_name(node: ast.expr) -> Optional[str]:
    cur = node
    while isinstance(cur, ast.Attribute):
        cur = cur.value
    return cur.id if isinstance(cur, ast.Name) else None


def process_safety_pass(
    module: LintModule, ctx: ProjectContext
) -> List[EngineFinding]:
    """EL501–EL503: executor tasks and shared-memory lifecycle."""
    findings: List[EngineFinding] = []
    imported = _import_bound_names(module.tree)

    # -- EL502: module-level shared-memory lifecycle pairing ----------
    creators: List[Tuple[ast.AST, Tuple[str, ...]]] = []
    attachers: List[Tuple[ast.AST, Tuple[str, ...]]] = []
    closes = False
    unlinks = False

    def creates_shm(call: ast.Call) -> Optional[bool]:
        """True create, False attach, None when not a SharedMemory()."""
        name = _callable_name(call.func)
        if name != "SharedMemory":
            return None
        for keyword in call.keywords:
            if keyword.arg == "create":
                value = keyword.value
                return bool(
                    isinstance(value, ast.Constant) and value.value is True
                )
        return False

    # -- EL501 / EL503: task callables shipped to executors -----------
    def check_dispatch(
        call: ast.Call, scope: Tuple[str, ...], local_defs: FrozenSet[str]
    ) -> None:
        func = call.func
        is_dispatch = (
            isinstance(func, ast.Attribute) and func.attr in _TASK_DISPATCHERS
        )
        task: Optional[ast.expr] = None
        if is_dispatch and call.args:
            task = call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                task = keyword.value
                is_dispatch = True
        if not is_dispatch or task is None:
            return
        if isinstance(task, ast.Lambda):
            findings.append(
                _finding(
                    "EL503",
                    "lambda shipped as an executor task; it cannot cross "
                    "a process boundary (pickle) and hides its captures",
                    module,
                    task,
                    scope,
                    hint="lift the task to a module-level function taking "
                    "explicit arguments",
                )
            )
            return
        if isinstance(task, ast.Name) and task.id in local_defs:
            findings.append(
                _finding(
                    "EL503",
                    f"nested function {task.id!r} shipped as an executor "
                    "task; it cannot cross a process boundary (pickle)",
                    module,
                    task,
                    scope,
                    hint="lift the task to a module-level function taking "
                    "explicit arguments",
                )
            )
            return
        if isinstance(task, ast.Attribute):
            root = _root_name(task)
            if root is not None and root not in imported:
                findings.append(
                    _finding(
                        "EL501",
                        f"bound method {ast.unparse(task)} submitted as an "
                        "executor task; the closure captures the whole "
                        "instance (locks, pools, backends)",
                        module,
                        task,
                        scope,
                        hint="ship a module-level function plus plain "
                        "arguments, or suppress for thread-only pools",
                    )
                )

    def scan(
        node: ast.AST, scope: Tuple[str, ...], local_defs: FrozenSet[str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = frozenset(
                stmt.name
                for stmt in ast.walk(node)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not node
            )
            child_scope = scope + (node.name,)
            for stmt in node.body:
                scan(stmt, child_scope, nested)
            return
        if isinstance(node, ast.ClassDef):
            child_scope = scope + (node.name,)
            for stmt in node.body:
                scan(stmt, child_scope, local_defs)
            return
        if isinstance(node, ast.Call):
            check_dispatch(node, scope, local_defs)
            shm = creates_shm(node)
            if shm is True:
                creators.append((node, scope))
            elif shm is False:
                attachers.append((node, scope))
            if isinstance(node.func, ast.Attribute):
                nonlocal_marker = node.func.attr
                if nonlocal_marker == "close":
                    nonlocal closes
                    closes = True
                elif nonlocal_marker == "unlink":
                    nonlocal unlinks
                    unlinks = True
        for child in ast.iter_child_nodes(node):
            scan(child, scope, local_defs)

    for stmt in module.tree.body:
        scan(stmt, (), frozenset())

    for node, scope in creators:
        missing = [
            verb
            for verb, seen in (("close()", closes), ("unlink()", unlinks))
            if not seen
        ]
        if missing:
            findings.append(
                _finding(
                    "EL502",
                    "SharedMemory(create=True) without a "
                    + " / ".join(missing)
                    + " anywhere in this module — the block leaks past "
                    "the process",
                    module,
                    node,
                    scope,
                    hint="pair every owned block with close() + unlink() "
                    "(a finally block or a release helper)",
                )
            )
    if attachers and not closes:
        node, scope = attachers[0]
        findings.append(
            _finding(
                "EL502",
                "SharedMemory attach without a close() anywhere in this "
                "module — the mapping leaks until process exit",
                module,
                node,
                scope,
                hint="close() the attached block in a finally block",
            )
        )
    return findings


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

PassFn = Callable[[LintModule, ProjectContext], List[EngineFinding]]

ENGINE_PASSES: Tuple[PassFn, ...] = (
    tensor_purity_pass,
    lock_discipline_pass,
    exception_policy_pass,
    stats_drift_pass,
    process_safety_pass,
)


def run_passes(
    modules: Iterable[LintModule],
    ctx: Optional[ProjectContext] = None,
    passes: Tuple[PassFn, ...] = ENGINE_PASSES,
) -> List[EngineFinding]:
    """Run every pass over every module and pool the findings."""
    module_list = list(modules)
    context = ctx if ctx is not None else ProjectContext(module_list)
    findings: List[EngineFinding] = []
    for module in module_list:
        for engine_pass in passes:
            findings.extend(engine_pass(module, context))
    return findings
