"""Engine-lint driver: file discovery, baseline loading, CLI entry.

The library surface is :func:`lint_paths` (returns an
:class:`~repro.analysis.engine_lint.model.EngineLintReport`); the CLI
surface is ``repro lint --engine`` which lands in :func:`engine_lint_main`.

Defaults are derived from the installed package location, so the tool
works from any working directory: the project root is two levels above
``repro/__init__.py`` (the ``src`` layout), the analyzed tree is
``src/repro``, and the baseline is ``tools/engine_lint_baseline.txt``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.engine_lint.model import (
    EngineLintReport,
    Suppression,
    apply_baseline,
    parse_suppressions,
)
from repro.analysis.engine_lint.passes import LintModule, ProjectContext, run_passes
from repro.exceptions import LintBaselineError

#: Repo-relative location of the committed baseline-suppressions file.
DEFAULT_BASELINE = "tools/engine_lint_baseline.txt"


def default_project_root() -> Path:
    """Repository root inferred from the package location (src layout)."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def default_source_root(project_root: Optional[Path] = None) -> Path:
    root = project_root if project_root is not None else default_project_root()
    return root / "src" / "repro"


def collect_files(
    paths: Optional[Sequence[Path]] = None,
    project_root: Optional[Path] = None,
) -> List[Path]:
    """Python files to lint: explicit paths, or the whole src tree."""
    if not paths:
        return sorted(default_source_root(project_root).rglob("*.py"))
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def load_modules(
    files: Iterable[Path], project_root: Optional[Path] = None
) -> List[LintModule]:
    root = project_root if project_root is not None else default_project_root()
    modules: List[LintModule] = []
    for path in files:
        path = Path(path).resolve()
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.name
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        modules.append(LintModule(path=path, rel=rel, tree=tree))
    return modules


def load_baseline(
    baseline: Optional[Path] = None, project_root: Optional[Path] = None
) -> tuple:
    """Baseline entries; the default file is optional, an explicit one is not."""
    if baseline is None:
        root = project_root if project_root is not None else default_project_root()
        candidate = root / DEFAULT_BASELINE
        if not candidate.is_file():
            return ()
        baseline = candidate
    baseline = Path(baseline)
    if not baseline.is_file():
        raise LintBaselineError(f"baseline file not found: {baseline}")
    return parse_suppressions(
        baseline.read_text(encoding="utf-8"), origin=str(baseline)
    )


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    project_root: Optional[Path] = None,
    baseline: Optional[Sequence[Suppression]] = None,
) -> EngineLintReport:
    """Run every engine pass and apply the baseline.

    ``baseline=None`` loads the committed default (if present); pass an
    empty sequence to lint without suppressions.
    """
    files = collect_files(paths, project_root)
    modules = load_modules(files, project_root)
    findings = run_passes(modules, ProjectContext(modules))
    entries = load_baseline(None, project_root) if baseline is None else tuple(baseline)
    return apply_baseline(findings, entries, files_checked=len(modules))


def engine_lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro lint --engine [paths...]`` — 0 clean, 1 findings, 2 usage."""
    parser = argparse.ArgumentParser(
        prog="repro lint --engine",
        description=(
            "Static analysis over the repro source tree itself: tensor "
            "purity (EL1xx), lock discipline (EL2xx), exception/import "
            "policy (EL3xx), stats counter drift (EL4xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed src/repro tree)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"suppressions file (default: {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--project-root",
        type=Path,
        default=None,
        help=(
            "root that finding paths (and baseline entries) are "
            "relative to (default: the repo the package was loaded from)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    try:
        entries: Optional[Sequence[Suppression]]
        if args.no_baseline:
            entries = ()
        elif args.baseline is not None:
            entries = load_baseline(args.baseline)
        else:
            entries = None
        report = lint_paths(
            paths=args.paths or None,
            project_root=args.project_root,
            baseline=entries,
        )
    except (LintBaselineError, OSError, SyntaxError) as exc:
        print(f"engine lint error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1
