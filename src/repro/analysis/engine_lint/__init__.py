"""Engine-invariant static analysis over the repro source tree.

Sibling of the ACQ query analyzer: where :mod:`repro.analysis.passes`
checks a *user query* before execution, this package checks the
*engine's own source* for the invariants its concurrency and caching
design depends on — tensor purity (EL1xx), lock discipline (EL2xx),
exception/import policy (EL3xx, absorbed from the retired
``tools/lint_invariants.py``), stats counter drift (EL4xx) and
process/shared-memory safety (EL5xx).

Entry points: ``repro lint --engine`` on the command line,
:func:`lint_paths` from code. The committed baseline
(``tools/engine_lint_baseline.txt``) records reviewed findings with a
mandatory reason; the gate fails on anything unsuppressed.
"""

from repro.analysis.engine_lint.driver import (
    DEFAULT_BASELINE,
    collect_files,
    default_project_root,
    default_source_root,
    engine_lint_main,
    lint_paths,
    load_baseline,
    load_modules,
)
from repro.analysis.engine_lint.model import (
    EngineFinding,
    EngineLintReport,
    Suppression,
    apply_baseline,
    parse_suppressions,
)
from repro.analysis.engine_lint.passes import (
    ENGINE_PASSES,
    LintModule,
    ProjectContext,
    exception_policy_pass,
    lock_discipline_pass,
    run_passes,
    stats_drift_pass,
    tensor_purity_pass,
)

__all__ = [
    "DEFAULT_BASELINE",
    "ENGINE_PASSES",
    "EngineFinding",
    "EngineLintReport",
    "LintModule",
    "ProjectContext",
    "Suppression",
    "apply_baseline",
    "collect_files",
    "default_project_root",
    "default_source_root",
    "engine_lint_main",
    "exception_policy_pass",
    "lint_paths",
    "load_baseline",
    "load_modules",
    "lock_discipline_pass",
    "parse_suppressions",
    "run_passes",
    "stats_drift_pass",
    "tensor_purity_pass",
]
