"""Finding / suppression / report model of the engine lint.

The engine lint (``repro lint --engine``) analyzes *this repository's
own source* rather than a user's ACQ, so its findings point at Python
files and lines instead of SQL character spans. Every finding carries a
stable ``EL###`` (or ``ACQ###``) code, a repo-relative path, a 1-based
``line:col`` span, and the dotted qualname of the enclosing
class/function — enough for a reviewer to jump straight to the
offending statement and for the baseline file to address it stably.

Baseline suppressions. The gate's contract is "every finding is either
fixed or explicitly suppressed with a reason". Suppressions live in a
committed text file (one per line)::

    # code  path[:qualname]  reason...
    EL103  src/repro/core/grid_explore.py:_vector_ops  callers copy first

A suppression matches a finding when the code and path are equal and
the qualname is empty, ``*``, the finding's qualname, or a dotted
prefix of it (so suppressing ``_vector_ops`` also covers the lambdas
defined inside it). Reasons are mandatory: an entry without one is a
parse error, keeping "why is this ok" in the file forever. Line
numbers are deliberately *not* part of the match — baselines must
survive unrelated edits above the finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import LintBaselineError


@dataclass(frozen=True)
class EngineFinding:
    """One engine-lint finding, pinned to a source span.

    Attributes:
        code: stable identifier (``EL101``...), documented in
            ``docs/ANALYSIS.md``.
        message: what is wrong.
        path: repo-relative posix path of the offending file.
        line: 1-based source line of the offending node.
        col: 1-based source column of the offending node.
        symbol: dotted qualname of the enclosing scope
            (``TiledGridExplorer.prime_cells``); empty at module level.
        hint: how to fix it, when the pass can tell.
    """

    code: str
    message: str
    path: str
    line: int
    col: int
    symbol: str = ""
    hint: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        where = f" (in {self.symbol})" if self.symbol else ""
        lines = [f"{self.location}: {self.code} {self.message}{where}"]
        if self.hint:
            lines.append(f"  = help: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload: dict = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.symbol:
            payload["symbol"] = self.symbol
        if self.hint:
            payload["hint"] = self.hint
        return payload


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: (code, path, qualname prefix) plus a reason."""

    code: str
    path: str
    symbol: str
    reason: str
    lineno: int = 0

    def matches(self, finding: EngineFinding) -> bool:
        if self.code != finding.code or self.path != finding.path:
            return False
        if self.symbol in ("", "*"):
            return True
        return finding.symbol == self.symbol or finding.symbol.startswith(
            self.symbol + "."
        )

    def render(self) -> str:
        where = f"{self.path}:{self.symbol}" if self.symbol else self.path
        return f"{self.code} {where}  # {self.reason}"


def parse_suppressions(text: str, origin: str = "<baseline>") -> tuple:
    """Parse a baseline file into :class:`Suppression` entries.

    Grammar per non-comment line: ``CODE LOCATION REASON...`` where
    ``LOCATION`` is ``path`` or ``path:qualname``. A missing reason is
    an error — the file is the audit trail, not a mute button.
    """
    entries: list[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            raise LintBaselineError(
                f"{origin}:{lineno}: suppression needs "
                f"'CODE path[:qualname] reason', got {line!r}"
            )
        code, location, reason = parts
        path, _, symbol = location.partition(":")
        entries.append(
            Suppression(
                code=code,
                path=path,
                symbol=symbol,
                reason=reason.strip(),
                lineno=lineno,
            )
        )
    return tuple(entries)


@dataclass(frozen=True)
class EngineLintReport:
    """Outcome of one engine-lint run over a file set.

    ``findings`` is everything the passes produced; applying the
    baseline partitions it into ``unsuppressed`` (gate failures) and
    ``suppressed`` pairs. ``unused`` lists baseline entries that
    matched nothing — stale suppressions worth deleting, reported but
    never failing the gate (they would make every fix a two-step
    dance).
    """

    findings: tuple[EngineFinding, ...]
    suppressed: tuple[tuple[EngineFinding, Suppression], ...] = ()
    unsuppressed: tuple[EngineFinding, ...] = ()
    unused: tuple[Suppression, ...] = ()
    files_checked: int = 0
    extra_notes: tuple[str, ...] = field(default=(), compare=False)

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def codes(self) -> tuple[str, ...]:
        return tuple(f.code for f in self.findings)

    def render(self) -> str:
        parts: list[str] = []
        for finding in self.unsuppressed:
            parts.append(finding.render())
        if self.suppressed:
            parts.append(
                f"{len(self.suppressed)} finding(s) suppressed by baseline:"
            )
            for finding, entry in self.suppressed:
                parts.append(
                    f"  {finding.location}: {finding.code} "
                    f"[{entry.reason}]"
                )
        for entry in self.unused:
            parts.append(
                f"note: unused suppression at baseline line "
                f"{entry.lineno}: {entry.render()}"
            )
        for note in self.extra_notes:
            parts.append(f"note: {note}")
        verdict = "FAILED" if self.unsuppressed else "ok"
        parts.append(
            f"engine lint {verdict}: {len(self.unsuppressed)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "unsuppressed": [f.to_dict() for f in self.unsuppressed],
            "suppressed": [
                {**f.to_dict(), "reason": s.reason}
                for f, s in self.suppressed
            ],
            "unused_suppressions": [
                {"code": s.code, "path": s.path, "symbol": s.symbol}
                for s in self.unused
            ],
        }


def apply_baseline(
    findings: Iterable[EngineFinding],
    baseline: Iterable[Suppression],
    files_checked: int = 0,
) -> EngineLintReport:
    """Partition findings by the baseline into a final report."""
    ordered = tuple(
        sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    )
    entries = tuple(baseline)
    used: set[Suppression] = set()
    suppressed: list[tuple[EngineFinding, Suppression]] = []
    unsuppressed: list[EngineFinding] = []
    for finding in ordered:
        entry = next((s for s in entries if s.matches(finding)), None)
        if entry is None:
            unsuppressed.append(finding)
        else:
            used.add(entry)
            suppressed.append((finding, entry))
    unused = tuple(s for s in entries if s not in used)
    return EngineLintReport(
        findings=ordered,
        suppressed=tuple(suppressed),
        unsuppressed=tuple(unsuppressed),
        unused=unused,
        files_checked=files_checked,
    )
