"""Pre-flight static analysis of Aggregation Constrained Queries.

Two entry points:

* :func:`analyze` — run every pass over an already-bound
  :class:`~repro.core.query.Query` plus its catalog;
* :func:`analyze_sql` — the linter path: parse and bind ACQ dialect
  text, converting parse/bind failures into diagnostics (a linter
  reports, it does not throw), then analyze the bound query with spans
  pointing back into the source text.

Nothing in this module executes a sub-query: every check is derived
from the bound query object and catalog statistics, so analysis cost
is independent of data size.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    sort_diagnostics,
)
from repro.analysis.passes import PASSES, AnalysisContext
from repro.core.acquire import AcquireConfig
from repro.core.ontology import OntologyTree
from repro.core.query import Query
from repro.engine.catalog import Database
from repro.exceptions import (
    BindError,
    OSPViolationError,
    ParseError,
    QueryModelError,
)
from repro.sqlext.binder import QuerySpans, bind_with_spans
from repro.sqlext.parser import parse_statement


def analyze(
    query: Query,
    database: Database,
    config: Optional[AcquireConfig] = None,
    *,
    source: Optional[str] = None,
    spans: Optional[QuerySpans] = None,
) -> AnalysisReport:
    """Run all static-analysis passes over a bound query."""
    context = AnalysisContext(
        query=query,
        database=database,
        config=config or AcquireConfig(),
        spans=spans,
    )
    diagnostics: list[Diagnostic] = []
    for analysis_pass in PASSES:
        diagnostics.extend(analysis_pass(context))
    return AnalysisReport(
        diagnostics=sort_diagnostics(diagnostics),
        query=query,
        source=source if source is not None else _span_source(spans),
    )


def analyze_sql(
    text: str,
    database: Database,
    ontologies: Optional[Mapping[str, OntologyTree]] = None,
    config: Optional[AcquireConfig] = None,
    name: str = "acq",
) -> AnalysisReport:
    """Lint ACQ dialect text: front-end failures become diagnostics."""
    try:
        statement = parse_statement(text)
    except ParseError as exc:
        span = (
            Span(exc.position, exc.position + 1)
            if exc.position is not None
            else None
        )
        return _front_end_report(text, "ACQ001", str(exc), span)

    constraint_span = (
        Span(*statement.constraint.span)
        if statement.constraint is not None
        and statement.constraint.span is not None
        else None
    )
    try:
        query, spans = bind_with_spans(
            statement, database, ontologies, name, source=text
        )
    except OSPViolationError as exc:
        return _front_end_report(text, "ACQ301", str(exc), constraint_span)
    except BindError as exc:
        return _front_end_report(text, "ACQ002", str(exc), None)
    except QueryModelError as exc:
        return _front_end_report(text, "ACQ003", str(exc), None)

    return analyze(query, database, config, source=text, spans=spans)


def _front_end_report(
    source: str, code: str, message: str, span: Optional[Span]
) -> AnalysisReport:
    hints = {
        "ACQ001": "fix the SQL syntax; see docs/API.md for the dialect",
        "ACQ002": "check table/column names against the loaded catalog",
        "ACQ003": "the query violates the ACQ model (paper section 2.1)",
        "ACQ301": (
            "use an OSP aggregate: COUNT, SUM, MIN, MAX, AVG "
            "(paper section 2.6)"
        ),
    }
    diagnostic = Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        hint=hints.get(code),
        span=span,
    )
    return AnalysisReport(
        diagnostics=(diagnostic,), query=None, source=source
    )


def _span_source(spans: Optional[QuerySpans]) -> Optional[str]:
    return spans.source if spans is not None else None
