"""Pre-flight static analysis for ACQs (no execution required).

ACQUIRE's search cost is decided before the first sub-query runs: the
grid size of the refined space, the satisfiability of the CONSTRAINT
clause, and OSP compliance of the aggregate are all statically
determinable from the bound query plus catalog statistics (paper
sections 2.2, 2.6, 4). This package checks them up front:

* :func:`analyze` / :func:`analyze_sql` — run the passes, returning an
  :class:`AnalysisReport` of :class:`Diagnostic` objects with stable
  ``ACQ###`` codes (documented in ``docs/ANALYSIS.md``);
* ``Acquire(...).run(query, config, strict=True)`` — driver pre-flight
  that raises :class:`~repro.exceptions.AnalysisError` on ERROR-level
  findings;
* ``python -m repro lint`` — the command-line linter.
"""

from repro.analysis.analyzer import analyze, analyze_sql
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
)
from repro.analysis.passes import (
    PASSES,
    AnalysisContext,
    aggregate_pass,
    cost_pass,
    plan_pass,
    refinability_pass,
    satisfiability_pass,
)

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "Diagnostic",
    "PASSES",
    "Severity",
    "Span",
    "aggregate_pass",
    "analyze",
    "analyze_sql",
    "cost_pass",
    "plan_pass",
    "refinability_pass",
    "satisfiability_pass",
]
