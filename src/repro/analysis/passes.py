"""The analyzer's passes: pure functions from bound query + catalog to
diagnostics.

Each pass inspects the bound :class:`~repro.core.query.Query` and the
:class:`~repro.engine.catalog.Database` catalog statistics *without
executing any sub-query*. Everything here is therefore conservative:
an ERROR is only emitted when the constraint is provably unmeetable
from catalog bounds alone (paper sections 2.2, 2.6 and 4 make these
quantities statically determinable), and anything that depends on the
actual data distribution stays a WARNING or a note.

Diagnostic code map (see ``docs/ANALYSIS.md`` for examples):

====== ======== =====================================================
code   severity meaning
====== ======== =====================================================
ACQ001 ERROR    SQL text could not be parsed
ACQ002 ERROR    parsed query could not be bound against the catalog
ACQ003 ERROR    bound query violates the ACQ model
ACQ101 ERROR    COUNT target above the maximum achievable count
ACQ102 ERROR    SUM target above the maximum achievable sum
ACQ103 ERROR    MIN/MAX/AVG target outside the column's value range
ACQ104 WARNING  constraint is trivially satisfied by any refinement
ACQ201 ERROR    zero-dimensional query (every predicate NOREFINE)
ACQ202 WARNING  dead refinement axis (expansion admits nothing new)
ACQ203 WARNING  contraction constraint but no predicate can shrink
ACQ301 ERROR    aggregate lacks the optimal substructure property
ACQ302 WARNING  AVG is undefined (NaN) over empty result sets
ACQ303 WARNING  SUM over negative values is not monotone expanding
ACQ401 WARNING  refined-space grid exceeds the search budget
ACQ402 WARNING  unbounded refinement axis (no statistics, no limit)
ACQ403 INFO     search-cost estimate (grid size, per-layer counts)
ACQ501 WARNING  grid exceeds materialize_cell_cap (ERROR when the
                materialized engine is forced — execution would raise)
ACQ502 WARNING  config-derived axis extents defeat grid-cache key
                sharing (only with a grid cache configured)
ACQ503 INFO     predicted explore plan (mode, reason, visited cells)
====== ======== =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.core.acquire import AcquireConfig
from repro.core.interval import Interval
from repro.core.predicate import (
    CategoricalPredicate,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import ConstraintOp, Query
from repro.core.refined_space import MAX_COORD_CAP, RefinedSpace
from repro.engine import expression as engine_expr
from repro.engine.catalog import Database
from repro.engine.statistics import ColumnStats
from repro.sqlext.binder import QuerySpans

#: How many leading layers the cost note reports.
_REPORTED_LAYERS = 6


@dataclass
class AnalysisContext:
    """Everything a pass may consult. No execution handles in here."""

    query: Query
    database: Database
    config: AcquireConfig
    spans: Optional[QuerySpans] = None

    # -- span plumbing --------------------------------------------------
    def predicate_span(self, name: str) -> Optional[Span]:
        if self.spans is None:
            return None
        raw = self.spans.predicate_span(name)
        return Span(*raw) if raw is not None else None

    def constraint_span(self, index: int = 0) -> Optional[Span]:
        """Span of the index-th constraint clause (0 = the primary).

        Multi-constraint ACQs carry one span per clause, so each
        diagnostic can point at the constraint it is about.
        """
        if self.spans is None:
            return None
        raw = self.spans.constraint_span_at(index)
        return Span(*raw) if raw is not None else None

    # -- catalog plumbing -----------------------------------------------
    def column_stats(
        self, expr: engine_expr.Expression
    ) -> Optional[ColumnStats]:
        """Statistics when ``expr`` is a bare column reference."""
        if isinstance(expr, engine_expr.ColumnRef):
            if not self.database.has_table(expr.table):
                return None
            if not self.database.table(expr.table).schema.has_column(
                expr.column
            ):
                return None
            return self.database.column_stats(expr.table, expr.column)
        return None

    def domain_of(self, predicate: Predicate) -> Optional[Interval]:
        """Observed domain of a select predicate's function, if known."""
        if not isinstance(predicate, SelectPredicate):
            return None
        stats = self.column_stats(predicate.expr)
        if stats is None or math.isnan(stats.min_value):
            return None
        return Interval(stats.min_value, stats.max_value)


AnalysisPass = Callable[[AnalysisContext], Iterable[Diagnostic]]


# ----------------------------------------------------------------------
# Pass 1: constraint satisfiability (ACQ1xx)
# ----------------------------------------------------------------------
def satisfiability_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    """Compare each constraint target against catalog upper bounds.

    Full refinement can never admit more than the cross product of the
    FROM tables (COUNT), more mass than a column's total sum (SUM over
    a single table with non-negative values), or values outside a
    column's observed [min, max] (MIN / MAX / AVG). Targets beyond
    those bounds are provably unmeetable without running anything.
    Multi-constraint ACQs are conjunctions, so every clause is checked:
    one provably-unmeetable clause sinks the whole query.
    """
    for index, constraint in enumerate(ctx.query.constraints):
        yield from _constraint_satisfiability(
            ctx, constraint, ctx.constraint_span(index)
        )


def _constraint_satisfiability(
    ctx: AnalysisContext, constraint, span: Optional[Span]
) -> Iterable[Diagnostic]:
    aggregate = constraint.spec.aggregate
    op = constraint.op
    target = constraint.target
    subject = constraint.describe()

    def beyond(bound: float) -> bool:
        """Target provably unreachable for expansion-flavoured ops."""
        if op in (ConstraintOp.EQ, ConstraintOp.GE):
            return target > bound
        if op is ConstraintOp.GT:
            return target >= bound
        return False

    if aggregate.name == "COUNT":
        max_count = 1.0
        for table in ctx.query.tables:
            max_count *= len(ctx.database.table(table))
        if beyond(max_count):
            yield Diagnostic(
                code="ACQ101",
                severity=Severity.ERROR,
                message=(
                    f"constraint {subject} can never hold: even the full "
                    f"cross product of {', '.join(ctx.query.tables)} has "
                    f"only {max_count:g} rows"
                ),
                hint="lower the target X or query a larger dataset",
                span=span,
                subject=subject,
            )
        elif op in (ConstraintOp.LE, ConstraintOp.LT) and target >= max_count:
            yield _trivial(subject, span)
        elif op is ConstraintOp.GE and target == 0:
            yield _trivial(subject, span)

    elif aggregate.name == "SUM":
        stats = ctx.column_stats(constraint.spec.attribute)
        # Joins can duplicate rows, so the column total only bounds
        # single-table queries; negative values break the bound too.
        if (
            stats is not None
            and len(ctx.query.tables) == 1
            and not math.isnan(stats.total)
            and stats.min_value >= 0
            and beyond(stats.total)
        ):
            yield Diagnostic(
                code="ACQ102",
                severity=Severity.ERROR,
                message=(
                    f"constraint {subject} can never hold: the column sums "
                    f"to {stats.total:g} over the whole table"
                ),
                hint="lower the target X below the column's total sum",
                span=span,
                subject=subject,
            )

    elif aggregate.name in ("MIN", "MAX", "AVG"):
        stats = ctx.column_stats(constraint.spec.attribute)
        if stats is not None and not math.isnan(stats.min_value):
            low, high = stats.min_value, stats.max_value
            reachable = True
            if op is ConstraintOp.EQ:
                reachable = low <= target <= high
            elif op in (ConstraintOp.GE, ConstraintOp.GT):
                reachable = (
                    target <= high if op is ConstraintOp.GE else target < high
                )
            elif op in (ConstraintOp.LE, ConstraintOp.LT):
                reachable = (
                    target >= low if op is ConstraintOp.LE else target > low
                )
            if not reachable:
                yield Diagnostic(
                    code="ACQ103",
                    severity=Severity.ERROR,
                    message=(
                        f"constraint {subject} can never hold: every "
                        f"{aggregate.name} over this column lies in "
                        f"[{low:g}, {high:g}]"
                    ),
                    hint=(
                        "pick a target inside the column's observed value "
                        "range"
                    ),
                    span=span,
                    subject=subject,
                )


def _trivial(subject: str, span: Optional[Span]) -> Diagnostic:
    return Diagnostic(
        code="ACQ104",
        severity=Severity.WARNING,
        message=(
            f"constraint {subject} is trivially satisfied by every "
            "refinement; the search will return the original query"
        ),
        hint="tighten the target X to make the constraint informative",
        span=span,
        subject=subject,
    )


# ----------------------------------------------------------------------
# Pass 2: refinability (ACQ2xx)
# ----------------------------------------------------------------------
def refinability_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    """Check that the refined space has live dimensions to search."""
    query = ctx.query
    if query.dimensionality == 0:
        if query.predicates:
            message = (
                "every predicate is marked NOREFINE; the refined space "
                "has no dimensions and ACQUIRE cannot expand anything"
            )
            hint = "drop NOREFINE from at least one predicate"
        else:
            message = (
                "the query has no predicates; there is nothing to refine"
            )
            hint = "add at least one refinable WHERE predicate"
        yield Diagnostic(
            code="ACQ201",
            severity=Severity.ERROR,
            message=message,
            hint=hint,
            span=ctx.constraint_span(),
        )
        return

    for predicate in query.refinable_predicates:
        dead = False
        detail = ""
        if isinstance(predicate, SelectPredicate):
            domain = ctx.domain_of(predicate)
            if domain is not None and predicate.max_useful_score(domain) <= 0:
                dead = True
                detail = (
                    f"its interval already spans the column's observed "
                    f"domain [{domain.lo:g}, {domain.hi:g}]"
                )
        elif isinstance(predicate, CategoricalPredicate):
            base = predicate.ontology.expand(predicate.accepted, 0)
            full = predicate.ontology.expand(
                predicate.accepted, predicate.ontology.depth
            )
            if full <= base:
                dead = True
                detail = (
                    "rolling the accepted values up the ontology admits "
                    "no new categories"
                )
        if dead:
            yield Diagnostic(
                code="ACQ202",
                severity=Severity.WARNING,
                message=(
                    f"refinement axis {predicate.name!r} is dead: {detail}"
                ),
                hint=(
                    "mark the predicate NOREFINE to shrink the search "
                    "grid, or widen the data"
                ),
                span=ctx.predicate_span(predicate.name),
                subject=predicate.name,
            )

    op = query.constraint.op
    if op in (ConstraintOp.LE, ConstraintOp.LT):
        if all(
            predicate.max_shrink_score <= 0
            for predicate in query.refinable_predicates
        ):
            yield Diagnostic(
                code="ACQ203",
                severity=Severity.WARNING,
                message=(
                    f"constraint operator {op.value!r} requires contraction, "
                    "but no refinable predicate can shrink (equality and "
                    "categorical predicates only expand)"
                ),
                hint=(
                    "make a one-sided range predicate refinable, or use an "
                    "expansion operator (=, >=, >)"
                ),
                span=ctx.constraint_span(),
            )


# ----------------------------------------------------------------------
# Pass 3: aggregate / OSP checks (ACQ3xx)
# ----------------------------------------------------------------------
def aggregate_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    """Edge cases of the bound aggregate.

    Non-OSP aggregates never bind (``get_aggregate`` rejects them; the
    SQL entry point turns that into ACQ301), so this pass covers the
    statically detectable soft spots of the ones that do — every clause
    of a multi-constraint conjunction gets its own check.
    """
    for index, constraint in enumerate(ctx.query.constraints):
        yield from _constraint_aggregate_checks(
            ctx, constraint, ctx.constraint_span(index)
        )


def _constraint_aggregate_checks(
    ctx: AnalysisContext, constraint, span: Optional[Span]
) -> Iterable[Diagnostic]:
    aggregate = constraint.spec.aggregate

    if aggregate.name == "AVG":
        yield Diagnostic(
            code="ACQ302",
            severity=Severity.WARNING,
            message=(
                "AVG is undefined (NaN) over empty result sets; if the "
                "original query matches no rows the first layers of the "
                "search cannot evaluate the constraint"
            ),
            hint=(
                "consider a COUNT(*) >= 1 sanity run, or a SUM constraint "
                "if total mass is what you are after"
            ),
            span=span,
            subject=constraint.describe(),
        )

    if aggregate.name == "SUM":
        stats = ctx.column_stats(constraint.spec.attribute)
        if stats is not None and stats.min_value < 0:
            yield Diagnostic(
                code="ACQ303",
                severity=Severity.WARNING,
                message=(
                    "SUM over a column with negative values "
                    f"(min {stats.min_value:g}) is not monotone under "
                    "expansion; layer-level early stopping may prune "
                    "answers"
                ),
                hint="verify results with a non-negative measure column",
                span=span,
                subject=constraint.describe(),
            )


# ----------------------------------------------------------------------
# Pass 4: search-cost pre-estimation (ACQ4xx)
# ----------------------------------------------------------------------
def _build_space(
    ctx: AnalysisContext,
) -> tuple[RefinedSpace, list[str]]:
    """Rebuild the driver's refined space from catalog statistics alone.

    Per-dimension caps come from predicate limits and observed
    attribute domains; axes with neither (no statistics, no explicit
    limit) fall back to the configured cap and are returned by name as
    ``unbounded`` — both the ACQ4xx and ACQ5xx passes reason about
    those.
    """
    query = ctx.query
    max_scores = []
    unbounded: list[str] = []
    for predicate in query.refinable_predicates:
        cap = (
            predicate.limit
            if predicate.limit is not None
            else ctx.config.dim_cap_default
        )
        useful = math.inf
        if isinstance(predicate, SelectPredicate):
            domain = ctx.domain_of(predicate)
            if domain is not None:
                useful = predicate.max_useful_score(domain)
            else:
                unbounded.append(predicate.name)
        elif isinstance(predicate, CategoricalPredicate):
            useful = predicate.max_useful_score(Interval(0.0, 0.0))
        elif isinstance(predicate, JoinPredicate):
            # The delta domain needs a cross product to observe; the
            # driver's cap is the only static bound.
            unbounded.append(predicate.name)
        max_scores.append(min(cap, useful))

    space = RefinedSpace(
        query, ctx.config.gamma, max_scores, ctx.config.norm, ctx.config.step
    )
    return space, unbounded


def cost_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    """Estimate the refined-space grid before any query runs.

    Rebuilds the driver's grid sizing from catalog statistics alone:
    per-dimension caps come from predicate limits and the observed
    attribute domains, the step is ``gamma / d`` (paper Theorem 1), so
    the grid holds roughly ``(100 / (gamma / d))^d`` queries when every
    axis spans its full percent range. Callers can raise ``gamma`` (or
    add per-predicate limits) *before* burning compute.
    """
    query = ctx.query
    if query.dimensionality == 0:
        return  # ACQ201 already covers this

    space, unbounded = _build_space(ctx)

    for name in unbounded:
        predicate = next(
            p for p in query.refinable_predicates if p.name == name
        )
        if predicate.limit is None:
            yield Diagnostic(
                code="ACQ402",
                severity=Severity.WARNING,
                message=(
                    f"refinement axis {name!r} has no catalog statistics; "
                    f"its extent falls back to the configured cap "
                    f"({ctx.config.dim_cap_default:g} PScore)"
                ),
                hint="set an explicit per-predicate limit (paper 7.1)",
                span=ctx.predicate_span(name),
                subject=name,
            )

    grid = space.grid_size
    budget = ctx.config.max_grid_queries
    if grid > budget:
        capped = any(c >= MAX_COORD_CAP for c in space.max_coords)
        yield Diagnostic(
            code="ACQ401",
            severity=Severity.WARNING,
            message=(
                f"the refined space holds {'>' if capped else ''}{grid:g} "
                f"grid queries (d={space.d}, step={space.step:g}), beyond "
                f"the search budget of {budget:g}"
            ),
            hint=(
                "raise gamma (coarser grid), add predicate limits, or "
                "raise max_grid_queries if the cost is intended"
            ),
        )

    layers = space.layer_sizes(_REPORTED_LAYERS)
    yield Diagnostic(
        code="ACQ403",
        severity=Severity.INFO,
        message=(
            f"search-cost estimate: d={space.d}, step={space.step:g}, "
            f"extents={list(space.max_coords)}, grid={grid:g} queries, "
            f"first layers {layers}"
        ),
    )


# ----------------------------------------------------------------------
# Pass 5: plan-cost / cache-geometry checks (ACQ5xx)
# ----------------------------------------------------------------------
class _PlanProbe:
    """Minimal stand-in for an evaluation layer during planning.

    :func:`~repro.core.plan.choose_explore_mode` only reads
    ``layer.database`` (for statistics) and optional cache-key hooks
    (absent here, so the probe always keys as a process-local layer).
    """

    def __init__(self, database: Database) -> None:
        self.database = database


def plan_pass(ctx: AnalysisContext) -> Iterable[Diagnostic]:
    """Predict the explore plan and flag grid/cache geometry hazards.

    ACQ501 fires when the refined grid cannot fit a whole-grid tensor
    (``materialize_cell_cap``) — a WARNING under ``auto``/``tiled``
    (the tiled engine absorbs it at a seam-stitching cost), an ERROR
    when ``explore_mode='materialized'`` is forced, because execution
    would raise :class:`~repro.exceptions.QueryModelError`.

    ACQ502 fires when a grid cache is configured but some axis extent
    derives from ``dim_cap_default`` rather than the query or the data
    (no catalog statistics, no explicit limit): the cache key then
    embeds a config value, so tensors cached under one configuration
    can never be shared with another — silently defeating the
    persistent tier.

    ACQ503 reports the plan the driver would pick, so benchmark
    configs see mode flips (incremental vs tiled) before running.
    """
    from repro.core.grid_explore import tile_shape_for
    from repro.core.plan import choose_explore_mode
    from repro.exceptions import QueryModelError

    query = ctx.query
    if query.dimensionality == 0:
        return  # ACQ201 already covers this

    space, unbounded = _build_space(ctx)
    grid = space.grid_size
    cap = ctx.config.materialize_cell_cap

    if grid > cap:
        tile_shape = tile_shape_for(space, cap)
        tile_cells = math.prod(tile_shape)
        tiles = math.prod(
            -(-(limit + 1) // width)
            for limit, width in zip(space.max_coords, tile_shape)
        )
        forced = ctx.config.explore_mode == "materialized"
        yield Diagnostic(
            code="ACQ501",
            severity=Severity.ERROR if forced else Severity.WARNING,
            message=(
                f"the refined grid holds {grid:g} cells, over "
                f"materialize_cell_cap ({cap:g}); "
                + (
                    "explore_mode='materialized' would raise at run time"
                    if forced
                    else (
                        f"the tiled engine splits it into {tiles} tiles "
                        f"of {tile_cells:g} cells (shape "
                        f"{list(tile_shape)})"
                    )
                )
            ),
            hint=(
                "raise gamma or add predicate limits to shrink the grid, "
                "raise materialize_cell_cap, or use explore_mode='auto'"
            ),
        )

    if unbounded:
        grid_cache = ctx.config.resolve_grid_cache()
        if grid_cache is not None:
            names = ", ".join(repr(name) for name in sorted(unbounded))
            yield Diagnostic(
                code="ACQ502",
                severity=Severity.WARNING,
                message=(
                    f"a grid cache is configured but axis extent(s) for "
                    f"{names} derive from dim_cap_default "
                    f"({ctx.config.dim_cap_default:g}), not the query or "
                    "data; cached tensors key on that config value and "
                    "cannot be shared across configurations"
                ),
                hint=(
                    "set explicit per-predicate limits so cache keys "
                    "depend only on the query and the data"
                ),
            )

    try:
        plan = choose_explore_mode(
            _PlanProbe(ctx.database), query, space, ctx.config
        )
    except QueryModelError:
        return  # forced-materialized over cap: ACQ501 already reported
    visited = (
        f", estimated visited={plan.estimated_visited:g} cells"
        if plan.estimated_visited
        else ""
    )
    yield Diagnostic(
        code="ACQ503",
        severity=Severity.INFO,
        message=(
            f"plan estimate: explore mode {plan.mode!r} "
            f"({plan.reason}), grid={grid:g} cells{visited}"
        ),
    )


#: Pass registry, in execution order.
PASSES: tuple[AnalysisPass, ...] = (
    satisfiability_pass,
    refinability_pass,
    aggregate_pass,
    cost_pass,
    plan_pass,
)
