"""Structured diagnostics emitted by the ACQ static analyzer.

Every finding is a :class:`Diagnostic` with a stable code (``ACQ###``),
a severity, a human message, an optional fix-it hint, and — when the
query came through the SQL front-end — a span pointing back at the
offending clause in the source text. A whole run's findings are
collected into an :class:`AnalysisReport`, which renders them in a
compiler-style format and can convert ERROR-level findings into a typed
:class:`~repro.exceptions.AnalysisError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.query import Query


class Severity(enum.Enum):
    """Diagnostic severity; only ERROR makes a report failing."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Span:
    """Half-open ``[start, end)`` character range into the SQL source."""

    start: int
    end: int

    def line_col(self, source: str) -> tuple[int, int]:
        """1-based (line, column) of the span start within ``source``."""
        prefix = source[: self.start]
        line = prefix.count("\n") + 1
        column = self.start - (prefix.rfind("\n") + 1) + 1
        return line, column


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: stable identifier (``ACQ101``...), documented in
            ``docs/ANALYSIS.md``.
        severity: ERROR diagnostics fail strict pre-flight; WARNING and
            INFO never do.
        message: what is wrong (or worth knowing).
        hint: how to fix it, when the analyzer can tell.
        span: source location, when the query came from SQL text.
        subject: the predicate / aggregate the finding is about.
    """

    code: str
    severity: Severity
    message: str
    hint: Optional[str] = None
    span: Optional[Span] = None
    subject: Optional[str] = None

    def render(self, source: Optional[str] = None) -> str:
        """Compiler-style rendering, with a source excerpt if possible."""
        lines = [f"{self.severity}[{self.code}]: {self.message}"]
        if source is not None and self.span is not None:
            line_no, column = self.span.line_col(source)
            # A span at EOF (e.g. a parse error on truncated input) can
            # point one line past the last; clamp to something visible.
            source_lines = source.splitlines() or [""]
            source_line = source_lines[min(line_no - 1, len(source_lines) - 1)]
            width = max(
                1, min(self.span.end - self.span.start, len(source_line))
            )
            lines.append(f"  --> line {line_no}, column {column}")
            lines.append(f"  | {source_line}")
            lines.append("  | " + " " * (column - 1) + "^" * width)
        elif self.subject is not None:
            lines[0] += f" (at {self.subject!r})"
        if self.hint is not None:
            lines.append(f"  = help: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly representation (``repro lint --json``)."""
        payload: dict = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.span is not None:
            payload["span"] = {"start": self.span.start, "end": self.span.end}
        if self.subject is not None:
            payload["subject"] = self.subject
        return payload


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics produced by one analyzer run over one ACQ."""

    diagnostics: tuple[Diagnostic, ...]
    query: Optional["Query"] = None
    source: Optional[str] = field(default=None, compare=False)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def has_errors(self) -> bool:
        return any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    @property
    def ok(self) -> bool:
        return not self.has_errors

    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def raise_if_errors(self) -> None:
        """Raise :class:`AnalysisError` when ERROR diagnostics exist."""
        if self.has_errors:
            raise AnalysisError(self)

    def render(self) -> str:
        """Render every diagnostic plus a one-line summary."""
        parts = [d.render(self.source) for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        verdict = "FAILED" if n_err else "ok"
        parts.append(
            f"analysis {verdict}: {n_err} error(s), {n_warn} warning(s), "
            f"{len(self.diagnostics) - n_err - n_warn} note(s)"
        )
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def sort_diagnostics(
    diagnostics: list[Diagnostic],
) -> tuple[Diagnostic, ...]:
    """Stable order: errors first, then warnings, then notes, by code."""
    return tuple(
        sorted(diagnostics, key=lambda d: (d.severity.rank, d.code))
    )
