"""ACQUIRE — Refinement Driven Processing of Aggregation Constrained Queries.

A complete, from-scratch reproduction of the EDBT 2016 paper by Vartak,
Raghavan, Rundensteiner and Madden: the ACQ query model and SQL dialect
(``CONSTRAINT`` / ``NOREFINE``), the ACQUIRE Expand/Explore search with
incremental aggregate computation, two interchangeable evaluation
layers (in-memory columnar and SQLite), the compared baseline
techniques (Top-k, BinSearch, TQGen), a TPC-H-shaped data generator,
and the full experiment harness regenerating the paper's figures.

Quickstart::

    from repro import (
        Acquire, AcquireConfig, Database, MemoryBackend, parse_acq,
    )

    db = Database()
    db.create_table("users", {"age": ages, "income": incomes})
    query = parse_acq(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 1000 "
        "WHERE users.age <= 30 AND users.income <= 50000",
        db,
    )
    result = Acquire(MemoryBackend(db)).run(query, AcquireConfig(delta=0.05))
    print(result.summary())
"""

from repro.core import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    Acquire,
    AcquireConfig,
    AcquireResult,
    AggregateConstraint,
    AggregateSpec,
    CategoricalPredicate,
    ConstraintOp,
    Direction,
    HingeError,
    Interval,
    JoinPredicate,
    LInfNorm,
    LpNorm,
    OntologyTree,
    Query,
    RefinedQuery,
    RefinedSpace,
    SelectPredicate,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.engine import (
    Database,
    EvaluationLayer,
    MemoryBackend,
    SamplingBackend,
    SQLiteBackend,
    Table,
    col,
    const,
)
from repro.sqlext import format_query, format_refined_query, parse_acq
from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze,
    analyze_sql,
)
from repro.exceptions import AnalysisError

__version__ = "1.0.0"

__all__ = [
    "Acquire",
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "analyze",
    "analyze_sql",
    "AcquireConfig",
    "AcquireResult",
    "AggregateConstraint",
    "AggregateSpec",
    "AVG",
    "CategoricalPredicate",
    "col",
    "const",
    "ConstraintOp",
    "COUNT",
    "Database",
    "Direction",
    "EvaluationLayer",
    "format_query",
    "format_refined_query",
    "get_aggregate",
    "HingeError",
    "Interval",
    "JoinPredicate",
    "LInfNorm",
    "LpNorm",
    "MAX",
    "MemoryBackend",
    "MIN",
    "OntologyTree",
    "parse_acq",
    "Query",
    "RefinedQuery",
    "RefinedSpace",
    "SamplingBackend",
    "SelectPredicate",
    "SQLiteBackend",
    "SUM",
    "Table",
    "UserDefinedAggregate",
    "__version__",
]
