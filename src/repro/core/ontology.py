"""Ontology trees for categorical predicate refinement (paper 7.3).

The paper measures refinement distance between categorical values via a
taxonomy: rolling an accepted node up one level makes the predicate less
selective (relaxation); drilling down contracts it. Figure 7's examples
(a food-preference tree and a location tree) are reproduced in
``examples/categorical_ontology.py``.

Distance semantics implemented here: the distance from an accepted set
``S`` to a value ``v`` is the minimum number of roll-up steps applied to
some ``s in S`` until the resulting ancestor also covers ``v`` — i.e.
``min_{s in S} depth(s) - depth(lca(s, v))``. Values absent from the
tree are unreachable (infinite distance).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import networkx as nx

from repro.exceptions import OntologyError


class OntologyTree:
    """A rooted taxonomy over categorical values.

    Nodes are strings; edges run parent -> child. Any node (not only a
    leaf) may appear in an accepted set; a node *covers* itself and all
    of its descendants.
    """

    def __init__(self, root: str = "ROOT") -> None:
        self.root = root
        self._graph = nx.DiGraph()
        self._graph.add_node(root)
        self._depth_cache: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, parent: str, child: str) -> None:
        if child == self.root:
            raise OntologyError("the root cannot have a parent")
        if child in self._graph and next(
            self._graph.predecessors(child), None
        ) not in (None, parent):
            raise OntologyError(f"node {child!r} already has a different parent")
        self._graph.add_edge(parent, child)
        self._depth_cache = None

    def add_path(self, *nodes: str) -> None:
        """Add a root-to-leaf path, e.g. ``add_path('Food', 'Greek', 'Gyro')``.

        The first node is attached under the root unless it is the root.
        """
        if not nodes:
            return
        previous = self.root
        for node in nodes:
            if node == previous:
                continue
            self.add_edge(previous, node)
            previous = node

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Sequence[str]], root: str = "ROOT"
    ) -> "OntologyTree":
        """Build a tree from ``{parent: [children, ...]}``."""
        tree = cls(root)
        for parent, children in mapping.items():
            for child in children:
                tree.add_edge(parent, child)
        if not nx.is_arborescence(tree._graph):
            raise OntologyError("mapping does not describe a rooted tree")
        return tree

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __contains__(self, node: object) -> bool:
        return node in self._graph

    @property
    def nodes(self) -> list[str]:
        return list(self._graph.nodes)

    @property
    def depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        depths = self._depths()
        return max(depths.values()) if depths else 0

    def _depths(self) -> dict[str, int]:
        if self._depth_cache is None:
            self._depth_cache = nx.shortest_path_length(self._graph, self.root)
        return self._depth_cache

    def depth_of(self, node: str) -> int:
        try:
            return self._depths()[node]
        except KeyError:
            raise OntologyError(f"node {node!r} not in ontology") from None

    def parent(self, node: str) -> str | None:
        if node == self.root:
            return None
        self.depth_of(node)  # validates membership
        return next(self._graph.predecessors(node))

    def ancestor(self, node: str, levels_up: int) -> str:
        """Roll ``node`` up by ``levels_up`` steps (clamped at the root)."""
        current = node
        for _ in range(levels_up):
            up = self.parent(current)
            if up is None:
                break
            current = up
        return current

    def descendants(self, node: str) -> set[str]:
        self.depth_of(node)
        return set(nx.descendants(self._graph, node)) | {node}

    def leaves_under(self, node: str) -> set[str]:
        return {
            candidate
            for candidate in self.descendants(node)
            if self._graph.out_degree(candidate) == 0
        }

    def lca(self, a: str, b: str) -> str:
        """Lowest common ancestor of two nodes."""
        self.depth_of(a)
        self.depth_of(b)
        ancestors_a = set(nx.ancestors(self._graph, a)) | {a}
        node = b
        while node not in ancestors_a:
            parent = self.parent(node)
            if parent is None:
                return self.root
            node = parent
        return node

    # ------------------------------------------------------------------
    # Refinement semantics
    # ------------------------------------------------------------------
    def distance(self, accepted: Iterable[str], value: str) -> float:
        """Roll-up distance from ``accepted`` to ``value`` (see module doc)."""
        if value not in self._graph:
            return math.inf
        best = math.inf
        for node in accepted:
            if node not in self._graph:
                raise OntologyError(f"accepted value {node!r} not in ontology")
            meet = self.lca(node, value)
            steps = self.depth_of(node) - self.depth_of(meet)
            best = min(best, steps)
        return best

    def expand(self, accepted: Iterable[str], levels: int) -> frozenset[str]:
        """All values covered after rolling each accepted node up ``levels``."""
        covered: set[str] = set()
        for node in accepted:
            top = self.ancestor(node, levels)
            covered |= self.descendants(top)
        return frozenset(covered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OntologyTree(root={self.root!r}, nodes={self._graph.number_of_nodes()},"
            f" depth={self.depth})"
        )
