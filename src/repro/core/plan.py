"""Explore-plan selection: incremental vs materialized grids.

The driver has two Explore engines with opposite cost profiles:

* incremental (:class:`~repro.core.explore.Explorer`) — one backend
  round trip per *visited* cell; total work tracks how far the search
  expands before the constraint is met;
* materialized (:class:`~repro.core.grid_explore.GridExplorer`) — one
  backend pass computes *every* cell, after which grid queries are
  free; total work tracks the full grid size regardless of where the
  search terminates.

``choose_explore_mode`` picks between them from catalog statistics
alone — no sub-query executes during planning. The model (documented
in ``docs/EXPLORE_MODES.md``) prices an incremental cell round trip at
one pass over the data (``N`` rows, the star-join heuristic: the
largest referenced table) and materialization at one data pass plus
one unit per grid cell:

    materialize  iff  N + |grid|  <  visited * N

``visited`` is estimated by walking L1 layers outward, predicting the
aggregate at each layer's balanced point from per-dimension
:class:`~repro.engine.statistics.ColumnStats` selectivities, until the
constraint target is reached; the layer-point counts come from
:meth:`~repro.core.refined_space.RefinedSpace.layer_sizes`. Queries
whose dimensions lack catalog statistics (joins, categorical
predicates, expression predicates, statless backends) fall back to a
small-grid rule: materialize only when the whole grid is trivially
cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.predicate import SelectPredicate
from repro.core.query import ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.expression import ColumnRef
from repro.exceptions import QueryModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.acquire import AcquireConfig
    from repro.engine.backends import EvaluationLayer
    from repro.engine.catalog import Database
    from repro.engine.statistics import ColumnStats

#: Grids at most this many cells are materialized even without
#: statistics — the tensor is cheaper than any bookkeeping about it.
SMALL_GRID_CELLS = 4096

#: Layer-walk horizon for the visited-cells estimate; beyond it the
#: search is treated as exploring the whole grid (capped elsewhere).
_MAX_ESTIMATED_LAYERS = 2048

_MODES = ("auto", "incremental", "materialized")


@dataclass(frozen=True)
class ExplorePlan:
    """Outcome of plan selection, recorded for reports and tests.

    Attributes:
        mode: the engine chosen — ``incremental`` or ``materialized``.
        reason: short human-readable justification (``forced``,
            ``grid-over-cap``, ``cost-model``, ``small-grid``, ...).
        grid_cells: full grid size (``RefinedSpace.grid_size``).
        estimated_visited: predicted visited-cell count for the
            incremental engine; 0 when no estimate was possible.
    """

    mode: str
    reason: str
    grid_cells: int
    estimated_visited: int = 0


def choose_explore_mode(
    layer: "EvaluationLayer",
    query: Query,
    space: RefinedSpace,
    config: "AcquireConfig",
) -> ExplorePlan:
    """Resolve ``config.explore_mode`` into a concrete plan.

    Fixed modes pass through (``materialized`` validates the grid
    against ``config.materialize_cell_cap`` and raises
    :class:`~repro.exceptions.QueryModelError` when the tensor would
    not fit); ``auto`` applies the cost model above.
    """
    if config.explore_mode not in _MODES:
        raise QueryModelError(
            f"unknown explore_mode: {config.explore_mode!r}; "
            f"expected one of {_MODES}"
        )
    grid_cells = space.grid_size
    if config.explore_mode == "incremental":
        return ExplorePlan("incremental", "forced", grid_cells)
    if config.explore_mode == "materialized":
        if grid_cells > config.materialize_cell_cap:
            raise QueryModelError(
                f"explore_mode='materialized' needs a {grid_cells}-cell "
                f"tensor, over materialize_cell_cap="
                f"{config.materialize_cell_cap}; raise the cap or use "
                "explore_mode='auto'"
            )
        return ExplorePlan("materialized", "forced", grid_cells)

    # -- auto ----------------------------------------------------------
    if grid_cells > config.materialize_cell_cap:
        return ExplorePlan("incremental", "grid-over-cap", grid_cells)

    database = getattr(layer, "database", None)
    estimate = _estimate_visited_cells(database, query, space, config)
    if estimate is None:
        if grid_cells <= SMALL_GRID_CELLS:
            return ExplorePlan("materialized", "small-grid", grid_cells)
        return ExplorePlan("incremental", "no-statistics", grid_cells)

    visited = min(estimate, grid_cells, config.max_grid_queries)
    rows = _largest_table_rows(database, query)
    if rows + grid_cells < visited * rows:
        return ExplorePlan(
            "materialized", "cost-model", grid_cells, visited
        )
    return ExplorePlan("incremental", "cost-model", grid_cells, visited)


# ----------------------------------------------------------------------
# Estimation helpers
# ----------------------------------------------------------------------
def _largest_table_rows(database: "Database", query: Query) -> int:
    """Star-join heuristic: price a data pass at the fact-table size."""
    rows = 1
    for name in query.tables:
        if database.has_table(name):
            rows = max(rows, len(database.table(name)))
    return rows


def _dimension_stats(
    database: "Database", space: RefinedSpace
) -> Optional[list[tuple[SelectPredicate, "ColumnStats"]]]:
    """Per-dimension (predicate, stats) pairs, or None if any dimension
    is not a bare-column select predicate with catalog statistics."""
    pairs = []
    for predicate in space.dims:
        if not isinstance(predicate, SelectPredicate):
            return None
        expr = predicate.expr
        if not isinstance(expr, ColumnRef):
            return None
        if not database.has_table(expr.table):
            return None
        if not database.table(expr.table).schema.has_column(expr.column):
            return None
        stats = database.column_stats(expr.table, expr.column)
        if math.isnan(stats.min_value) or stats.count == 0:
            return None
        pairs.append((predicate, stats))
    return pairs


def _admitted_fraction(
    predicate: SelectPredicate, stats: "ColumnStats", score: float
) -> float:
    """Estimated fraction of the column admitted at PScore ``score``."""
    interval = predicate.interval_at(score)
    above = (
        stats.selectivity_below(interval.lo) if math.isfinite(interval.lo)
        else 0.0
    )
    below = (
        stats.selectivity_below(interval.hi) if math.isfinite(interval.hi)
        else 1.0
    )
    return max(below - above, 0.0)


def _estimate_visited_cells(
    database: Optional["Database"],
    query: Query,
    space: RefinedSpace,
    config: "AcquireConfig",
) -> Optional[int]:
    """Predict how many cells the incremental search visits.

    Walks L1 layers outward; layer ``k``'s balanced point has PScore
    ``(k / d) * step`` on every dimension, and the aggregate there is
    predicted under attribute-value independence as ``mass * prod(f_i)``
    with ``mass`` the aggregate's whole-domain value (row count for
    COUNT, column total for SUM). The first layer predicted to reach
    the constraint target terminates the search; its cumulative point
    count is the estimate. Returns None when the query's shape defeats
    estimation (see :func:`_dimension_stats`).
    """
    if database is None:
        return None
    constraint = query.constraint
    if constraint.op not in (
        ConstraintOp.EQ, ConstraintOp.GE, ConstraintOp.GT
    ):
        return None
    aggregate = constraint.spec.aggregate
    if aggregate.name not in ("COUNT", "SUM"):
        return None
    pairs = _dimension_stats(database, space)
    if pairs is None:
        return None
    if aggregate.name == "COUNT":
        mass = float(_largest_table_rows(database, query))
    else:
        attribute = constraint.spec.attribute
        if not isinstance(attribute, ColumnRef):
            return None
        if not database.has_table(attribute.table):
            return None
        stats = database.column_stats(attribute.table, attribute.column)
        if math.isnan(stats.total):
            return None
        mass = stats.total
    if mass <= 0:
        return None

    # An equality query predicted to overshoot at the origin is handed
    # to the contraction extension before any expansion happens —
    # materializing the expansion grid for it would be pure waste.
    if constraint.op is ConstraintOp.EQ:
        origin = _predicted_value(mass, pairs, 0.0)
        if origin > constraint.target * (1 + config.delta):
            return 1

    max_layers = min(sum(space.max_coords), _MAX_ESTIMATED_LAYERS)
    terminal = None
    for k in range(max_layers + 1):
        score = (k / space.d) * space.step
        if _predicted_value(mass, pairs, score) >= constraint.target:
            terminal = k
            break
    if terminal is None:
        return space.grid_size
    counts = space.layer_sizes(terminal)
    return sum(counts)


def _predicted_value(
    mass: float,
    pairs: Sequence[tuple[SelectPredicate, "ColumnStats"]],
    score: float,
) -> float:
    value = mass
    for predicate, stats in pairs:
        capped = score
        if predicate.limit is not None:
            capped = min(capped, predicate.limit)
        value *= _admitted_fraction(predicate, stats, capped)
    return value


__all__ = ["ExplorePlan", "choose_explore_mode", "SMALL_GRID_CELLS"]
