"""Explore-plan selection: incremental vs materialized vs tiled grids.

The driver has three Explore engines with different cost profiles:

* incremental (:class:`~repro.core.explore.Explorer`) — one backend
  round trip per *visited* cell; total work tracks how far the search
  expands before the constraint is met;
* materialized (:class:`~repro.core.grid_explore.GridExplorer`) — one
  backend pass computes *every* cell, after which grid queries are
  free; total work tracks the full grid size regardless of where the
  search terminates;
* tiled (:class:`~repro.core.grid_explore.TiledGridExplorer`) — one
  backend pass per *reached* tile; total work tracks the tiles the
  traversal's layer prefix touches, so huge or budget-capped grids
  still get batched execution without the full-grid tensor.

``choose_explore_mode`` picks between them from catalog statistics
alone — no sub-query executes during planning. The model (documented
in ``docs/EXPLORE_MODES.md``) prices an incremental cell round trip at
one pass over the data (``N`` rows, the star-join heuristic: the
largest referenced table), materialization at one data pass plus one
unit per grid cell, and tiling at one data pass plus one unit per tile
cell, per reached tile:

    incremental  ~ visited * N
    materialized ~ N + |grid|          (grid within cap and budget)
    tiled        ~ ceil(visited / |tile|) * (N + |tile|)

``visited`` is estimated by walking L1 layers outward, predicting the
aggregate at each layer's balanced point from per-dimension
:class:`~repro.engine.statistics.ColumnStats` selectivities, until the
constraint target is reached; the layer-point counts come from
:meth:`~repro.core.refined_space.RefinedSpace.layer_sizes`. Queries
whose dimensions lack catalog statistics (joins, categorical
predicates, expression predicates, statless backends) fall back to a
small-grid rule: materialize only when the whole grid is trivially
cheap and within the query budget, tile when the grid exceeds the
tensor cap or the budget, and run incrementally otherwise.

The estimate can be *calibrated*: a :class:`PlanCalibration` collects
(estimated, actually-visited) pairs from finished searches and applies
their geometric-mean ratio to later estimates, closing the loop
between the star-join cost heuristic and observed traversal behaviour.

Tiled plans additionally pick an *executor*. Thread workers only
overlap tile fetches when the backend's fetch path releases the GIL
(``EvaluationLayer.parallel_tile_scaling``); worker *processes*
overlap for every backend but pay a per-pool spawn cost and a per-tile
IPC cost. Both constants start as documented priors (spawn ~ one data
pass per worker, IPC ~ an eighth of a tile pass) and are replaced by
observed values as :class:`PlanCalibration` accumulates
``observe_pass`` / ``observe_spawn`` / ``observe_ipc`` samples from
finished searches — the calibration converts the observed seconds into
row units through the observed pass rate, so the executor choice, the
worker count, and the tile size all adapt to the machine.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.grid_cache import GridTensorCache
from repro.core.predicate import SelectPredicate
from repro.core.query import ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.expression import ColumnRef
from repro.exceptions import QueryModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.acquire import AcquireConfig
    from repro.engine.backends import EvaluationLayer
    from repro.engine.catalog import Database
    from repro.engine.statistics import ColumnStats

#: Grids at most this many cells are materialized even without
#: statistics — the tensor is cheaper than any bookkeeping about it.
SMALL_GRID_CELLS = 4096

#: Layer-walk horizon for the visited-cells estimate; beyond it the
#: search is treated as exploring the whole grid (capped elsewhere).
_MAX_ESTIMATED_LAYERS = 2048

_MODES = ("auto", "incremental", "materialized", "tiled")


class PlanCalibration:
    """Feedback loop from observed searches into the visited estimate.

    After each search the driver reports the plan's
    ``estimated_visited`` together with the number of grid queries
    actually examined. The geometric mean of the ``actual / estimated``
    ratios over a sliding window becomes a correction factor applied to
    later estimates — systematic over- or under-estimation by the
    star-join heuristic is measured once and compensated thereafter.

    Thread-safe: one instance is shared per workload (the harness) or
    per service (:class:`repro.service.AcquireService`), where
    concurrent searches feed observations and read corrections at the
    same time. All window access happens under an internal re-entrant
    lock — re-entrant because the cost accessors call each other
    (``spawn_cost_rows`` reads ``pass_rate``).
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise QueryModelError(
                f"calibration window must be >= 1, got {window}"
            )
        self._lock = threading.RLock()
        self._log_ratios: deque[float] = deque(maxlen=window)
        self._pass_rates: deque[float] = deque(maxlen=window)
        self._spawn_s: deque[float] = deque(maxlen=window)
        self._ipc_s: deque[float] = deque(maxlen=window)
        self._fusion_shares: deque[float] = deque(maxlen=window)
        self._fusion_pass_s: deque[float] = deque(maxlen=window)

    def observe(self, estimated: int, actual: int) -> None:
        """Record one (estimate, outcome) pair; zeros are ignored."""
        if estimated > 0 and actual > 0:
            with self._lock:
                self._log_ratios.append(math.log(actual / estimated))

    def observe_pass(self, rows: int, seconds: float) -> None:
        """Record one search's backend execution: ``rows`` row accesses
        in ``seconds`` of measured backend time. The resulting rows/sec
        rate converts observed spawn/IPC seconds into the row units the
        cost model compares."""
        if rows > 0 and seconds > 0:
            with self._lock:
                self._pass_rates.append(rows / seconds)

    def observe_spawn(self, pools: int, seconds: float) -> None:
        """Record worker-pool spawns: ``pools`` pools took ``seconds``
        (process start-up + per-worker backend rebuild)."""
        if pools > 0 and seconds > 0:
            with self._lock:
                self._spawn_s.append(seconds / pools)

    def observe_ipc(self, tiles: int, seconds: float) -> None:
        """Record process-tier IPC overhead: ``tiles`` dispatched tiles
        cost ``seconds`` of parent-side overhead beyond the workers'
        own execution."""
        if tiles > 0 and seconds > 0:
            with self._lock:
                self._ipc_s.append(seconds / tiles)

    def observe_fusion(
        self, fetches: int, passes: int, pass_s: float = 0.0
    ) -> None:
        """Record one coalescer dispatch: ``fetches`` waiting fetches
        were served by ``passes`` physical backend passes that took
        ``pass_s`` seconds. The saved fraction feeds
        :meth:`fusion_share`; the pass latency sizes the adaptive
        batching window (:meth:`fusion_window_s`)."""
        if fetches > 0 and passes > 0:
            with self._lock:
                self._fusion_shares.append(
                    max(fetches - passes, 0) / fetches
                )
                if pass_s > 0:
                    self._fusion_pass_s.append(pass_s / passes)

    def fusion_share(self) -> float:
        """Observed fraction of coalesced fetches served without their
        own backend pass (0.0 until ``observe_fusion`` data arrives)."""
        with self._lock:
            if not self._fusion_shares:
                return 0.0
            return sum(self._fusion_shares) / len(self._fusion_shares)

    def fusion_window_s(self, cap_s: float) -> float:
        """Adaptive coalescer batching window, capped at ``cap_s``.

        Until pass-latency observations arrive the configured cap is
        the window. Once the mean merged-pass latency is known, waiting
        longer than half a pass costs more than a merged pass can save,
        so the window shrinks to ``min(cap_s, pass_s / 2)`` — fast
        backends batch only genuinely simultaneous arrivals while slow
        backends keep the full window.
        """
        cap = max(float(cap_s), 0.0)
        with self._lock:
            if not self._fusion_pass_s:
                return cap
            mean_pass = sum(self._fusion_pass_s) / len(self._fusion_pass_s)
        return max(min(cap, 0.5 * mean_pass), 0.0)

    def pass_rate(self) -> float:
        """Observed backend row-access rate in rows/sec (0.0 until
        ``observe_pass`` data arrives)."""
        with self._lock:
            if not self._pass_rates:
                return 0.0
            return sum(self._pass_rates) / len(self._pass_rates)

    def spawn_cost_rows(self, rows: int, workers: int) -> int:
        """Per-pool spawn cost in row units.

        Observed mean spawn seconds x observed pass rate when both are
        available; otherwise the prior — one data pass per worker, the
        shape of a pool whose initializer rebuilds the backend in every
        worker.
        """
        with self._lock:
            rate = self.pass_rate()
            if self._spawn_s and rate > 0:
                mean = sum(self._spawn_s) / len(self._spawn_s)
                return max(int(mean * rate), 1)
        return max(rows * workers, 1)

    def ipc_cost_rows(self, tile_cells: int) -> int:
        """Per-tile IPC cost in row units (prior: tile_cells / 8)."""
        with self._lock:
            rate = self.pass_rate()
            if self._ipc_s and rate > 0:
                mean = sum(self._ipc_s) / len(self._ipc_s)
                return max(int(mean * rate), 1)
        return max(tile_cells // 8, 1)

    @property
    def observations(self) -> int:
        with self._lock:
            return len(self._log_ratios)

    def factor(self) -> float:
        """Geometric-mean correction factor (1.0 until observations)."""
        with self._lock:
            if not self._log_ratios:
                return 1.0
            return math.exp(sum(self._log_ratios) / len(self._log_ratios))

    def correct(self, estimate: int) -> int:
        """Apply the correction factor to a raw visited estimate."""
        return max(int(round(estimate * self.factor())), 1)


@dataclass(frozen=True)
class ExplorePlan:
    """Outcome of plan selection, recorded for reports and tests.

    Attributes:
        mode: the engine chosen — ``incremental``, ``materialized`` or
            ``tiled``.
        reason: short human-readable justification (``forced``,
            ``grid-over-cap``, ``grid-over-budget``, ``cost-model``,
            ``small-grid``, ...).
        grid_cells: full grid size (``RefinedSpace.grid_size``).
        estimated_visited: predicted visited-cell count for the
            incremental engine (after calibration, when configured);
            0 when no estimate was possible.
        tile_executor: executor picked for a tiled plan — ``thread``
            or ``process`` ("" for non-tiled plans).
        tile_workers: worker count picked for a tiled plan (0 for
            non-tiled plans).
        tile_cells: per-tile cell budget picked for a tiled plan (0
            for non-tiled plans).
    """

    mode: str
    reason: str
    grid_cells: int
    estimated_visited: int = 0
    tile_executor: str = ""
    tile_workers: int = 0
    tile_cells: int = 0


def choose_explore_mode(
    layer: "EvaluationLayer",
    query: Query,
    space: RefinedSpace,
    config: "AcquireConfig",
) -> ExplorePlan:
    """Resolve ``config.explore_mode`` into a concrete plan.

    Fixed modes pass through (``materialized`` validates the grid
    against ``config.materialize_cell_cap`` and raises
    :class:`~repro.exceptions.QueryModelError` when the tensor would
    not fit); ``auto`` applies the cost model above.
    """
    if config.explore_mode not in _MODES:
        raise QueryModelError(
            f"unknown explore_mode: {config.explore_mode!r}; "
            f"expected one of {_MODES}"
        )
    grid_cells = space.grid_size
    database = getattr(layer, "database", None)
    rows = (
        _largest_table_rows(database, query) if database is not None else 1
    )

    def tiled_plan(reason: str, visited: int = 0) -> ExplorePlan:
        proxy = visited or min(grid_cells, config.max_grid_queries)
        executor, workers, tile_cells, _ = _pick_tile_plan(
            layer, config, proxy, grid_cells, rows
        )
        return ExplorePlan(
            "tiled", reason, grid_cells, visited,
            tile_executor=executor, tile_workers=workers,
            tile_cells=tile_cells,
        )

    if config.explore_mode == "incremental":
        return ExplorePlan("incremental", "forced", grid_cells)
    if config.explore_mode == "materialized":
        if grid_cells > config.materialize_cell_cap:
            raise QueryModelError(
                f"explore_mode='materialized' needs a {grid_cells}-cell "
                f"tensor, over materialize_cell_cap="
                f"{config.materialize_cell_cap}; raise the cap or use "
                "explore_mode='auto'"
            )
        return ExplorePlan("materialized", "forced", grid_cells)
    if config.explore_mode == "tiled":
        return tiled_plan("forced")

    # -- auto ----------------------------------------------------------
    budget = config.max_grid_queries
    cap = config.materialize_cell_cap
    materialized_fits = grid_cells <= cap and grid_cells <= budget

    # Warm tiers beat every cost estimate: a finished block tensor in
    # the cache (memory or persistent) makes the materialized engine a
    # pure lookup — no backend pass, no prefix passes.
    resolver = getattr(config, "resolve_grid_cache", None)
    grid_cache = (
        resolver() if callable(resolver)
        else getattr(config, "grid_cache", None)
    )
    if grid_cache is not None and materialized_fits:
        blocks_key = GridTensorCache.key_for(
            layer, query, space, kind="blocks"
        )
        if grid_cache.contains(blocks_key):
            return ExplorePlan("materialized", "warm-cache", grid_cells)

    estimate = _estimate_visited_cells(database, query, space, config)
    if estimate is None:
        if grid_cells <= SMALL_GRID_CELLS and materialized_fits:
            return ExplorePlan("materialized", "small-grid", grid_cells)
        if grid_cells > cap:
            return tiled_plan("grid-over-cap")
        if grid_cells > budget:
            return tiled_plan("grid-over-budget")
        return ExplorePlan("incremental", "no-statistics", grid_cells)

    calibration = getattr(config, "calibration", None)
    if calibration is not None:
        estimate = calibration.correct(estimate)
    visited = min(estimate, grid_cells, budget)

    # Cost of each engine, in row-access units (docstring formulas).
    # The tiled term is minimized over executor, worker count and tile
    # size: worker overlap divides the per-tile data passes — for
    # threads only when the backend releases the GIL, for processes
    # always, at the calibrated spawn + IPC overheads.
    incremental_cost = visited * rows
    materialized_cost = rows + grid_cells
    executor, tile_workers, tile_cells, tiled_cost = _pick_tile_plan(
        layer, config, visited, grid_cells, rows
    )

    # Fusion-aware costing: with a cross-query coalescer installed on
    # the layer, an observed fraction of grid passes is served by a
    # neighbour request's merged pass (docs/SERVICE.md), making the
    # pass-based engines cheaper relative to incremental — whose
    # per-cell fetches fuse far less often. A no-op until the shared
    # calibration has seen fused dispatches, so single-request plans
    # are unchanged.
    if (
        calibration is not None
        and getattr(layer, "pass_coalescer", None) is not None
    ):
        share = calibration.fusion_share()
        if share > 0.0:
            discount = 1.0 - 0.5 * share
            materialized_cost = int(materialized_cost * discount)
            tiled_cost = int(tiled_cost * discount)

    best_mode, best_cost = "incremental", incremental_cost
    if tiled_cost < best_cost:
        best_mode, best_cost = "tiled", tiled_cost
    # Prefer the simpler whole-grid tensor over tiles on equal cost,
    # but keep the historical strict comparison against incremental.
    if (
        materialized_fits
        and materialized_cost < incremental_cost
        and materialized_cost <= best_cost
    ):
        best_mode, best_cost = "materialized", materialized_cost
    if best_mode != "tiled":
        return ExplorePlan(best_mode, "cost-model", grid_cells, visited)
    reason = "cost-model"
    if grid_cells > cap:
        reason = "grid-over-cap"
    elif grid_cells > budget:
        reason = "grid-over-budget"
    return ExplorePlan(
        "tiled", reason, grid_cells, visited,
        tile_executor=executor, tile_workers=tile_workers,
        tile_cells=tile_cells,
    )


# ----------------------------------------------------------------------
# Tiled-plan picker: executor x workers x tile size
# ----------------------------------------------------------------------
def _worker_candidates(requested: int) -> list[int]:
    """1, powers of two below the request, and the request itself."""
    counts = {1, requested}
    width = 2
    while width < requested:
        counts.add(width)
        width *= 2
    return sorted(counts)


def _pick_tile_plan(
    layer: "EvaluationLayer",
    config: "AcquireConfig",
    visited: int,
    grid_cells: int,
    rows: int,
) -> tuple[str, int, int, int]:
    """Minimize the tiled cost over (executor, workers, tile_cells).

    Thread workers overlap the per-tile data passes only when the
    backend's fetch path releases the GIL
    (``layer.parallel_tile_scaling``); process workers always overlap
    but pay the calibrated per-pool spawn and per-tile IPC overheads.
    Tile sizes considered: the cap (fewest seams and IPC round trips)
    and "one tile per worker" (full overlap for small searches). Ties
    break toward thread, then larger tiles, then fewer workers.
    Returns ``(executor, workers, tile_cells, cost)``.
    """
    from repro.engine.backends import EvaluationLayer

    requested = max(1, int(getattr(config, "tile_workers", 1)))
    preference = getattr(config, "tile_executor", "thread")
    calibration = getattr(config, "calibration", None)
    scaling = bool(getattr(layer, "parallel_tile_scaling", False))
    has_spec = (
        type(layer).backend_spec is not EvaluationLayer.backend_spec
    )
    visited = max(int(visited), 1)
    tc_max = max(
        min(config.materialize_cell_cap, config.max_grid_queries,
            grid_cells),
        1,
    )

    def spawn_rows(workers: int) -> int:
        if calibration is not None:
            return calibration.spawn_cost_rows(rows, workers)
        return max(rows * workers, 1)

    def ipc_rows(tile_cells: int) -> int:
        if calibration is not None:
            return calibration.ipc_cost_rows(tile_cells)
        return max(tile_cells // 8, 1)

    executors = ["thread"]
    if preference == "process" and has_spec and requested > 1:
        executors = ["process"]
    elif preference == "auto" and has_spec and requested > 1:
        executors = ["thread", "process"]
    # An explicit executor request also fixes the worker count — the
    # planner only shops for workers when asked to ('auto').
    worker_options = (
        _worker_candidates(requested) if preference == "auto"
        else [requested]
    )

    best: Optional[tuple[int, int, int, int, str]] = None
    for executor in executors:
        for workers in worker_options:
            if executor == "process" and workers == 1:
                continue  # a 1-worker pool is pure overhead
            sizes = {tc_max}
            if workers > 1:
                # "One tile per worker": full overlap even when the
                # search is smaller than a cap-sized tile.
                sizes.add(min(max(-(-visited // workers), 1), tc_max))
            for tile_cells in sizes:
                tiles = -(-visited // tile_cells)
                overlap = (
                    workers if (executor == "process" or scaling) else 1
                )
                cost = -(-tiles // overlap) * rows + tiles * tile_cells
                if executor == "process":
                    cost += spawn_rows(workers) + tiles * ipc_rows(
                        tile_cells
                    )
                ranked = (
                    cost, executor == "process", -tile_cells, workers,
                    executor,
                )
                if best is None or ranked < best:
                    best = ranked
    assert best is not None
    cost, _, neg_tile_cells, workers, executor = best
    return executor, workers, -neg_tile_cells, cost


# ----------------------------------------------------------------------
# Estimation helpers
# ----------------------------------------------------------------------
def _largest_table_rows(database: "Database", query: Query) -> int:
    """Star-join heuristic: price a data pass at the fact-table size."""
    rows = 1
    for name in query.tables:
        if database.has_table(name):
            rows = max(rows, len(database.table(name)))
    return rows


def _dimension_stats(
    database: "Database", space: RefinedSpace
) -> Optional[list[tuple[SelectPredicate, "ColumnStats"]]]:
    """Per-dimension (predicate, stats) pairs, or None if any dimension
    is not a bare-column select predicate with catalog statistics."""
    pairs = []
    for predicate in space.dims:
        if not isinstance(predicate, SelectPredicate):
            return None
        expr = predicate.expr
        if not isinstance(expr, ColumnRef):
            return None
        if not database.has_table(expr.table):
            return None
        if not database.table(expr.table).schema.has_column(expr.column):
            return None
        stats = database.column_stats(expr.table, expr.column)
        if math.isnan(stats.min_value) or stats.count == 0:
            return None
        pairs.append((predicate, stats))
    return pairs


def _admitted_fraction(
    predicate: SelectPredicate, stats: "ColumnStats", score: float
) -> float:
    """Estimated fraction of the column admitted at PScore ``score``."""
    interval = predicate.interval_at(score)
    above = (
        stats.selectivity_below(interval.lo) if math.isfinite(interval.lo)
        else 0.0
    )
    below = (
        stats.selectivity_below(interval.hi) if math.isfinite(interval.hi)
        else 1.0
    )
    return max(below - above, 0.0)


def _estimate_visited_cells(
    database: Optional["Database"],
    query: Query,
    space: RefinedSpace,
    config: "AcquireConfig",
) -> Optional[int]:
    """Predict how many cells the incremental search visits.

    Walks L1 layers outward; layer ``k``'s balanced point has PScore
    ``(k / d) * step`` on every dimension, and the aggregate there is
    predicted under attribute-value independence as ``mass * prod(f_i)``
    with ``mass`` the aggregate's whole-domain value (row count for
    COUNT, column total for SUM). The first layer predicted to reach
    the constraint target terminates the search; its cumulative point
    count is the estimate. Returns None when the query's shape defeats
    estimation (see :func:`_dimension_stats`).
    """
    if database is None:
        return None
    constraint = query.constraint
    if constraint.op not in (
        ConstraintOp.EQ, ConstraintOp.GE, ConstraintOp.GT
    ):
        return None
    aggregate = constraint.spec.aggregate
    if aggregate.name not in ("COUNT", "SUM"):
        return None
    pairs = _dimension_stats(database, space)
    if pairs is None:
        return None
    if aggregate.name == "COUNT":
        mass = float(_largest_table_rows(database, query))
    else:
        attribute = constraint.spec.attribute
        if not isinstance(attribute, ColumnRef):
            return None
        if not database.has_table(attribute.table):
            return None
        stats = database.column_stats(attribute.table, attribute.column)
        if math.isnan(stats.total):
            return None
        mass = stats.total
    if mass <= 0:
        return None

    # An equality query predicted to overshoot at the origin is handed
    # to the contraction extension before any expansion happens —
    # materializing the expansion grid for it would be pure waste.
    if constraint.op is ConstraintOp.EQ:
        origin = _predicted_value(mass, pairs, 0.0)
        if origin > constraint.target * (1 + config.delta):
            return 1

    max_layers = min(sum(space.max_coords), _MAX_ESTIMATED_LAYERS)
    terminal = None
    for k in range(max_layers + 1):
        score = (k / space.d) * space.step
        if _predicted_value(mass, pairs, score) >= constraint.target:
            terminal = k
            break
    if terminal is None:
        return space.grid_size
    counts = space.layer_sizes(terminal)
    return sum(counts)


def _predicted_value(
    mass: float,
    pairs: Sequence[tuple[SelectPredicate, "ColumnStats"]],
    score: float,
) -> float:
    value = mass
    for predicate, stats in pairs:
        capped = score
        if predicate.limit is not None:
            capped = min(capped, predicate.limit)
        value *= _admitted_fraction(predicate, stats, capped)
    return value


__all__ = [
    "ExplorePlan",
    "PlanCalibration",
    "choose_explore_mode",
    "SMALL_GRID_CELLS",
]
