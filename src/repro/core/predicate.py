"""Predicates: functions plus intervals of acceptable values (paper 2.2).

Every predicate ``P_i`` is decomposed into a predicate function
``P_i^F`` (a monotonic :class:`~repro.engine.expression.Expression`
over relation attributes) and a predicate interval ``P_i^I`` of
acceptable function values. Refinement never touches the function —
only the interval — which is what lets select and join predicates share
one refinement algebra (paper 2.4):

* ``SelectPredicate`` — one-sided numeric predicates. Range predicates
  such as ``10 < y < 50`` are represented as *two* one-sided predicates
  (the SQL binder performs the rewrite), so each side refines
  independently. Equality selects (``p_size = 10``) use the POINT
  direction and expand symmetrically.
* ``JoinPredicate`` — ``Delta(f_left, f_right) <= tolerance``; for
  equi-joins the tolerance starts at 0 and the PScore denominator is
  fixed at 100 per the paper.
* ``CategoricalPredicate`` — the section 7.3 extension: refinement
  rolls an accepted value set up an ontology tree.

A refinement *score* is the paper's PScore: percent departure of the
refined interval from the original (Equation 1). The two directions of
translation both live here:

* ``interval_at(score)`` — PScore -> refined value interval;
* ``scores_of_values(values)`` — per-tuple minimal PScore needed to
  admit each tuple (the quantity the evaluation layers bucket into
  refined-space grid cells).

Scores are *signed*: positive scores expand the interval (the paper's
primary direction) and negative scores shrink it, which is how the
section 7.2 contraction extension reuses the same algebra. A tuple
comfortably inside the original interval therefore has a negative
minimal score — it keeps satisfying the predicate until the interval
has shrunk past it. "Satisfies the original query" is ``score <= 0``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.core.interval import Interval
from repro.engine.expression import ColumnRef, Expression
from repro.exceptions import NotRefinableError, QueryModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ontology import OntologyTree

#: Denominator the paper fixes for equality join predicates.
JOIN_DENOMINATOR = 100.0


class Direction(enum.Enum):
    """Which side of the predicate interval expands under refinement."""

    UPPER = "upper"  # e.g. y < 50 : the upper bound grows
    LOWER = "lower"  # e.g. y > 10 : the lower bound drops
    POINT = "point"  # e.g. size = 10 : both sides grow symmetrically


@dataclass(frozen=True)
class _BasePredicate:
    """State shared by every predicate kind."""

    name: str
    refinable: bool = True
    weight: float = 1.0
    limit: Optional[float] = None  # per-predicate max PScore (paper 7.1)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise QueryModelError(f"predicate {self.name!r}: weight must be > 0")
        if self.limit is not None and self.limit < 0:
            raise QueryModelError(f"predicate {self.name!r}: limit must be >= 0")

    # -- shared helpers -------------------------------------------------
    def _require_refinable(self, score: float) -> None:
        if score != 0 and not self.refinable:
            raise NotRefinableError(
                f"predicate {self.name!r} is marked NOREFINE"
            )

    def with_norefine(self) -> "_BasePredicate":
        """A copy of this predicate marked NOREFINE."""
        return replace(self, refinable=False)

    def with_weight(self, weight: float) -> "_BasePredicate":
        return replace(self, weight=weight)

    def with_limit(self, limit: float) -> "_BasePredicate":
        return replace(self, limit=limit)


@dataclass(frozen=True)
class SelectPredicate(_BasePredicate):
    """A numeric selection predicate over a single relation.

    ``expr`` is the predicate function; ``interval`` the acceptable
    values in the *original* query; ``direction`` the side that expands.
    """

    expr: Expression = field(default=None)  # type: ignore[assignment]
    interval: Interval = field(default=None)  # type: ignore[assignment]
    direction: Direction = Direction.UPPER
    denominator: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.expr is None or self.interval is None:
            raise QueryModelError(
                f"predicate {self.name!r}: expr and interval are required"
            )
        if self.direction is Direction.POINT and not self.interval.is_point:
            raise QueryModelError(
                f"predicate {self.name!r}: POINT direction needs a point interval"
            )
        if self.denominator is not None and self.denominator <= 0:
            raise QueryModelError(
                f"predicate {self.name!r}: denominator must be > 0"
            )

    # ------------------------------------------------------------------
    @property
    def effective_denominator(self) -> float:
        """Percent-scale denominator of Equation 1.

        Defaults to the interval width; point intervals fall back to the
        join convention (100) so that a refinement score of ``s`` widens
        the point by ``s`` units.
        """
        if self.denominator is not None:
            return self.denominator
        width = self.interval.width
        if width > 0 and math.isfinite(width):
            return width
        return JOIN_DENOMINATOR

    def _amount(self, score: float) -> float:
        return score / 100.0 * self.effective_denominator

    def interval_at(self, score: float) -> Interval:
        """The refined acceptable-value interval at PScore ``score``.

        Positive scores expand the moving side; negative scores shrink
        it (contraction, paper 7.2), clamping at the opposite endpoint
        — a fully shrunk predicate becomes a point at its "minimum
        value", exactly the paper's ``Q'_min`` construction. POINT
        predicates cannot shrink.
        """
        self._require_refinable(score)
        amount = self._amount(score)
        if self.direction is Direction.UPPER:
            # Clamp the endpoint itself, not just ``amount``: at full
            # shrink, ``hi + (lo - hi)`` can land a few ulps below
            # ``lo`` and a point interval must not become empty.
            return Interval(
                self.interval.lo,
                max(self.interval.lo, self.interval.hi + amount),
            )
        if self.direction is Direction.LOWER:
            return Interval(
                min(self.interval.hi, self.interval.lo - amount),
                self.interval.hi,
            )
        return self.interval.expand_both(max(amount, 0.0))

    def scores_of_values(self, values: np.ndarray) -> np.ndarray:
        """Minimal signed PScore admitting each function value.

        Negative for values inside the original interval (they survive
        that much contraction); positive for values requiring
        expansion; +inf for values on the predicate's frozen side.
        """
        values = np.asarray(values, dtype=np.float64)
        scale = 100.0 / self.effective_denominator
        if self.direction is Direction.UPPER:
            scores = np.where(
                values < self.interval.lo,
                np.inf,
                (values - self.interval.hi) * scale,
            )
        elif self.direction is Direction.LOWER:
            scores = np.where(
                values > self.interval.hi,
                np.inf,
                (self.interval.lo - values) * scale,
            )
        else:
            scores = np.abs(values - self.interval.lo) * scale
        if not self.refinable:
            scores = np.where(scores > 0, np.inf, scores)
        return scores

    @property
    def max_shrink_score(self) -> float:
        """PScore magnitude at which contraction collapses the interval."""
        if self.direction is Direction.POINT:
            return 0.0
        return self.interval.width * 100.0 / self.effective_denominator

    def max_useful_score(self, domain: Interval) -> float:
        """PScore beyond which no new tuples can be admitted.

        ``domain`` is the observed range of the predicate function
        (from catalog statistics); expanding past it is wasted work.
        """
        scale = 100.0 / self.effective_denominator
        if self.direction is Direction.UPPER:
            gap = domain.hi - self.interval.hi
        elif self.direction is Direction.LOWER:
            gap = self.interval.lo - domain.lo
        else:
            gap = max(
                abs(domain.hi - self.interval.lo),
                abs(self.interval.lo - domain.lo),
            )
        return max(gap, 0.0) * scale

    # -- SQL rendering ---------------------------------------------------
    def sql_condition(self, score: float) -> str:
        """SQL condition for the refined predicate at PScore ``score``."""
        refined = self.interval_at(score)
        expr_sql = self.expr.to_sql()
        parts = []
        if math.isfinite(refined.lo):
            parts.append(f"{expr_sql} >= {refined.lo!r}")
        if math.isfinite(refined.hi):
            parts.append(f"{expr_sql} <= {refined.hi!r}")
        return " AND ".join(parts) if parts else "1=1"

    def sql_annulus(self, score_lo: float, score_hi: float) -> str:
        """SQL condition selecting tuples whose minimal PScore lies in
        ``(score_lo, score_hi]`` (``score_lo < 0`` means "include 0")."""
        expr_sql = self.expr.to_sql()
        inner = self.interval_at(max(score_lo, 0.0))
        outer = self.interval_at(score_hi)
        parts = []
        if math.isfinite(outer.lo):
            parts.append(f"{expr_sql} >= {outer.lo!r}")
        if math.isfinite(outer.hi):
            parts.append(f"{expr_sql} <= {outer.hi!r}")
        if score_lo >= 0:
            # Exclude the inner (already-counted) region.
            if self.direction is Direction.UPPER:
                parts.append(f"{expr_sql} > {inner.hi!r}")
            elif self.direction is Direction.LOWER:
                parts.append(f"{expr_sql} < {inner.lo!r}")
            else:
                parts.append(
                    f"({expr_sql} < {inner.lo!r} OR {expr_sql} > {inner.hi!r})"
                )
        return " AND ".join(parts) if parts else "1=1"

    def describe(self, score: float = 0.0) -> str:
        refined = self.interval_at(score)
        return f"{self.expr.to_sql()} in {refined}"


@dataclass(frozen=True)
class JoinPredicate(_BasePredicate):
    """A (possibly refinable) join predicate ``Delta(f1, f2) <= tol``.

    Refinement widens the tolerance band: an equi-join ``A.x = B.x``
    refined by score ``s`` becomes ``|A.x - B.x| <= s`` (denominator
    100, paper section 2.3).
    """

    left: Expression = field(default=None)  # type: ignore[assignment]
    right: Expression = field(default=None)  # type: ignore[assignment]
    tolerance: float = 0.0
    denominator: float = JOIN_DENOMINATOR

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.left is None or self.right is None:
            raise QueryModelError(
                f"join predicate {self.name!r}: both sides are required"
            )
        if self.tolerance < 0:
            raise QueryModelError(
                f"join predicate {self.name!r}: tolerance must be >= 0"
            )
        if self.denominator <= 0:
            raise QueryModelError(
                f"join predicate {self.name!r}: denominator must be > 0"
            )

    @property
    def is_equi(self) -> bool:
        """True for exact-match joins (zero base tolerance)."""
        return self.tolerance == 0.0

    @property
    def effective_denominator(self) -> float:
        return self.denominator

    def band_at(self, score: float) -> float:
        """Band half-width at PScore ``score`` (clamped at zero when a
        negative score shrinks the band away entirely)."""
        self._require_refinable(score)
        return max(self.tolerance + score / 100.0 * self.denominator, 0.0)

    def interval_at(self, score: float) -> Interval:
        """Acceptable ``Delta`` values at PScore ``score`` (for symmetry
        with select predicates: the interval is ``[0, band]``)."""
        return Interval(0.0, self.band_at(score))

    def scores_of_values(self, deltas: np.ndarray) -> np.ndarray:
        """Minimal signed PScore admitting each ``|f1 - f2|`` distance."""
        deltas = np.asarray(deltas, dtype=np.float64)
        scale = 100.0 / self.denominator
        scores = (deltas - self.tolerance) * scale
        if not self.refinable:
            scores = np.where(scores > 0, np.inf, scores)
        return scores

    @property
    def max_shrink_score(self) -> float:
        """PScore magnitude at which the band shrinks to exact match."""
        return self.tolerance * 100.0 / self.denominator

    def delta_sql(self) -> str:
        return f"ABS({self.left.to_sql()} - {self.right.to_sql()})"

    def sql_condition(self, score: float) -> str:
        band = self.band_at(score)
        if band == 0:
            return f"{self.left.to_sql()} = {self.right.to_sql()}"
        return f"{self.delta_sql()} <= {band!r}"

    def sql_annulus(self, score_lo: float, score_hi: float) -> str:
        outer = self.band_at(score_hi)
        parts = [f"{self.delta_sql()} <= {outer!r}"]
        if score_lo >= 0:
            inner = self.band_at(max(score_lo, 0.0))
            parts.append(f"{self.delta_sql()} > {inner!r}")
        return " AND ".join(parts)

    def max_useful_score(self, domain: Interval) -> float:
        """PScore at which the band covers the whole delta domain."""
        gap = domain.hi - self.tolerance
        return max(gap, 0.0) * 100.0 / self.denominator

    def describe(self, score: float = 0.0) -> str:
        band = self.band_at(score)
        if band == 0:
            return f"{self.left.to_sql()} = {self.right.to_sql()}"
        return f"|{self.left.to_sql()} - {self.right.to_sql()}| <= {band:g}"


@dataclass(frozen=True)
class CategoricalPredicate(_BasePredicate):
    """Ontology-driven categorical predicate (paper section 7.3).

    ``accepted`` is the original set of category values; refinement by
    one unit rolls every accepted value one level up the ontology tree,
    admitting all categories under the resulting ancestors. PScores are
    scaled so that one roll-up level costs ``100 / tree depth`` —
    fully generalizing to the root costs 100, commensurate with numeric
    predicates.
    """

    column: ColumnRef = field(default=None)  # type: ignore[assignment]
    accepted: frozenset[str] = field(default=frozenset())
    ontology: "OntologyTree" = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.column is None or self.ontology is None:
            raise QueryModelError(
                f"categorical predicate {self.name!r}: column and ontology required"
            )
        if not self.accepted:
            raise QueryModelError(
                f"categorical predicate {self.name!r}: accepted set is empty"
            )

    @property
    def level_scale(self) -> float:
        """PScore cost of one roll-up level."""
        depth = max(self.ontology.depth, 1)
        return 100.0 / depth

    @property
    def effective_denominator(self) -> float:
        return 100.0

    def level_at(self, score: float) -> int:
        self._require_refinable(score)
        return max(int(math.floor(score / self.level_scale + 1e-9)), 0)

    @property
    def max_shrink_score(self) -> float:
        """Categorical predicates do not shrink (drill-down is future work)."""
        return 0.0

    def accepted_at(self, score: float) -> frozenset[str]:
        """The expanded accepted-value set at PScore ``score``."""
        return self.ontology.expand(self.accepted, self.level_at(score))

    def interval_at(self, score: float) -> Interval:
        """Roll-up level interval (for uniformity with numeric kinds)."""
        return Interval(0.0, float(self.level_at(score)))

    def scores_of_values(self, values: np.ndarray) -> np.ndarray:
        distances = np.array(
            [self.ontology.distance(self.accepted, value) for value in values],
            dtype=np.float64,
        )
        scores = distances * self.level_scale
        if not self.refinable:
            scores = np.where(scores > 0, np.inf, scores)
        return scores

    def max_useful_score(self, domain: Interval) -> float:
        return float(self.ontology.depth) * self.level_scale

    def _sql_in(self, values: frozenset[str]) -> str:
        quoted = ", ".join(
            "'" + value.replace("'", "''") + "'" for value in sorted(values)
        )
        return f"{self.column.to_sql()} IN ({quoted})"

    def sql_condition(self, score: float) -> str:
        return self._sql_in(self.accepted_at(score))

    def sql_annulus(self, score_lo: float, score_hi: float) -> str:
        outer = self.accepted_at(score_hi)
        if score_lo < 0:
            return self._sql_in(outer)
        inner = self.accepted_at(max(score_lo, 0.0))
        fresh = outer - inner
        if not fresh:
            return "1=0"
        return self._sql_in(frozenset(fresh))

    def describe(self, score: float = 0.0) -> str:
        values = sorted(self.accepted_at(score))
        return f"{self.column.to_sql()} IN {values}"


Predicate = Union[SelectPredicate, JoinPredicate, CategoricalPredicate]
