"""OSP aggregates (paper section 2.6).

ACQUIRE supports aggregates with the *optimal substructure property*
(OSP): the aggregate of a containing query can be combined from
sub-query aggregates without touching the sub-query's tuples again.
COUNT, SUM, MIN and MAX satisfy OSP directly; AVG is decomposed into
(SUM, COUNT); STDDEV does not satisfy OSP and is rejected.

An aggregate's running value is a *state* — a small tuple of floats —
so that multi-part aggregates such as AVG fit the same interface.
The incremental aggregate computation of the Explore phase only ever
uses :meth:`OSPAggregate.identity`, :meth:`OSPAggregate.combine`,
:meth:`OSPAggregate.lift` and :meth:`OSPAggregate.finalize`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.engine.expression import Expression
from repro.exceptions import OSPViolationError, QueryModelError

#: Aggregate running state: a fixed-arity tuple of floats.
AggState = Tuple[float, ...]


class OSPAggregate:
    """Base class for aggregates with the optimal substructure property.

    Attributes:
        name: SQL-facing name (``COUNT``, ``SUM``...).
        needs_attribute: whether the aggregate takes an input column.
        monotone_expanding: True when expanding the query result set can
            only increase (or preserve) the finalized value. The driver
            uses this to decide whether overshoot repartitioning can
            converge by shrinking.
        subtractable: True when ``combine`` has an inverse — required by
            the contraction extension's incremental mode.
    """

    name: str = "?"
    needs_attribute: bool = True
    monotone_expanding: bool = False
    subtractable: bool = False
    state_arity: int = 1

    # ------------------------------------------------------------------
    # OSP interface
    # ------------------------------------------------------------------
    def identity(self) -> AggState:
        """State of an empty result set."""
        raise NotImplementedError

    def combine(self, left: AggState, right: AggState) -> AggState:
        """Merge two disjoint sub-query states (the heart of OSP)."""
        raise NotImplementedError

    def lift(self, values: np.ndarray) -> AggState:
        """Compute the state of a base set of tuples from raw values.

        For COUNT the values array is only used for its length.
        """
        raise NotImplementedError

    def finalize(self, state: AggState) -> float:
        """Collapse a state to the user-visible aggregate value.

        Returns NaN for value-aggregates over empty sets (MIN/MAX/AVG).
        """
        raise NotImplementedError

    def subtract(self, total: AggState, part: AggState) -> AggState:
        raise OSPViolationError(
            f"{self.name} states cannot be subtracted (combine has no inverse)"
        )

    # ------------------------------------------------------------------
    # SQL backend hooks
    # ------------------------------------------------------------------
    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        """SQL aggregate expressions producing the state parts in order."""
        raise NotImplementedError

    def state_from_sql(self, row: tuple) -> AggState:
        """Convert a fetched SQL row (one column per state part) to a state."""
        return tuple(0.0 if value is None else float(value) for value in row)

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


class CountAggregate(OSPAggregate):
    """COUNT(*): the paper's running example."""

    name = "COUNT"
    needs_attribute = False
    monotone_expanding = True
    subtractable = True

    def identity(self) -> AggState:
        return (0.0,)

    def combine(self, left: AggState, right: AggState) -> AggState:
        return (left[0] + right[0],)

    def lift(self, values: np.ndarray) -> AggState:
        return (float(len(values)),)

    def finalize(self, state: AggState) -> float:
        return state[0]

    def subtract(self, total: AggState, part: AggState) -> AggState:
        return (total[0] - part[0],)

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        return ["COUNT(*)"]


class SumAggregate(OSPAggregate):
    """SUM(attr); monotone under expansion for non-negative attributes."""

    name = "SUM"
    monotone_expanding = True
    subtractable = True

    def identity(self) -> AggState:
        return (0.0,)

    def combine(self, left: AggState, right: AggState) -> AggState:
        return (left[0] + right[0],)

    def lift(self, values: np.ndarray) -> AggState:
        return (float(np.sum(values)) if len(values) else 0.0,)

    def finalize(self, state: AggState) -> float:
        return state[0]

    def subtract(self, total: AggState, part: AggState) -> AggState:
        return (total[0] - part[0],)

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        return [f"SUM({attribute_sql})"]


class MinAggregate(OSPAggregate):
    """MIN(attr). Identity is +inf; finalize maps empty to NaN."""

    name = "MIN"

    def identity(self) -> AggState:
        return (math.inf,)

    def combine(self, left: AggState, right: AggState) -> AggState:
        return (min(left[0], right[0]),)

    def lift(self, values: np.ndarray) -> AggState:
        return (float(np.min(values)) if len(values) else math.inf,)

    def finalize(self, state: AggState) -> float:
        return math.nan if math.isinf(state[0]) else state[0]

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        return [f"MIN({attribute_sql})"]

    def state_from_sql(self, row: tuple) -> AggState:
        return (math.inf if row[0] is None else float(row[0]),)


class MaxAggregate(OSPAggregate):
    """MAX(attr); monotone under expansion."""

    name = "MAX"
    monotone_expanding = True

    def identity(self) -> AggState:
        return (-math.inf,)

    def combine(self, left: AggState, right: AggState) -> AggState:
        return (max(left[0], right[0]),)

    def lift(self, values: np.ndarray) -> AggState:
        return (float(np.max(values)) if len(values) else -math.inf,)

    def finalize(self, state: AggState) -> float:
        return math.nan if math.isinf(state[0]) else state[0]

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        return [f"MAX({attribute_sql})"]

    def state_from_sql(self, row: tuple) -> AggState:
        return (-math.inf if row[0] is None else float(row[0]),)


class AvgAggregate(OSPAggregate):
    """AVG(attr), decomposed into (SUM, COUNT) exactly as in the paper."""

    name = "AVG"
    subtractable = True
    state_arity = 2

    def identity(self) -> AggState:
        return (0.0, 0.0)

    def combine(self, left: AggState, right: AggState) -> AggState:
        return (left[0] + right[0], left[1] + right[1])

    def lift(self, values: np.ndarray) -> AggState:
        if len(values) == 0:
            return (0.0, 0.0)
        return (float(np.sum(values)), float(len(values)))

    def finalize(self, state: AggState) -> float:
        total, count = state
        return math.nan if count == 0 else total / count

    def subtract(self, total: AggState, part: AggState) -> AggState:
        return (total[0] - part[0], total[1] - part[1])

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        return [f"SUM({attribute_sql})", f"COUNT({attribute_sql})"]


class UserDefinedAggregate(OSPAggregate):
    """A user-defined OSP aggregate built from plain callables.

    The paper supports "user defined aggregates that either satisfy the
    optimal substructure property or can be broken into functions that
    satisfy OSP" (Table 1, footnote 2). Supplying ``identity``,
    ``combine`` and ``lift`` is exactly that contract.
    """

    def __init__(
        self,
        name: str,
        identity: AggState,
        combine: Callable[[AggState, AggState], AggState],
        lift: Callable[[np.ndarray], AggState],
        finalize: Callable[[AggState], float] = lambda state: state[0],
        monotone_expanding: bool = False,
        sql_selects: Optional[Callable[[Optional[str]], list[str]]] = None,
    ) -> None:
        self.name = name.upper()
        self._identity = tuple(identity)
        self._combine = combine
        self._lift = lift
        self._finalize = finalize
        self.monotone_expanding = monotone_expanding
        self._sql_selects = sql_selects
        self.state_arity = len(self._identity)

    def identity(self) -> AggState:
        return self._identity

    def combine(self, left: AggState, right: AggState) -> AggState:
        return tuple(self._combine(left, right))

    def lift(self, values: np.ndarray) -> AggState:
        return tuple(self._lift(values))

    def finalize(self, state: AggState) -> float:
        return float(self._finalize(state))

    def sql_selects(self, attribute_sql: Optional[str]) -> list[str]:
        if self._sql_selects is None:
            raise OSPViolationError(
                f"user aggregate {self.name} has no SQL rendering; "
                "use the memory backend"
            )
        return self._sql_selects(attribute_sql)


COUNT = CountAggregate()
SUM = SumAggregate()
MIN = MinAggregate()
MAX = MaxAggregate()
AVG = AvgAggregate()

_BUILTINS: dict[str, OSPAggregate] = {
    aggregate.name: aggregate for aggregate in (COUNT, SUM, MIN, MAX, AVG)
}

#: Aggregates the paper explicitly calls out as lacking OSP.
_NON_OSP = {"STDDEV", "STDEV", "VARIANCE", "VAR", "MEDIAN", "PERCENTILE"}


def get_aggregate(name: str) -> OSPAggregate:
    """Look up a built-in aggregate by SQL name.

    Raises :class:`OSPViolationError` for known non-OSP aggregates
    (STDDEV et al., per paper section 2.6) and
    :class:`QueryModelError` for unknown names.
    """
    upper = name.upper()
    if upper in _NON_OSP:
        raise OSPViolationError(
            f"{upper} does not satisfy the optimal substructure property "
            "(paper section 2.6) and cannot be processed by ACQUIRE"
        )
    try:
        return _BUILTINS[upper]
    except KeyError:
        raise QueryModelError(f"unknown aggregate function: {name!r}") from None


@dataclass(frozen=True)
class AggregateSpec:
    """A concrete aggregate application: function plus input attribute.

    ``attribute`` is ``None`` only for COUNT(*).
    """

    aggregate: OSPAggregate
    attribute: Optional[Expression] = None

    def __post_init__(self) -> None:
        if self.aggregate.needs_attribute and self.attribute is None:
            raise QueryModelError(
                f"{self.aggregate.name} requires an input attribute"
            )

    def describe(self) -> str:
        inner = self.attribute.to_sql() if self.attribute is not None else "*"
        return f"{self.aggregate.name}({inner})"
