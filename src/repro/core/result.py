"""Result objects returned by the ACQUIRE driver."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.interval import Interval
from repro.core.query import Query
from repro.engine.backends import ExecutionStats
from repro.exceptions import QueryModelError


@dataclass(frozen=True)
class RefinedQuery:
    """One refined query recommended by ACQUIRE.

    Attributes:
        pscores: per-predicate refinement vector (paper Equation 2),
            indexed like ``query.refinable_predicates``.
        qscore: query refinement score under the configured norm.
        aggregate_value: the actual aggregate ``Aactual`` of this query.
        error: aggregate error ``Err_A`` against the constraint target —
            for multi-constraint ACQs the *combined* distance over all
            constraints (see
            :class:`~repro.core.scoring.ConstraintDistance`).
        coords: originating grid coordinates (``None`` for off-grid
            queries produced by repartitioning).
        intervals: refined value interval per refinable predicate.
        extra_values: actual aggregates of the extra constraints, in
            ``query.extra_constraints`` order (empty for the common
            single-constraint case).
    """

    query: Query
    pscores: tuple[float, ...]
    qscore: float
    aggregate_value: float
    error: float
    intervals: tuple[Interval, ...]
    coords: Optional[tuple[int, ...]] = None
    extra_values: tuple[float, ...] = ()

    @property
    def aggregate_values(self) -> tuple[float, ...]:
        """Per-constraint actual aggregates, primary first."""
        return (self.aggregate_value,) + self.extra_values

    def describe(self) -> str:
        """Human-readable rendering of the refined predicates."""
        parts = []
        for predicate, score in zip(
            self.query.refinable_predicates, self.pscores
        ):
            parts.append(predicate.describe(score))
        for predicate in self.query.fixed_predicates:
            parts.append(predicate.describe() + " /*NOREFINE*/")
        where = "\n  AND ".join(parts) if parts else "1=1"
        return (
            f"SELECT * FROM {', '.join(self.query.tables)}\n"
            f"WHERE {where}\n"
            f"-- {self.query.constraint.spec.describe()} = "
            f"{self.aggregate_value:g} (QScore {self.qscore:.3f})"
        )


@dataclass
class SearchStats:
    """Work performed by one ACQUIRE run.

    ``explore_mode`` records which Explore engine actually ran —
    ``incremental``, ``materialized`` or ``tiled`` — after ``auto``
    resolution (see :mod:`repro.core.plan`); ``plan_reason`` is the
    plan's justification (``forced``, ``cost-model``, ...) and
    ``estimated_visited`` its predicted visited-cell count, kept next
    to ``grid_queries_examined`` so planner calibration can compare
    prediction against outcome. ``tile_workers`` is the worker count
    the sharded tile pipeline ran with (0 when the engine was not
    tiled) and ``tile_executor`` the tier it ran on — ``thread`` or
    ``process``, after any runtime fallback ("" when not tiled);
    per-tier cache and process counters live in ``execution``
    (``persistent_hits``, ``block_hits``, ``parallel_tiles``,
    ``process_tiles``, ``process_fallbacks``, ...).
    ``top_k`` is the ranking depth the search was asked for
    (``AcquireConfig.top_k``): the traversal keeps exploring layers
    until the k best answer layers are complete instead of just the
    first.
    """

    top_k: int = 1
    grid_queries_examined: int = 0
    cells_executed: int = 0
    cells_skipped: int = 0
    layers_explored: int = 0
    repartition_probes: int = 0
    elapsed_s: float = 0.0
    explore_mode: str = "incremental"
    plan_reason: str = ""
    estimated_visited: int = 0
    tile_workers: int = 0
    tile_executor: str = ""
    execution: ExecutionStats = field(default_factory=ExecutionStats)


@dataclass
class AcquireResult:
    """Outcome of one ACQUIRE run (paper Definition 1's answer set).

    ``answers`` holds every refined query in the terminating layer whose
    aggregate error is within delta, ordered by (qscore, error).
    ``closest`` is the examined query with smallest error — returned
    per Algorithm 4 when no query satisfies the constraint.
    """

    query: Query
    answers: list[RefinedQuery]
    closest: Optional[RefinedQuery]
    original_value: float
    stats: SearchStats

    @property
    def satisfied(self) -> bool:
        return bool(self.answers)

    @property
    def best(self) -> Optional[RefinedQuery]:
        """The recommended query: best answer, else the closest one."""
        if self.answers:
            return self.answers[0]
        return self.closest

    def top(self, k: Optional[int] = None) -> list[RefinedQuery]:
        """The k best alternative refinements, (qscore, error)-ranked.

        Defaults to the ``top_k`` the search ran with. The list is
        score-monotone (non-decreasing qscore) and its first element is
        always ``best`` when the constraint was satisfied: extra ranks
        come from exploring *further* layers, which can never displace
        an earlier one. Fewer than k entries means the space genuinely
        holds fewer satisfying refinements (within the search budget).
        """
        if k is None:
            k = self.stats.top_k or 1
        if k < 1:
            raise QueryModelError(f"top(k) requires k >= 1, got {k}")
        return self.answers[:k]

    @property
    def qscore(self) -> float:
        best = self.best
        return best.qscore if best is not None else math.inf

    @property
    def error(self) -> float:
        best = self.best
        return best.error if best is not None else math.inf

    def alternatives_table(self, limit: int = 10) -> str:
        """Aligned text table of the answer set (the user-facing menu).

        The paper's desired user experience: "The output of such a
        search would be a set of refined queries ... Alice would then
        simply pick the query that best meets her selection criteria."
        """
        candidates = self.answers[:limit] or (
            [self.closest] if self.closest else []
        )
        if not candidates:
            return "(no refined queries found)"
        dims = self.query.refinable_predicates
        header = ["#", "QScore", "A_actual", "err"] + [
            predicate.name for predicate in dims
        ]
        body = []
        for index, answer in enumerate(candidates, start=1):
            body.append(
                [
                    str(index),
                    f"{answer.qscore:.2f}",
                    f"{answer.aggregate_value:g}",
                    f"{answer.error:.4f}",
                ]
                + [str(interval) for interval in answer.intervals]
            )
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body))
            for i in range(len(header))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def summary(self) -> str:
        target = self.query.constraint.target
        lines = [
            f"query {self.query.name!r}: target "
            f"{self.query.constraint.describe()} "
            f"(original {self.original_value:g})",
            f"  answers: {len(self.answers)} "
            f"(satisfied={self.satisfied})",
        ]
        best = self.best
        if best is not None:
            lines.append(
                f"  best: QScore={best.qscore:.3f} "
                f"A={best.aggregate_value:g} err={best.error:.4f} "
                f"(target {target:g})"
            )
        lines.append(
            f"  work: {self.stats.grid_queries_examined} grid queries, "
            f"{self.stats.cells_executed} cell executions, "
            f"{self.stats.execution.queries_executed} backend queries, "
            f"{self.stats.elapsed_s * 1000:.1f} ms "
            f"({self.stats.explore_mode} explore)"
        )
        return "\n".join(lines)
