"""Contracting queries with too many results (paper section 7.2).

The paper: construct ``Q'_min`` with each predicate of the original
query set to its minimum value; the refined space is then bounded by
``Q`` and ``Q'_min`` and traversed "minimizing refinement with respect
to Q instead of Q'_min".

Implementation notes. Contraction reuses the signed-score predicate
algebra: a grid point at contraction coordinates ``(c_1 .. c_d)``
corresponds to the query with every dimension shrunk by ``c_i * step``
percent (signed PScore ``-c_i * step``). Queries are generated
best-first in order of increasing QScore magnitude — i.e. closest to
``Q`` first — exactly mirroring the Expand phase.

One deliberate departure from the expansion path: aggregates are
computed by executing each shrunk query as a *box* query rather than
through the incremental cell recurrence. The Explore recurrence
(Equation 17) consumes sub-aggregates of *contained* queries, which the
expansion traversal visits first; a contraction traversal ordered by
proximity to ``Q`` visits *containing* queries first, so the recurrence
inputs are not yet available. The paper gives no algorithmic detail for
7.2 beyond the paragraph quoted above; the monotone pruning below
(children of an over-shrunk query are skipped for monotone aggregates)
keeps the number of executed queries close to the number of useful
grid points.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.error import default_error_for
from repro.core.query import ConstraintOp, Query
from repro.core.result import AcquireResult, RefinedQuery, SearchStats
from repro.core.scoring import MaxConstraintDistance, Norm
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.core.acquire import AcquireConfig

_LAYER_EPS = 1e-9

Coords = tuple[int, ...]


class ContractionSpace:
    """Grid over shrinkage scores, bounded by ``Q`` and ``Q'_min``."""

    def __init__(
        self,
        query: Query,
        gamma: float,
        norm: Norm,
        step: Optional[float] = None,
    ) -> None:
        self.query = query
        self.dims = query.refinable_predicates
        self.d = len(self.dims)
        if self.d == 0:
            raise QueryModelError(
                "query has no refinable predicates; nothing to contract"
            )
        self.norm = norm
        self.step = float(step) if step is not None else gamma / self.d
        if self.step <= 0:
            raise QueryModelError("grid step must be > 0")
        self.weights = query.weights
        self.max_coords = tuple(
            int(math.ceil(self._shrink_cap(predicate) / self.step - 1e-9))
            if self._shrink_cap(predicate) > 0
            else 0
            for predicate in self.dims
        )

    @staticmethod
    def _shrink_cap(predicate: object) -> float:
        limit = getattr(predicate, "limit", None)
        cap = predicate.max_shrink_score  # type: ignore[attr-defined]
        if limit is not None:
            cap = min(cap, limit)
        return cap

    @property
    def origin(self) -> Coords:
        return (0,) * self.d

    def scores(self, coords: Sequence[int]) -> tuple[float, ...]:
        """Signed PScores (all <= 0) of a contraction grid point."""
        return tuple(-coord * self.step for coord in coords)

    def qscore(self, coords: Sequence[int]) -> float:
        magnitudes = [coord * self.step for coord in coords]
        return self.norm.qscore(magnitudes, self.weights)

    def qscore_of_scores(self, scores: Sequence[float]) -> float:
        return self.norm.qscore([abs(score) for score in scores], self.weights)


def contract_query(
    layer: EvaluationLayer, query: Query, config: "AcquireConfig"
) -> AcquireResult:
    """Shrink ``query`` until its aggregate meets the constraint.

    Handles ``<=``/``<`` constraints, and ``=`` constraints whose
    original query overshoots the target (the :class:`Acquire` driver
    delegates both cases here).
    """
    # One stat scope per search (nested inside the expansion scope on
    # the EQ-overshoot delegation path, where the inner scope reports
    # exactly what the old snapshot/delta window did).
    with layer.request_scope() as layer_scope:
        return _contract_scoped(layer, query, config, layer_scope)


def _contract_scoped(
    layer: EvaluationLayer,
    query: Query,
    config: "AcquireConfig",
    layer_scope: ExecutionStats,
) -> AcquireResult:
    started = time.perf_counter()
    constraint = query.constraint
    aggregate = constraint.spec.aggregate
    target = constraint.target
    error_fn = config.error_fn or default_error_for(constraint.op)
    distance = config.constraint_distance or MaxConstraintDistance()

    prepared = layer.prepare(query, [0.0] * query.dimensionality)
    # Extra constraints of a multi-constraint ACQ evaluate through their
    # own prepared handles, one box query per examined shrink point.
    extra_ctx = [
        (
            extra,
            layer.prepare(
                query.with_only_constraint(extra),
                [0.0] * query.dimensionality,
            ),
            default_error_for(extra.op),
        )
        for extra in query.extra_constraints
    ]
    space = ContractionSpace(query, config.gamma, config.norm, config.step)
    stats = SearchStats(top_k=config.top_k)

    original_state = layer.execute_box(prepared, (0.0,) * space.d)
    original_value = aggregate.finalize(original_state)

    answers: list[RefinedQuery] = []
    closest: Optional[RefinedQuery] = None
    # Heap-pop QScores at which answers were recorded (non-decreasing);
    # the stop threshold is the k-th smallest, exactly the expansion
    # path's generalized answer-layer rule.
    answer_layers: list[float] = []

    def answer_threshold() -> float:
        if len(answer_layers) < config.top_k:
            return math.inf
        return answer_layers[config.top_k - 1]

    # Best-first over shrinkage grid, mirroring the Expand phase but
    # with subtree pruning once a monotone aggregate falls below any
    # value the constraint could still accept.
    heap: list[tuple[float, int, Coords]] = [(0.0, 0, space.origin)]
    queued: set[Coords] = {space.origin}
    while heap:
        qscore, total, coords = heapq.heappop(heap)
        if qscore > answer_threshold() + _LAYER_EPS:
            break
        if stats.grid_queries_examined >= config.max_grid_queries:
            break
        stats.grid_queries_examined += 1

        scores = space.scores(coords)
        state = (
            original_state
            if coords == space.origin
            else layer.execute_box(prepared, scores)
        )
        actual = aggregate.finalize(state)
        primary_error = error_fn(target, actual)
        extra_values: tuple[float, ...] = ()
        if extra_ctx:
            extra_errors = []
            values = []
            for extra, prepared_extra, extra_error_fn in extra_ctx:
                extra_state = layer.execute_box(prepared_extra, scores)
                value = extra.spec.aggregate.finalize(extra_state)
                values.append(value)
                extra_errors.append(extra_error_fn(extra.target, value))
            extra_values = tuple(values)
            error = distance.combine([primary_error, *extra_errors])
        else:
            error = primary_error
        refined = _refined(
            query, space, scores, actual, error, coords, extra_values
        )
        closest = _closer(closest, refined)

        overshrunk = (
            aggregate.monotone_expanding
            and not math.isnan(actual)
            and actual < target
        )
        if error <= config.delta:
            answers.append(refined)
            answer_layers.append(qscore)
        elif overshrunk and constraint.op is ConstraintOp.EQ and not extra_ctx:
            candidate = _repartition_shrink(
                layer,
                prepared,
                query,
                space,
                coords,
                target,
                error_fn,
                config,
                stats,
            )
            if candidate is not None:
                closest = _closer(closest, candidate)
                if candidate.error <= config.delta:
                    answers.append(candidate)
                    answer_layers.append(qscore)

        if overshrunk and config.top_k == 1 and not extra_ctx:
            # Monotone: deeper shrinkage only reduces further, and with
            # k=1 no pruned descendant can reach the first answer rank.
            # A top-k ranking *does* want those deeper satisfying points
            # (a <= constraint's answers get cheaper to satisfy, not
            # rarer, as shrinkage grows), and a conjunction of
            # constraints voids the monotone argument, so both keep
            # expanding.
            continue
        for dim in range(space.d):
            if coords[dim] >= space.max_coords[dim]:
                continue
            successor = coords[:dim] + (coords[dim] + 1,) + coords[dim + 1 :]
            if successor in queued:
                continue
            queued.add(successor)
            heapq.heappush(
                heap, (space.qscore(successor), total + 1, successor)
            )

    stats.elapsed_s = time.perf_counter() - started
    stats.execution = layer_scope.snapshot()
    answers.sort(key=lambda a: (a.qscore, a.error))
    return AcquireResult(
        query=query,
        answers=answers,
        closest=closest,
        original_value=original_value,
        stats=stats,
    )


def _refined(
    query: Query,
    space: ContractionSpace,
    scores: Sequence[float],
    actual: float,
    error: float,
    coords: Optional[Coords],
    extra_values: tuple[float, ...] = (),
) -> RefinedQuery:
    intervals = tuple(
        predicate.interval_at(score)
        for predicate, score in zip(query.refinable_predicates, scores)
    )
    return RefinedQuery(
        query=query,
        pscores=tuple(scores),
        qscore=space.qscore_of_scores(scores),
        aggregate_value=actual,
        error=error,
        intervals=intervals,
        coords=coords,
        extra_values=extra_values,
    )


def _repartition_shrink(
    layer: EvaluationLayer,
    prepared: object,
    query: Query,
    space: ContractionSpace,
    coords: Coords,
    target: float,
    error_fn: object,
    config: "AcquireConfig",
    stats: SearchStats,
) -> Optional[RefinedQuery]:
    """Bisect between an over-shrunk grid query and its predecessor."""
    if config.repartition_iterations == 0:
        return None
    aggregate = query.constraint.spec.aggregate
    hi_scores = space.scores(coords)  # more shrunk (all <= 0)
    lo_scores = tuple(min(score + space.step, 0.0) for score in hi_scores)
    if hi_scores == lo_scores:
        return None
    best: Optional[RefinedQuery] = None
    low, high = 0.0, 1.0
    for _ in range(config.repartition_iterations):
        midpoint = (low + high) / 2.0
        scores = tuple(
            lo + midpoint * (hi - lo) for lo, hi in zip(lo_scores, hi_scores)
        )
        state = layer.execute_box(prepared, scores)
        actual = aggregate.finalize(state)
        stats.repartition_probes += 1
        error = error_fn(target, actual)  # type: ignore[operator]
        candidate = _refined(query, space, scores, actual, error, None)
        best = _closer(best, candidate)
        if math.isnan(actual) or actual < target:
            high = midpoint  # too shrunk: back off
        else:
            low = midpoint
    return best


def _closer(
    current: Optional[RefinedQuery], candidate: RefinedQuery
) -> RefinedQuery:
    if current is None:
        return candidate
    if (candidate.error, candidate.qscore) < (current.error, current.qscore):
        return candidate
    return current
