"""The Refined Space abstraction ``RS(Q)`` (paper section 4).

``RS(Q)`` is a d-dimensional space whose origin is the original query
and whose axes measure per-predicate refinement (PScore). ACQUIRE
discretizes it into a grid of step ``gamma / d`` (Theorem 1 then bounds
the distance between the optimal refined query and the best grid query
by ``gamma``). This class owns the bookkeeping between the three
coordinate systems in play:

* grid coordinates — integer tuples, one per grid query;
* refinement scores — grid coordinate * step, i.e. PScores;
* value intervals — what the evaluation layer actually filters on.

The per-dimension extent is clipped to what can possibly matter: the
predicate's user-supplied refinement limit (section 7.1) and the
*useful* maximum derived from the observed attribute domain (expanding
past the domain admits no new tuples).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.interval import Interval
from repro.core.predicate import Predicate
from repro.core.query import Query
from repro.core.scoring import LpNorm, Norm
from repro.exceptions import QueryModelError

#: Grid cells at coordinate 0 cover exactly PScore 0 (the original
#: predicate); this sentinel lower bound marks them in cell ranges.
BASE_CELL_LO = -1.0

#: Safety cap on per-dimension grid extent.
MAX_COORD_CAP = 100_000


class RefinedSpace:
    """Grid view of all refinements of a query.

    Args:
        query: the ACQ being refined.
        gamma: refinement threshold; the grid step is ``gamma / d``.
        max_scores: per-dimension ceiling on the PScore — the driver
            combines predicate limits (section 7.1) with the evaluation
            layer's useful maximum (beyond the observed attribute domain
            expansion admits nothing).
        norm: QScore norm (default: the paper's L1).
        step: explicit grid step overriding ``gamma / d``.
    """

    def __init__(
        self,
        query: Query,
        gamma: float,
        max_scores: Sequence[float],
        norm: Norm | None = None,
        step: float | None = None,
    ) -> None:
        if gamma <= 0:
            raise QueryModelError("gamma (refinement threshold) must be > 0")
        self.query = query
        self.gamma = float(gamma)
        self.norm: Norm = norm if norm is not None else LpNorm(1)
        self.dims: tuple[Predicate, ...] = query.refinable_predicates
        self.d = len(self.dims)
        if self.d == 0:
            raise QueryModelError(
                "query has no refinable predicates; nothing to expand"
            )
        if len(max_scores) != self.d:
            raise QueryModelError(
                f"expected {self.d} max scores, got {len(max_scores)}"
            )
        self.step = float(step) if step is not None else self.gamma / self.d
        if self.step <= 0:
            raise QueryModelError("grid step must be > 0")
        self.weights = query.weights
        self.max_coords = tuple(
            self._max_coord(predicate, max_score)
            for predicate, max_score in zip(self.dims, max_scores)
        )

    def _max_coord(self, predicate: Predicate, max_score: float) -> int:
        useful = max_score
        if predicate.limit is not None:
            useful = min(useful, predicate.limit)
        if not math.isfinite(useful):
            return MAX_COORD_CAP
        coord = int(math.ceil(useful / self.step - 1e-9))
        return max(0, min(coord, MAX_COORD_CAP))

    # ------------------------------------------------------------------
    # Coordinate conversions
    # ------------------------------------------------------------------
    @property
    def origin(self) -> tuple[int, ...]:
        return (0,) * self.d

    def scores(self, coords: Sequence[int]) -> tuple[float, ...]:
        """PScore vector of a grid query."""
        self._check(coords)
        return tuple(coord * self.step for coord in coords)

    def qscore(self, coords: Sequence[int]) -> float:
        """QScore of a grid query under the space's norm and weights."""
        return self.norm.qscore(self.scores(coords), self.weights)

    def qscore_of_scores(self, scores: Sequence[float]) -> float:
        """QScore of an arbitrary (possibly off-grid) PScore vector."""
        return self.norm.qscore(list(scores), self.weights)

    def intervals_at(self, coords: Sequence[int]) -> list[Interval]:
        """Refined value intervals of each dimension's predicate."""
        return [
            predicate.interval_at(score)
            for predicate, score in zip(self.dims, self.scores(coords))
        ]

    def cell_ranges(
        self, coords: Sequence[int]
    ) -> list[tuple[float, float]]:
        """Per-dimension PScore range covered by the *cell* at ``coords``.

        Coordinate 0 covers exactly score 0 (lower bound is the
        :data:`BASE_CELL_LO` sentinel); coordinate c >= 1 covers the
        half-open annulus ``((c-1)*step, c*step]``.
        """
        self._check(coords)
        ranges = []
        for coord in coords:
            if coord == 0:
                ranges.append((BASE_CELL_LO, 0.0))
            else:
                ranges.append(((coord - 1) * self.step, coord * self.step))
        return ranges

    def contains(self, coords: Sequence[int]) -> bool:
        """Whether the grid point exists (within per-dim extents)."""
        return len(coords) == self.d and all(
            0 <= coord <= limit for coord, limit in zip(coords, self.max_coords)
        )

    def _check(self, coords: Sequence[int]) -> None:
        if len(coords) != self.d:
            raise QueryModelError(
                f"coordinate arity {len(coords)} != dimensionality {self.d}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def grid_size(self) -> int:
        """Total number of grid queries (can be astronomically large)."""
        size = 1
        for limit in self.max_coords:
            size *= limit + 1
        return size

    def layer_sizes(self, max_layers: int) -> list[int]:
        """Grid-query counts of the first L1 layers.

        Entry ``k`` is the number of grid points whose coordinates sum
        to ``k`` (respecting per-dimension extents) — with the default
        L1 norm and unit weights, exactly the queries explored at
        QScore ``k * step``. The static analyzer uses this to estimate
        per-layer query counts without running the search.
        """
        if max_layers < 0:
            raise QueryModelError("max_layers must be >= 0")
        counts = [1] + [0] * max_layers
        for limit in self.max_coords:
            merged = [0] * (max_layers + 1)
            for total in range(max_layers + 1):
                if counts[total] == 0:
                    continue
                for coord in range(min(limit, max_layers - total) + 1):
                    merged[total + coord] += counts[total]
            counts = merged
        return counts

    def describe(self, coords: Sequence[int]) -> str:
        parts = [
            predicate.describe(score)
            for predicate, score in zip(self.dims, self.scores(coords))
        ]
        return " AND ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RefinedSpace(d={self.d}, step={self.step:g}, "
            f"max_coords={self.max_coords})"
        )
