"""Sub-aggregate storage backends for the Explore phase.

The paper (section 5.1.1): "We must store only the aggregate values for
the d + 1 sub-queries. The corresponding result tuples can either be
stored in main memory or paged to disk." The default
:class:`~repro.core.explore.SubAggregateStore` keeps everything in a
dict; for very large refined spaces this module provides
:class:`PagedSubAggregateStore`, which pages the per-grid-point state
lists through an LRU-bounded memory cache into a SQLite file, keeping
resident memory proportional to the cache size instead of the number of
visited grid queries.

Both stores expose the same ``put`` / ``get`` / ``__contains__`` /
``__len__`` interface the :class:`~repro.core.explore.Explorer`
consumes, so swapping them is a one-argument change.
"""

from __future__ import annotations

import os
import struct
import tempfile
from collections import OrderedDict
from typing import Optional

from repro.core.aggregates import AggState
from repro.engine import sqlite_util
from repro.exceptions import SearchError

Coords = tuple[int, ...]


def _encode_coords(coords: Coords) -> bytes:
    return struct.pack(f"<{len(coords)}q", *coords)


def _decode_coords(blob: bytes) -> Coords:
    return struct.unpack(f"<{len(blob) // 8}q", blob)


def _encode_states(states: list[AggState]) -> bytes:
    """Flatten a list of equal-arity float tuples."""
    arity = len(states[0]) if states else 0
    flat = [value for state in states for value in state]
    return struct.pack(f"<2i{len(flat)}d", len(states), arity, *flat)


def _decode_states(blob: bytes) -> list[AggState]:
    count, arity = struct.unpack_from("<2i", blob)
    flat = struct.unpack_from(f"<{count * arity}d", blob, offset=8)
    return [
        tuple(flat[index * arity : (index + 1) * arity])
        for index in range(count)
    ]


class PagedSubAggregateStore:
    """Disk-paged store with a bounded in-memory LRU cache.

    Writes are buffered: ``put`` parks the entry in a pending batch
    that is flushed to SQLite via one ``executemany`` once
    ``flush_size`` entries accumulate (or on :meth:`flush` /
    :meth:`close`), instead of issuing a membership SELECT plus an
    INSERT per call. Membership and length are tracked in a key set,
    so neither ever touches the database.

    Args:
        cache_size: grid points kept resident; older entries are
            evicted (they remain reachable — in the pending write
            buffer or on disk — and page back in on access).
        path: SQLite file to use; defaults to a fresh temporary file
            removed on :meth:`close`. An existing file's entries are
            picked up (membership included).
        flush_size: pending writes buffered before a flush.
    """

    def __init__(
        self,
        cache_size: int = 4096,
        path: Optional[str] = None,
        flush_size: int = 256,
    ) -> None:
        if cache_size < 1:
            raise SearchError("cache_size must be >= 1")
        if flush_size < 1:
            raise SearchError("flush_size must be >= 1")
        self.cache_size = cache_size
        self.flush_size = flush_size
        if path is None:
            handle, path = tempfile.mkstemp(
                prefix="acquire_store_", suffix=".sqlite"
            )
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._connection = sqlite_util.connect(path)
        self._connection.execute("PRAGMA journal_mode=OFF")
        self._connection.execute("PRAGMA synchronous=OFF")
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS states "
            "(coords BLOB PRIMARY KEY, payload BLOB NOT NULL)"
        )
        self._cache: OrderedDict[Coords, list[AggState]] = OrderedDict()
        self._pending: OrderedDict[Coords, list[AggState]] = OrderedDict()
        self._keys: set[Coords] = {
            _decode_coords(row[0])
            for row in self._connection.execute("SELECT coords FROM states")
        }
        self._closed = False
        self.page_ins = 0
        self.evictions = 0
        self.flushes = 0

    # -- SubAggregateStore interface -----------------------------------
    def put(self, coords: Coords, states: list[AggState]) -> None:
        # The page encoding packs a single (count, arity) header, so a
        # mixed-arity list would silently corrupt the payload: encode
        # would write len(states[0]) * count slots but flatten a
        # different number of values. Reject it at the door instead of
        # letting a torn page surface later as garbage aggregates.
        arities = {len(state) for state in states}
        if len(arities) > 1:
            raise SearchError(
                f"mixed-arity sub-aggregate states at {coords}: "
                f"got arities {sorted(arities)}; every state of one "
                "grid point must come from the same aggregate"
            )
        self._keys.add(coords)
        self._pending[coords] = states
        self._cache[coords] = states
        self._cache.move_to_end(coords)
        self._shrink_cache()
        if len(self._pending) >= self.flush_size:
            self.flush()

    def get(self, coords: Coords) -> list[AggState]:
        if coords in self._cache:
            self._cache.move_to_end(coords)
            return self._cache[coords]
        if coords in self._pending:
            # Evicted from the cache before its write was flushed.
            states = self._pending[coords]
            self._cache[coords] = states
            self._shrink_cache()
            return states
        row = self._connection.execute(
            "SELECT payload FROM states WHERE coords = ?",
            (_encode_coords(coords),),
        ).fetchone()
        if row is None:
            raise SearchError(
                f"sub-aggregates for {coords} requested before computation; "
                "traversal violated containment order (Theorem 3)"
            )
        states = _decode_states(row[0])
        self.page_ins += 1
        self._cache[coords] = states
        self._shrink_cache()
        return states

    def __contains__(self, coords: object) -> bool:
        return coords in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def _shrink_cache(self) -> None:
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.evictions += 1

    # -- lifecycle -------------------------------------------------------
    def flush(self) -> None:
        """Write the pending batch to SQLite in one ``executemany``."""
        if not self._pending:
            return
        self._connection.executemany(
            "INSERT OR REPLACE INTO states VALUES (?, ?)",
            [
                (_encode_coords(coords), _encode_states(states))
                for coords, states in self._pending.items()
            ],
        )
        self._connection.commit()
        self._pending.clear()
        self.flushes += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Flushing keeps user-supplied files complete; owned temp files
        # are about to be unlinked, so their buffer can just drop.
        if not self._owns_file:
            self.flush()
        self._connection.close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def __enter__(self) -> "PagedSubAggregateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
