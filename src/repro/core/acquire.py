"""The ACQUIRE driver (paper section 6, Algorithm 4).

Putting it all together: iterate Expand and Explore, starting at the
origin of the refined space, layer by layer in order of increasing
QScore. For each grid query, compute the aggregate incrementally
(Algorithm 3), compare against ``Aexp``:

* within the error threshold ``delta`` — record the query and finish
  the current layer, collecting every alternative with the same
  refinement score, then stop;
* overshooting by more than ``delta`` (equality constraints only) —
  *repartition* the cell: probe ``b`` refined queries between the
  cell's inner corner and the grid query by bisection, keeping the
  best (Algorithm 4 lines 13-14; note the paper's pseudo-code prints
  the overshoot test with a flipped inequality — the prose in
  sections 3 and 6 makes clear repartitioning applies to overshoot,
  which is what we implement);
* otherwise — continue expanding.

If no query ever satisfies the constraint, the query attaining the
closest aggregate value is returned, as in the paper.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.error import AggregateErrorFunction, default_error_for
from repro.core.expand import LAYER_DECIMALS, make_traversal
from repro.core.explore import Explorer
from repro.core.grid_cache import GridTensorCache, PersistentGridCache
from repro.core.grid_explore import GridExplorer, TiledGridExplorer
from repro.core.plan import PlanCalibration, choose_explore_mode
from repro.core.query import ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.core.result import AcquireResult, RefinedQuery, SearchStats
from repro.core.scoring import (
    ConstraintDistance,
    LpNorm,
    MaxConstraintDistance,
    Norm,
)
from repro.engine.backends import EvaluationLayer, ExecutionStats
from repro.exceptions import QueryModelError

#: Tolerance when comparing QScores for layer membership.
_LAYER_EPS = 1e-9

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class AcquireConfig:
    """Tunable parameters of the search (paper's gamma, delta, b, norm).

    Attributes:
        gamma: refinement threshold — grid step is ``gamma / d`` and the
            returned answers are within ``gamma`` of the optimum
            (Theorem 1).
        delta: aggregate error threshold ``Err_A <= delta``.
        norm: QScore norm; defaults to the paper's L1.
        step: explicit grid step override.
        repartition_iterations: the paper's tunable ``b``.
        traversal: ``auto`` / ``lp`` / ``linf`` (see
            :func:`repro.core.expand.make_traversal`).
        dim_cap_default: maximum PScore a dimension may receive when the
            predicate carries no explicit limit; also bounds band-join
            materialization in the memory backend.
        max_grid_queries: safety valve on examined grid queries.
        error_fn: custom aggregate error function; defaults to the
            constraint-appropriate function from
            :func:`repro.core.error.default_error_for`.
        use_bitmap_index: consult the section 7.4 bitmap index (only
            effective on backends that can build one).
        batched: execute each Expand layer's cell queries through the
            evaluation layer's batched path (one round trip per layer
            on backends with a native bulk implementation) instead of
            one query per cell. Answer sets are identical either way;
            see ``docs/PARALLELISM.md``.
        parallelism: worker threads for the batched path on backends
            without a native bulk implementation. ``> 1`` implies
            ``batched``.
        explore_mode: Explore engine selection — ``incremental`` (the
            default: one cell round trip per visited grid query),
            ``materialized`` (compute the whole cell grid in one
            backend pass, then answer every grid query from the
            tensor), ``tiled`` (materialize rectangular sub-grids on
            demand as the traversal reaches them, stitched with seam
            carries), or ``auto`` (pick by the catalog-statistics cost
            model in :mod:`repro.core.plan`). All modes produce
            identical answer sets; see ``docs/EXPLORE_MODES.md``.
        materialize_cell_cap: largest grid (in cells) the materialized
            engine may allocate — and the per-tile cell bound for the
            tiled engine. ``auto`` falls back to tiled above the cap;
            forcing ``materialized`` above it raises.
        grid_cache: optional
            :class:`~repro.core.grid_cache.GridTensorCache` shared
            across runs; the materialized and tiled engines consult it
            before issuing the backend grid pass, so constraint sweeps
            over the same data pay for each tensor once.
        calibration: optional
            :class:`~repro.core.plan.PlanCalibration`; the driver
            reports (estimated, actual) visited counts into it after
            each search, and ``auto`` planning corrects later
            estimates by the measured factor.
        tile_workers: worker threads for the sharded tile pipeline —
            the tiled engine fetches independent tiles concurrently
            and stitches them serially, so answers stay bit-identical
            to serial at any worker count. 1 (default) is fully
            serial.
        tile_executor: which worker tier the tiled engine fetches on.
            ``thread`` (default) shares the interpreter — it overlaps
            only backends that release the GIL. ``process`` dispatches
            fetches to a persistent worker-process pool over shared
            memory, escaping the GIL for every backend that can ship a
            picklable recipe (falls back to threads otherwise).
            ``auto`` lets the planner pick per query from the
            calibrated cost model. Ignored when ``tile_workers`` is 1.
        top_k: how many distinct answer layers to complete before the
            traversal stops. 1 (default) reproduces the paper's
            stopping rule — finish the first layer that produced an
            answer; ``k > 1`` keeps exploring until the k best-ranked
            answers' layers are complete, so ``result.top(k)`` is a
            certified ranking of alternative refinements (the first
            element is always identical to the ``top_k=1`` answer).
        constraint_distance: combiner for per-constraint errors of a
            multi-constraint ACQ (``CONSTRAINT c1 AND c2``); defaults
            to :class:`~repro.core.scoring.MaxConstraintDistance`,
            whose conjunction semantics make ``error <= delta`` mean
            "every constraint within delta". Identity for
            single-constraint queries either way.
        cache_path: directory for a cross-process
            :class:`~repro.core.grid_cache.PersistentGridCache` tier.
            Only consulted when ``grid_cache`` is None: the driver
            then builds a default-budget memory cache backed by this
            path, so repeated CLI invocations and harness subprocesses
            hit warm tensors. To combine a custom memory budget with
            persistence, pass ``grid_cache=GridTensorCache(bytes,
            persistent=PersistentGridCache(path))`` directly.
    """

    gamma: float = 10.0
    delta: float = 0.05
    norm: Norm = field(default_factory=lambda: LpNorm(1))
    step: Optional[float] = None
    repartition_iterations: int = 8
    traversal: str = "auto"
    dim_cap_default: float = 400.0
    max_grid_queries: int = 500_000
    error_fn: Optional[AggregateErrorFunction] = None
    use_bitmap_index: bool = False
    batched: bool = False
    parallelism: int = 1
    explore_mode: str = "incremental"
    materialize_cell_cap: int = 2_000_000
    grid_cache: Optional[GridTensorCache] = None
    calibration: Optional[PlanCalibration] = None
    tile_workers: int = 1
    tile_executor: str = "thread"
    cache_path: Optional[str] = None
    top_k: int = 1
    constraint_distance: Optional[ConstraintDistance] = None

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise QueryModelError("top_k must be >= 1")
        if self.gamma <= 0:
            raise QueryModelError("gamma must be > 0")
        if self.delta < 0:
            raise QueryModelError("delta must be >= 0")
        if self.repartition_iterations < 0:
            raise QueryModelError("repartition_iterations must be >= 0")
        if self.parallelism < 1:
            raise QueryModelError("parallelism must be >= 1")
        if self.explore_mode not in (
            "auto", "incremental", "materialized", "tiled"
        ):
            raise QueryModelError(
                "explore_mode must be 'auto', 'incremental', "
                f"'materialized' or 'tiled', got {self.explore_mode!r}"
            )
        if self.materialize_cell_cap < 1:
            raise QueryModelError("materialize_cell_cap must be >= 1")
        if self.tile_workers < 1:
            raise QueryModelError("tile_workers must be >= 1")
        if self.tile_executor not in ("thread", "process", "auto"):
            raise QueryModelError(
                "tile_executor must be 'thread', 'process' or 'auto', "
                f"got {self.tile_executor!r}"
            )

    @property
    def use_batch(self) -> bool:
        """Whether the driver should batch layers of cell queries.

        ``tile_workers > 1`` implies batching: the sharded tile
        pipeline only overlaps fetches when a whole layer's tiles are
        primed together, so asking for workers without priming would
        silently serialize.
        """
        return self.batched or self.parallelism > 1 or self.tile_workers > 1

    def resolve_grid_cache(self) -> Optional[GridTensorCache]:
        """The tensor cache the Explore engines should consult.

        ``grid_cache`` wins when set; otherwise ``cache_path`` lazily
        builds (and memoizes, so one config keeps one cache) a
        default-budget memory tier backed by the persistent file store
        at that path.
        """
        if self.grid_cache is not None:
            return self.grid_cache
        if self.cache_path is None:
            return None
        cache = getattr(self, "_resolved_cache", None)
        if cache is None:
            cache = GridTensorCache(
                persistent=PersistentGridCache(self.cache_path)
            )
            object.__setattr__(self, "_resolved_cache", cache)
        return cache


class Acquire:
    """Refinement-driven ACQ processor bound to an evaluation layer."""

    def __init__(self, layer: EvaluationLayer) -> None:
        self.layer = layer

    # ------------------------------------------------------------------
    def run(
        self,
        query: Query,
        config: Optional[AcquireConfig] = None,
        *,
        strict: bool = False,
    ) -> AcquireResult:
        """Process an ACQ, producing the refined answer set.

        Expansion constraints (``=``, ``>=``, ``>``) run the main
        Expand/Explore loop. Contraction constraints (``<=``, ``<``) —
        and equality constraints whose original query already
        overshoots — are delegated to the section 7.2 contraction
        extension.

        With ``strict=True`` the query is statically analyzed first
        (:mod:`repro.analysis`) and ERROR-level diagnostics — provably
        unsatisfiable constraints, zero-dimensional refined spaces —
        raise :class:`~repro.exceptions.AnalysisError` before any
        sub-query executes.
        """
        config = config or AcquireConfig()
        if strict:
            self._preflight(query, config)
        if not query.constraint.op.is_expansion:
            from repro.core.contraction import contract_query

            return contract_query(self.layer, query, config)
        return self._expand(query, config)

    # ------------------------------------------------------------------
    def _preflight(self, query: Query, config: AcquireConfig) -> None:
        """Static pre-flight: raise on ERROR-level diagnostics.

        Needs the backend's catalog; backends without a ``database``
        attribute skip the analysis (there is nothing to check against).
        """
        database = getattr(self.layer, "database", None)
        if database is None:
            return
        # Imported here: repro.analysis depends on this module.
        from repro.analysis import analyze

        report = analyze(query, database, config)
        for diagnostic in report.warnings:
            logger.warning(
                "pre-flight %s: %s", diagnostic.code, diagnostic.message
            )
        report.raise_if_errors()

    # ------------------------------------------------------------------
    def _expand(self, query: Query, config: AcquireConfig) -> AcquireResult:
        # One stat scope per search: the layer may be shared by
        # concurrent drivers (``repro.service``), where snapshot/delta
        # windows would attribute other requests' work to this one.
        with self.layer.request_scope() as layer_scope:
            return self._expand_scoped(query, config, layer_scope)

    def _expand_scoped(
        self,
        query: Query,
        config: AcquireConfig,
        layer_scope: "ExecutionStats",
    ) -> AcquireResult:
        started = time.perf_counter()
        constraint = query.constraint
        aggregate = constraint.spec.aggregate
        target = constraint.target
        error_fn = config.error_fn or default_error_for(constraint.op)
        distance = config.constraint_distance or MaxConstraintDistance()

        dim_caps = [
            predicate.limit if predicate.limit is not None
            else config.dim_cap_default
            for predicate in query.refinable_predicates
        ]
        prepared = self.layer.prepare(query, dim_caps)
        # Each extra constraint of a multi-constraint ACQ evaluates
        # through its own prepared handle: the Explore recurrence only
        # carries the primary aggregate's cell states, so the extras are
        # measured with direct box queries at each examined grid point.
        extra_ctx = [
            (
                extra,
                self.layer.prepare(query.with_only_constraint(extra), dim_caps),
                default_error_for(extra.op),
            )
            for extra in query.extra_constraints
        ]
        useful = self.layer.useful_max_scores(prepared)
        max_scores = [
            min(cap, score) for cap, score in zip(dim_caps, useful)
        ]
        space = RefinedSpace(
            query, config.gamma, max_scores, config.norm, config.step
        )
        plan = choose_explore_mode(self.layer, query, space, config)
        logger.debug(
            "explore plan: %s (%s; grid=%d cells, est. visited=%d)",
            plan.mode, plan.reason, plan.grid_cells, plan.estimated_visited,
        )
        grid_cache = config.resolve_grid_cache()
        if plan.mode == "materialized":
            # The bitmap index only saves per-cell round trips, which
            # the materializing engines do not issue.
            explorer: Explorer | GridExplorer | TiledGridExplorer = (
                GridExplorer(
                    self.layer, prepared, space, aggregate,
                    cache=grid_cache,
                )
            )
        elif plan.mode == "tiled":
            # The plan picked executor, worker count and tile size from
            # the calibrated cost model; fall back to the raw config for
            # plans minted before those fields existed.
            executor = plan.tile_executor or (
                "thread" if config.tile_executor == "auto"
                else config.tile_executor
            )
            explorer = TiledGridExplorer(
                self.layer,
                prepared,
                space,
                aggregate,
                max_tile_cells=plan.tile_cells or min(
                    config.max_grid_queries, config.materialize_cell_cap
                ),
                cache=grid_cache,
                tile_workers=plan.tile_workers or config.tile_workers,
                tile_executor=executor,
            )
        else:
            bitmap = None
            if config.use_bitmap_index:
                bitmap = _maybe_bitmap_index(self.layer, prepared, space)
            explorer = Explorer(
                self.layer,
                prepared,
                space,
                aggregate,
                bitmap_index=bitmap,
                parallelism=config.parallelism,
            )
        try:
            stats = SearchStats(
                top_k=config.top_k,
                explore_mode=plan.mode,
                plan_reason=plan.reason,
                estimated_visited=plan.estimated_visited,
                tile_workers=(
                    explorer.tile_workers if plan.mode == "tiled" else 0
                ),
                tile_executor=(
                    # The explorer records the *effective* tier after
                    # any runtime fallback (no spec, generic aggregate).
                    explorer.tile_executor
                    if plan.mode == "tiled" and explorer.tile_workers > 1
                    else ""
                ),
            )

            # Figure 2, step 1: estimate the original aggregate first; an
            # equality query that already overshoots cannot be fixed by
            # expansion — hand it to the contraction extension.
            original_value = explorer.compute_aggregate(space.origin)
            if (
                constraint.op is ConstraintOp.EQ
                and aggregate.monotone_expanding
                and original_value > target
                and error_fn(target, original_value) > config.delta
            ):
                from repro.core.contraction import contract_query

                result = contract_query(self.layer, query, config)
                # Report the outer scope: it credited the overshoot
                # probe above *and* (scopes nest) every backend event
                # of the contraction search, so per-request stats stay
                # an exact partition of the layer's work.
                result.stats.execution = layer_scope.snapshot()
                return result

            answers: list[RefinedQuery] = []
            closest: Optional[RefinedQuery] = None
            # Grid-layer QScores at which answers were recorded, in
            # traversal (hence non-decreasing) order. The stop threshold
            # is the k-th smallest: with top_k=1 this is exactly the
            # paper's answer_layer rule, with k > 1 the traversal keeps
            # going until the k best answer layers are complete.
            answer_layers: list[float] = []

            def answer_threshold() -> float:
                if len(answer_layers) < config.top_k:
                    return math.inf
                return answer_layers[config.top_k - 1]

            # Early-stop bookkeeping for monotone aggregates with equality
            # constraints: every query in layer k+1 contains some query in
            # layer k, so once an entire layer overshoots target*(1+delta)
            # no later layer can come back within the threshold. A
            # multi-constraint conjunction breaks the monotone argument
            # for the combined error, so extras disable the shortcut.
            check_overshoot = (
                constraint.op is ConstraintOp.EQ
                and aggregate.monotone_expanding
                and not extra_ctx
            )
            layer_key: Optional[float] = None
            layer_min_actual = math.inf

            # The traversal is consumed layer by layer (maximal runs of
            # equal rounded QScore). Concatenated, the layers reproduce the
            # per-coordinate stream exactly, so serial behaviour and stats
            # are unchanged; with ``config.use_batch`` each layer's cell
            # queries are primed through the backend's batched path first.
            # ``layers_scored`` carries each point's QScore along, so no
            # grid point is ever scored twice.
            stop = False
            traversal = make_traversal(space, config.traversal)
            for layer_scored in traversal.layers_scored():
                first_qscore = layer_scored[0][1]
                if first_qscore > answer_threshold() + _LAYER_EPS:
                    break  # the k-th answer layer is fully explored
                if check_overshoot:
                    key = round(first_qscore, LAYER_DECIMALS)
                    if layer_key is None:
                        layer_key = key
                    elif key != layer_key:
                        if layer_min_actual > target * (1 + config.delta):
                            break  # the whole previous layer overshot
                        layer_key = key
                        layer_min_actual = math.inf
                if stats.grid_queries_examined >= config.max_grid_queries:
                    break
                if config.use_batch:
                    # Prime only what the examination loop will actually
                    # reach under the query budget, so cells_executed is
                    # identical to serial even when the budget truncates a
                    # layer.
                    remaining = (
                        config.max_grid_queries - stats.grid_queries_examined
                    )
                    explorer.prime_cells(
                        [coords for coords, _ in layer_scored[:remaining]]
                    )
                for coords, qscore in layer_scored:
                    if qscore > answer_threshold() + _LAYER_EPS:
                        stop = True
                        break
                    if stats.grid_queries_examined >= config.max_grid_queries:
                        stop = True
                        break
                    stats.grid_queries_examined += 1

                    actual = explorer.compute_aggregate(coords)
                    primary_error = error_fn(target, actual)
                    if extra_ctx:
                        extra_values, extra_errors = self._extra_aggregates(
                            extra_ctx, space.scores(coords)
                        )
                        error = distance.combine(
                            (primary_error,) + extra_errors
                        )
                    else:
                        extra_values = ()
                        error = primary_error
                    if check_overshoot and not math.isnan(actual):
                        layer_min_actual = min(layer_min_actual, actual)
                    refined = self._refined_query(
                        query, space, coords, actual, error,
                        extra_values=extra_values,
                    )
                    closest = _closer(closest, refined)

                    if error <= config.delta:
                        logger.debug(
                            "answer at %s: A=%g err=%.4f QScore=%.3f",
                            coords, actual, error, qscore,
                        )
                        answers.append(refined)
                        answer_layers.append(qscore)
                    elif (
                        constraint.op is ConstraintOp.EQ
                        and not extra_ctx
                        and not math.isnan(actual)
                        and actual > target
                    ):
                        # Off-grid bisection probes only measure the
                        # primary aggregate, so repartitioning is
                        # restricted to single-constraint queries.
                        candidate = self._repartition(
                            prepared, space, coords, target, error_fn, config,
                            stats,
                        )
                        if candidate is not None:
                            closest = _closer(closest, candidate)
                            if candidate.error <= config.delta:
                                answers.append(candidate)
                                answer_layers.append(qscore)
                if stop:
                    break

            stats.cells_executed = explorer.cells_executed
            stats.cells_skipped = explorer.cells_skipped
            # Every answer carries its QScore — including repartitioned
            # ones, whose grid ``coords`` are None — so count answer layers
            # from the QScores directly.
            stats.layers_explored = len(
                {round(a.qscore, LAYER_DECIMALS) for a in answers}
            )
            stats.elapsed_s = time.perf_counter() - started
            stats.execution = layer_scope.snapshot()
            if config.calibration is not None:
                if plan.estimated_visited > 0:
                    config.calibration.observe(
                        plan.estimated_visited, stats.grid_queries_examined
                    )
                # Feed the executor cost model: observed pass rate plus
                # the process tier's spawn/IPC overheads (no-ops when
                # the respective counters are zero).
                execution = stats.execution
                config.calibration.observe_pass(
                    execution.rows_scanned, execution.execution_time_s
                )
                config.calibration.observe_spawn(
                    execution.process_pools, execution.process_spawn_s
                )
                config.calibration.observe_ipc(
                    execution.process_tiles, execution.process_ipc_s
                )
            logger.info(
                "ACQUIRE %s: %d answers, %d grid queries, %d cells, %.1f ms",
                query.name,
                len(answers),
                stats.grid_queries_examined,
                stats.cells_executed,
                stats.elapsed_s * 1000,
            )

            answers.sort(key=lambda a: (a.qscore, a.error))
            return AcquireResult(
                query=query,
                answers=answers,
                closest=closest,
                original_value=original_value,
                stats=stats,
            )
        finally:
            # The tiled engine may own a worker pool; release it
            # even when the search aborts.
            closer = getattr(explorer, "close", None)
            if closer is not None:
                closer()

    # ------------------------------------------------------------------
    def _extra_aggregates(
        self,
        extra_ctx: Sequence[tuple],
        scores: Sequence[float],
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Evaluate every extra constraint at one refinement vector."""
        values: list[float] = []
        errors: list[float] = []
        for extra, prepared_extra, extra_error_fn in extra_ctx:
            state = self.layer.execute_box(prepared_extra, tuple(scores))
            value = extra.spec.aggregate.finalize(state)
            values.append(value)
            errors.append(extra_error_fn(extra.target, value))
        return tuple(values), tuple(errors)

    def _refined_query(
        self,
        query: Query,
        space: RefinedSpace,
        coords: Sequence[int],
        actual: float,
        error: float,
        scores: Optional[Sequence[float]] = None,
        extra_values: tuple[float, ...] = (),
    ) -> RefinedQuery:
        if scores is None:
            scores = space.scores(coords)
            grid_coords: Optional[tuple[int, ...]] = tuple(coords)
        else:
            grid_coords = None
        intervals = tuple(
            predicate.interval_at(score)
            for predicate, score in zip(query.refinable_predicates, scores)
        )
        return RefinedQuery(
            query=query,
            pscores=tuple(scores),
            qscore=space.qscore_of_scores(scores),
            aggregate_value=actual,
            error=error,
            intervals=intervals,
            coords=grid_coords,
            extra_values=extra_values,
        )

    def _repartition(
        self,
        prepared: object,
        space: RefinedSpace,
        coords: Sequence[int],
        target: float,
        error_fn: AggregateErrorFunction,
        config: AcquireConfig,
        stats: SearchStats,
    ) -> Optional[RefinedQuery]:
        """Probe refined queries inside the overshooting cell.

        Bisects the segment between the cell's inner corner (the
        contained grid query one step back on every non-zero dimension)
        and the overshooting query itself. For monotone aggregates the
        aggregate is non-decreasing along the segment, so bisection
        converges; for non-monotone aggregates the probes still improve
        the "closest query" answer.
        """
        if config.repartition_iterations == 0:
            return None
        hi_scores = space.scores(coords)
        lo_scores = tuple(
            max(score - space.step, 0.0) for score in hi_scores
        )
        if hi_scores == lo_scores:
            return None
        aggregate = space.query.constraint.spec.aggregate
        best: Optional[RefinedQuery] = None
        low, high = 0.0, 1.0
        for _ in range(config.repartition_iterations):
            midpoint = (low + high) / 2.0
            scores = tuple(
                lo + midpoint * (hi - lo)
                for lo, hi in zip(lo_scores, hi_scores)
            )
            state = self.layer.execute_box(prepared, scores)
            actual = aggregate.finalize(state)
            stats.repartition_probes += 1
            error = error_fn(target, actual)
            candidate = self._refined_query(
                space.query, space, coords, actual, error, scores=scores
            )
            best = _closer(best, candidate)
            if math.isnan(actual) or actual > target:
                high = midpoint
            else:
                low = midpoint
        return best


def _closer(
    current: Optional[RefinedQuery], candidate: RefinedQuery
) -> RefinedQuery:
    """Keep the query with smaller (error, qscore)."""
    if current is None:
        return candidate
    if (candidate.error, candidate.qscore) < (current.error, current.qscore):
        return candidate
    return current


def _maybe_bitmap_index(
    layer: EvaluationLayer, prepared: object, space: RefinedSpace
) -> Optional[object]:
    """Build a section 7.4 bitmap index when the backend supports it."""
    builder = getattr(layer, "build_bitmap_index", None)
    if builder is None:
        return None
    return builder(prepared, space)
