"""ACQUIRE core: the paper's primary contribution.

The central entry point is :class:`~repro.core.acquire.Acquire`
(paper Algorithm 4), which combines the Expand phase
(:mod:`repro.core.expand`, Algorithms 1-2) and the Explore phase with
incremental aggregate computation (:mod:`repro.core.explore`,
Algorithm 3 and Equations 5-17).
"""

from repro.core.interval import Interval
from repro.core.aggregates import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    AggregateSpec,
    OSPAggregate,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.core.error import (
    AggregateErrorFunction,
    HingeError,
    RelativeError,
    default_error_for,
)
from repro.core.scoring import LInfNorm, LpNorm, Norm, pscore_interval
from repro.core.predicate import (
    Direction,
    JoinPredicate,
    CategoricalPredicate,
    Predicate,
    SelectPredicate,
)
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.core.expand import LInfLayerTraversal, LpBestFirstTraversal, make_traversal
from repro.core.explore import Explorer, SubAggregateStore
from repro.core.store import PagedSubAggregateStore
from repro.core.acquire import Acquire, AcquireConfig
from repro.core.result import AcquireResult, RefinedQuery
from repro.core.ontology import OntologyTree
from repro.core.contraction import contract_query

__all__ = [
    "Interval",
    "AggregateSpec",
    "OSPAggregate",
    "UserDefinedAggregate",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "get_aggregate",
    "AggregateErrorFunction",
    "RelativeError",
    "HingeError",
    "default_error_for",
    "Norm",
    "LpNorm",
    "LInfNorm",
    "pscore_interval",
    "Direction",
    "Predicate",
    "SelectPredicate",
    "JoinPredicate",
    "CategoricalPredicate",
    "Query",
    "AggregateConstraint",
    "ConstraintOp",
    "RefinedSpace",
    "LpBestFirstTraversal",
    "LInfLayerTraversal",
    "make_traversal",
    "Explorer",
    "SubAggregateStore",
    "PagedSubAggregateStore",
    "Acquire",
    "AcquireConfig",
    "AcquireResult",
    "RefinedQuery",
    "OntologyTree",
    "contract_query",
]
