"""Aggregate error functions (paper section 2.5, Equation 4).

The default error is the relative error
``Err_A = |Aexp - Aactual| / Aexp`` — appropriate for COUNT and AVG.
For SUM/MIN/MAX with one-sided constraints the paper recommends a hinge
function that only penalizes undershoot. Both are provided, and any
user-supplied callable with the same signature may replace them
(the paper's "sensible defaults" design principle).
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.core.query import ConstraintOp


class AggregateErrorFunction(Protocol):
    """Signature of an aggregate error function."""

    def __call__(self, expected: float, actual: float) -> float:
        """Return a non-negative error; 0 means the constraint is met."""
        ...


class RelativeError:
    """``|Aexp - Aactual| / Aexp`` (paper Equation 4)."""

    def __call__(self, expected: float, actual: float) -> float:
        if math.isnan(actual):
            return math.inf
        if expected == 0:
            return 0.0 if actual == 0 else math.inf
        return abs(expected - actual) / abs(expected)

    def __repr__(self) -> str:
        return "RelativeError()"


class HingeError:
    """One-sided relative error: penalize undershoot only.

    The paper's hinge returns the raw gap ``Aexp - Aactual``; we
    normalize by ``Aexp`` so a single threshold ``delta`` is meaningful
    across aggregates of very different magnitudes. Set
    ``normalized=False`` for the paper's literal definition.
    """

    def __init__(self, normalized: bool = True) -> None:
        self.normalized = normalized

    def __call__(self, expected: float, actual: float) -> float:
        if math.isnan(actual):
            return math.inf
        gap = expected - actual
        if gap <= 0:
            return 0.0
        if not self.normalized:
            return gap
        if expected == 0:
            return math.inf
        return gap / abs(expected)

    def __repr__(self) -> str:
        return f"HingeError(normalized={self.normalized})"


def default_error_for(op: ConstraintOp) -> AggregateErrorFunction:
    """Pick the paper's default error function for a constraint operator.

    Equality constraints use the symmetric relative error; the
    one-sided operators (>=, >) use the hinge, which treats any
    overshoot as satisfying the constraint. The contraction-direction
    operators (<=, <) use a mirrored hinge.
    """
    if op is ConstraintOp.EQ:
        return RelativeError()
    if op in (ConstraintOp.GE, ConstraintOp.GT):
        return HingeError()
    return _UpperHingeError()


class _UpperHingeError:
    """Hinge for <=/< constraints: penalize overshoot only."""

    def __call__(self, expected: float, actual: float) -> float:
        if math.isnan(actual):
            return math.inf
        gap = actual - expected
        if gap <= 0:
            return 0.0
        if expected == 0:
            return math.inf
        return gap / abs(expected)

    def __repr__(self) -> str:
        return "UpperHingeError()"
