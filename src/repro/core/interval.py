"""Closed numeric intervals for predicate bounds (paper section 2.2).

A predicate ``P_i`` is decomposed into a function ``P_i^F`` and an
interval ``P_i^I = (min_i, max_i)`` of acceptable function values.
Refinement moves one or both endpoints; this class is the shared
representation for both the original and refined intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import QueryModelError


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; either end may be infinite."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise QueryModelError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise QueryModelError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @classmethod
    def point(cls, value: float) -> Interval:
        return cls(value, value)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def expand_upper(self, amount: float) -> Interval:
        """Grow the upper endpoint by ``amount`` (>= 0)."""
        if amount < 0:
            raise QueryModelError("expansion amount must be non-negative")
        return Interval(self.lo, self.hi + amount)

    def expand_lower(self, amount: float) -> Interval:
        """Lower the lower endpoint by ``amount`` (>= 0)."""
        if amount < 0:
            raise QueryModelError("expansion amount must be non-negative")
        return Interval(self.lo - amount, self.hi)

    def expand_both(self, amount: float) -> Interval:
        if amount < 0:
            raise QueryModelError("expansion amount must be non-negative")
        return Interval(self.lo - amount, self.hi + amount)

    def shrink(self, lower_amount: float, upper_amount: float) -> Interval:
        """Shrink from each end; collapses to a point if over-shrunk."""
        lo = self.lo + lower_amount
        hi = self.hi - upper_amount
        if lo > hi:
            middle = (self.lo + self.hi) / 2.0
            return Interval(middle, middle)
        return Interval(lo, hi)

    def intersects(self, other: Interval) -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"
