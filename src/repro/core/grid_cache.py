"""Cross-query cache of materialized grid-cell tensors.

The Explore phase's materialized and tiled modes both reduce to "build
an immutable tensor of per-cell aggregate states, then run prefix
passes over a private copy". The tensor itself depends only on the
*data-side* identity of the request — which evaluation layer produced
it, which tables/predicates/aggregate define the cells, and the refined
space's geometry — and **not** on the constraint target. A constraint
sweep (the harness's bread and butter) therefore re-materializes the
identical tensor once per sweep point; this module makes every point
after the first a cache hit.

Keying. A cache key is ``(layer token, query fingerprint, space
geometry, tile box)``:

- *layer token*: a process-unique integer minted per
  :class:`~repro.engine.backends.EvaluationLayer` instance (not
  ``id()``, which CPython reuses after garbage collection). Two layers
  never share entries, so a layer over different data can never serve
  another layer's tensors — reconnecting to changed data means a new
  layer and thus a cold cache, which is the invalidation story.
- *query fingerprint*: tables, every predicate rendered at score 0 plus
  its refinement parameters, and the aggregate spec. The constraint
  operator and target are deliberately excluded.
- *space geometry*: step and per-dimension coordinate limits.
- *tile box*: inclusive ``(lo, hi)`` coordinate bounds; the full grid
  is simply the box covering every coordinate.

Tensors are stored with ``writeable=False`` so a hit can be handed out
by reference; consumers that need to mutate (the prefix passes) copy
first, which they must do anyway for correctness (see the
``prefix_combine`` aliasing contract in ``grid_explore``).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.exceptions import QueryModelError

DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

_layer_tokens = itertools.count(1)
_token_lock = threading.Lock()


def layer_cache_token(layer: object) -> int:
    """Process-unique token identifying an evaluation layer instance.

    Lazily stamped onto the layer the first time it is asked for, so
    tokens are stable for a layer's lifetime but never reused across
    instances the way ``id()`` can be.
    """
    token = getattr(layer, "_grid_cache_token", None)
    if token is None:
        with _token_lock:
            token = getattr(layer, "_grid_cache_token", None)
            if token is None:
                token = next(_layer_tokens)
                layer._grid_cache_token = token  # type: ignore[attr-defined]
    return int(token)


def query_fingerprint(query: Query) -> Tuple[Hashable, ...]:
    """Target-independent identity of the cells a query induces.

    Everything that shapes a cell's aggregate state is included —
    tables, each predicate's rendering at score 0 together with the
    parameters that govern how it refines, and the aggregate spec.
    The constraint operator/target only decide which cells *satisfy*,
    never their states, so sweep points over targets share entries.
    """
    predicates = tuple(
        (
            type(predicate).__name__,
            predicate.name,
            predicate.refinable,
            predicate.describe(0.0),
            float(predicate.weight),
            None if predicate.limit is None else float(predicate.limit),
            float(getattr(predicate, "effective_denominator", 0.0))
            if hasattr(predicate, "effective_denominator")
            else float(getattr(predicate, "denominator", 0.0)),
        )
        for predicate in query.predicates
    )
    return (query.tables, predicates, query.constraint.spec.describe())


def space_fingerprint(space: RefinedSpace) -> Tuple[Hashable, ...]:
    """Geometry of the refined grid: step plus coordinate extents."""
    return (float(space.step), tuple(int(c) for c in space.max_coords))


class GridTensorCache:
    """Byte-budgeted LRU cache of immutable grid/tile cell tensors.

    Thread-safe; shared freely across queries, sweep points, and
    explore modes. Entries whose tensor alone exceeds the budget are
    simply not admitted (they would evict everything for one use).
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise QueryModelError(
                f"cache budget must be positive, got {max_bytes}"
            )
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_for(
        layer: object,
        query: Query,
        space: RefinedSpace,
        lo: Optional[Sequence[int]] = None,
        hi: Optional[Sequence[int]] = None,
    ) -> Tuple[Hashable, ...]:
        """Build the canonical cache key for a grid or tile request."""
        if lo is None:
            lo = (0,) * space.d
        if hi is None:
            hi = space.max_coords
        return (
            layer_cache_token(layer),
            query_fingerprint(query),
            space_fingerprint(space),
            tuple(int(c) for c in lo),
            tuple(int(c) for c in hi),
        )

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached tensor (read-only) or None; touches LRU."""
        with self._lock:
            tensor = self._entries.get(key)
            if tensor is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return tensor

    def put(self, key: Hashable, tensor: np.ndarray) -> np.ndarray:
        """Insert a tensor, evicting LRU entries past the byte budget.

        The stored array is marked read-only; the returned array is the
        stored one, so callers should treat it as immutable too.
        """
        stored = np.ascontiguousarray(tensor)
        if stored is tensor and tensor.flags.writeable:
            stored = tensor.copy()
        stored.flags.writeable = False
        nbytes = int(stored.nbytes)
        with self._lock:
            if nbytes > self.max_bytes:
                return stored
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.current_bytes -= int(previous.nbytes)
            self._entries[key] = stored
            self.current_bytes += nbytes
            while self.current_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= int(evicted.nbytes)
                self.evictions += 1
        return stored

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def summary(self) -> str:
        with self._lock:
            return (
                f"GridTensorCache(entries={len(self._entries)}, "
                f"bytes={self.current_bytes}/{self.max_bytes}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})"
            )
