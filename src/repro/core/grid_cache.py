"""Cross-query cache of materialized grid-cell tensors.

The Explore phase's materialized and tiled modes both reduce to "build
an immutable tensor of per-cell aggregate states, then run prefix
passes over a private copy". The tensor itself depends only on the
*data-side* identity of the request — which evaluation layer produced
it, which tables/predicates/aggregate define the cells, and the refined
space's geometry — and **not** on the constraint target. A constraint
sweep (the harness's bread and butter) therefore re-materializes the
identical tensor once per sweep point; this module makes every point
after the first a cache hit.

Keying. A cache key is ``(layer token, query fingerprint, space
geometry, tile box)``:

- *layer token*: a process-unique integer minted per
  :class:`~repro.engine.backends.EvaluationLayer` instance (not
  ``id()``, which CPython reuses after garbage collection). Two layers
  never share entries, so a layer over different data can never serve
  another layer's tensors — reconnecting to changed data means a new
  layer and thus a cold cache, which is the invalidation story.
- *query fingerprint*: tables, every predicate rendered at score 0 plus
  its refinement parameters, and the aggregate spec. The constraint
  operator and target are deliberately excluded.
- *space geometry*: step and per-dimension coordinate limits.
- *tile box*: inclusive ``(lo, hi)`` coordinate bounds; the full grid
  is simply the box covering every coordinate.

Tensors are stored with ``writeable=False`` so a hit can be handed out
by reference; consumers that need to mutate (the prefix passes) copy
first, which they must do anyway for correctness (see the
``prefix_combine`` aliasing contract in ``grid_explore``).

Tiers. :class:`GridTensorCache` is the in-process memory tier; it can
be backed by a :class:`PersistentGridCache` — a directory of
atomically-published tensor files — so warm tensors survive process
exit and are shared between concurrent processes. The persistent tier
cannot use the process-unique layer token, so keys there swap it for a
*data fingerprint* (:func:`database_digest`): backend class + dataset
content digest. A layer that cannot produce one (e.g. a third-party
wrapper without a ``database``) simply never touches the persistent
tier. Entries also carry a ``kind`` component: ``"cells"`` for raw
cell tensors, ``"blocks"`` for finished post-prefix-pass block
tensors, ``"seam<axis>"`` for tile seam slabs — a block hit skips
Explore entirely instead of replaying the d prefix passes.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import struct
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import Query
from repro.core.refined_space import RefinedSpace
from repro.exceptions import QueryModelError

DEFAULT_CACHE_BYTES = 64 * 1024 * 1024
DEFAULT_PERSISTENT_BYTES = 256 * 1024 * 1024

_layer_tokens = itertools.count(1)
_token_lock = threading.Lock()


def layer_cache_token(layer: object) -> int:
    """Process-unique token identifying an evaluation layer instance.

    Lazily stamped onto the layer the first time it is asked for, so
    tokens are stable for a layer's lifetime but never reused across
    instances the way ``id()`` can be.
    """
    token = getattr(layer, "_grid_cache_token", None)
    if token is None:
        with _token_lock:
            token = getattr(layer, "_grid_cache_token", None)
            if token is None:
                token = next(_layer_tokens)
                layer._grid_cache_token = token  # type: ignore[attr-defined]
    return int(token)


def query_fingerprint(query: Query) -> Tuple[Hashable, ...]:
    """Target-independent identity of the cells a query induces.

    Everything that shapes a cell's aggregate state is included —
    tables, each predicate's rendering at score 0 together with the
    parameters that govern how it refines, and the aggregate spec.
    The constraint operator/target only decide which cells *satisfy*,
    never their states, so sweep points over targets share entries.
    """
    predicates = tuple(
        (
            type(predicate).__name__,
            predicate.name,
            predicate.refinable,
            predicate.describe(0.0),
            float(predicate.weight),
            None if predicate.limit is None else float(predicate.limit),
            float(getattr(predicate, "effective_denominator", 0.0))
            if hasattr(predicate, "effective_denominator")
            else float(getattr(predicate, "denominator", 0.0)),
        )
        for predicate in query.predicates
    )
    return (query.tables, predicates, query.constraint.spec.describe())


def space_fingerprint(space: RefinedSpace) -> Tuple[Hashable, ...]:
    """Geometry of the refined grid: step plus coordinate extents."""
    return (float(space.step), tuple(int(c) for c in space.max_coords))


def database_digest(database: object) -> Tuple[Hashable, ...]:
    """Content digest of a catalog database, stable across processes.

    Hashes every column of every table (crc32 of the raw values), so
    two processes loading the same dataset agree on the digest while
    any data change — a row more, a value off — yields a different
    one. That makes it safe as the persistent-tier replacement for the
    process-unique layer token: stale files can never be served for
    changed data. Memoized on the database object (datasets here are
    immutable once built).
    """
    digest = getattr(database, "_grid_cache_digest", None)
    if digest is not None:
        return digest
    tables = []
    for table in sorted(database, key=lambda t: t.name):
        columns = []
        for name in table.schema.column_names:
            values = np.asarray(table.column(name))
            if values.dtype.kind in "OUS":
                raw = "\x00".join(str(v) for v in values.tolist()).encode()
            else:
                raw = np.ascontiguousarray(values).tobytes()
            columns.append((name, zlib.crc32(raw) & 0xFFFFFFFF))
        tables.append((table.name, len(table), tuple(columns)))
    digest = (database.name, tuple(tables))
    database._grid_cache_digest = digest  # type: ignore[attr-defined]
    return digest


@dataclass(frozen=True)
class TensorKey:
    """A cache key addressing both tiers at once.

    ``memory`` embeds the process-unique layer token; ``persistent``
    (when not None) swaps it for the layer's stable data fingerprint
    so the entry can be found by other processes. ``get``/``put``
    also accept arbitrary plain hashables, which address the memory
    tier only.
    """

    memory: Tuple[Hashable, ...]
    persistent: Optional[Tuple[Hashable, ...]] = None


class PersistentGridCache:
    """Cross-process tensor cache: one checksummed file per tensor.

    The file layout mirrors the ``PagedSubAggregateStore`` page idiom
    (little-endian ``struct``-packed header + raw ``float64`` payload):

    ``magic "RGT1" | crc32(payload) | ndim | shape[0..ndim) | payload``

    Publication is atomic — the file is written under a temp name in
    the cache directory and ``os.replace``d into place, so a reader
    can never observe a half-written (torn) tensor: either the final
    name does not exist yet, or it holds a complete file. Corruption
    of a *published* file (truncation, bit flips) is caught by the
    per-tensor crc32 on read; a corrupt file counts as a miss and is
    deleted. The byte budget is enforced as LRU *across processes*:
    every hit bumps the file's mtime, and inserts evict the
    oldest-mtime files past the budget. Only ``float64`` tensors are
    persisted (object-dtype state arrays stay memory-tier only).
    """

    MAGIC = b"RGT1"
    _HEADER = struct.Struct("<4sIi")
    SUFFIX = ".tensor"
    TEMP_PREFIX = ".tmp-"

    #: Grace period before a stray temp file — a writer that died
    #: between ``open`` and ``os.replace`` — is reaped by another
    #: process's budget sweep. Younger temp files may belong to a
    #: *live* writer mid-publish and are never touched.
    TEMP_REAP_AGE_S = 300.0

    def __init__(
        self, path: str, max_bytes: int = DEFAULT_PERSISTENT_BYTES
    ) -> None:
        if max_bytes <= 0:
            raise QueryModelError(
                f"persistent cache budget must be positive, got {max_bytes}"
            )
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        os.makedirs(self.path, exist_ok=True)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.rejected = 0
        self.evictions = 0
        self.hit_bytes = 0

    # -- keys -> files --------------------------------------------------
    def file_for(self, key: Hashable) -> str:
        name = hashlib.sha256(repr(key).encode()).hexdigest()
        return os.path.join(self.path, name + self.SUFFIX)

    # -- encoding -------------------------------------------------------
    def _encode(self, tensor: np.ndarray) -> bytes:
        payload = np.ascontiguousarray(tensor, dtype=np.float64).tobytes()
        header = self._HEADER.pack(
            self.MAGIC, zlib.crc32(payload) & 0xFFFFFFFF, tensor.ndim
        )
        shape = struct.pack(f"<{tensor.ndim}q", *tensor.shape)
        return header + shape + payload

    def _decode(self, data: bytes) -> Optional[np.ndarray]:
        if len(data) < self._HEADER.size:
            return None
        magic, crc, ndim = self._HEADER.unpack_from(data)
        if magic != self.MAGIC or ndim < 0:
            return None
        offset = self._HEADER.size + 8 * ndim
        if len(data) < offset:
            return None
        shape = struct.unpack_from(f"<{ndim}q", data, self._HEADER.size)
        count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
        payload = data[offset:]
        if len(payload) != 8 * count:
            return None
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None
        tensor = np.frombuffer(payload, dtype=np.float64).reshape(shape)
        tensor.flags.writeable = False
        return tensor

    # -- store ----------------------------------------------------------
    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Read a published tensor; corrupt/torn files are misses."""
        path = self.file_for(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        tensor = self._decode(data)
        if tensor is None:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # LRU touch, visible to other processes
        except OSError:
            pass
        with self._lock:
            self.hits += 1
            self.hit_bytes += int(tensor.nbytes)
        return tensor

    def contains(self, key: Hashable) -> bool:
        """Peek: entry published? No LRU touch, no counters."""
        return os.path.exists(self.file_for(key))

    def put(self, key: Hashable, tensor: np.ndarray) -> bool:
        """Atomically publish a tensor; returns whether it was stored."""
        if tensor.dtype.kind != "f":
            with self._lock:
                self.rejected += 1
            return False
        data = self._encode(tensor)
        if len(data) > self.max_bytes:
            with self._lock:
                self.rejected += 1
            return False
        final = self.file_for(key)
        temp = os.path.join(
            self.path, f"{self.TEMP_PREFIX}{os.getpid()}-{next(self._seq)}"
        )
        try:
            with open(temp, "wb") as handle:
                handle.write(data)
            os.replace(temp, final)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass
            return False
        with self._lock:
            self.stores += 1
        self._enforce_budget()
        return True

    def _published(self) -> list:
        """(mtime, size, path) of every *published* tensor file.

        In-flight temp files (``TEMP_PREFIX``) are explicitly
        excluded: they are not entries — counting them against the
        budget, or evicting one out from under a concurrent writer's
        ``os.replace``, would turn another process's publish into a
        spurious failure.
        """
        entries = []
        try:
            names = os.listdir(self.path)
        except OSError:
            return entries
        for name in names:
            if name.startswith(self.TEMP_PREFIX):
                continue
            if not name.endswith(self.SUFFIX):
                continue
            path = os.path.join(self.path, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
        return entries

    def _reap_orphans(self) -> None:
        """Delete temp files abandoned by a writer that died mid-publish.

        Only files older than ``TEMP_REAP_AGE_S`` are removed — a
        younger temp file may be a live writer in another process that
        has opened but not yet ``os.replace``d.
        """
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        cutoff = time.time() - self.TEMP_REAP_AGE_S
        for name in names:
            if not name.startswith(self.TEMP_PREFIX):
                continue
            path = os.path.join(self.path, name)
            try:
                if os.stat(path).st_mtime < cutoff:
                    os.unlink(path)
            except OSError:
                continue

    def _enforce_budget(self) -> None:
        self._reap_orphans()
        entries = self._published()
        total = sum(size for _, size, _ in entries)
        entries.sort()  # oldest mtime first
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                # Re-stat before deleting: a concurrent process may
                # have *hit* (and mtime-bumped) this entry since the
                # listing — it is no longer the LRU victim, so skip it
                # rather than evict a hot tensor; the budget converges
                # on the next insert.
                if os.stat(path).st_mtime > mtime:
                    continue
                os.unlink(path)
            except OSError:
                continue
            total -= size
            with self._lock:
                self.evictions += 1

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._published())

    def clear(self) -> None:
        for _, _, path in self._published():
            try:
                os.unlink(path)
            except OSError:
                pass

    def summary(self) -> str:
        with self._lock:
            return (
                f"PersistentGridCache(path={self.path!r}, "
                f"bytes={self.total_bytes()}/{self.max_bytes}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, corrupt={self.corrupt}, "
                f"rejected={self.rejected}, evictions={self.evictions})"
            )


class _TensorFlight:
    """One in-flight single-flight computation of a cache key.

    The leader resolves it through
    :meth:`GridTensorCache.complete_flight` /
    :meth:`GridTensorCache.abort_flight`; waiters block on ``event``
    and read ``tensor``/``failed`` afterwards (the Event provides the
    happens-before edge, so no extra lock is needed on the fields).
    """

    __slots__ = ("event", "tensor", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.tensor: Optional[np.ndarray] = None
        self.failed = False


class GridTensorCache:
    """Byte-budgeted LRU cache of immutable grid/tile cell tensors.

    Thread-safe; shared freely across queries, sweep points, and
    explore modes. Entries whose tensor alone exceeds the budget are
    not admitted (they would evict everything for one use) — each such
    insert counts in ``rejected``. With a ``persistent`` tier attached,
    memory misses fall through to the file store and hits there are
    promoted back into memory (``persistent_hits``).

    Misses can additionally be *single-flighted* through
    :meth:`lookup_or_lead`: the first thread to miss a key becomes the
    leader and computes the tensor once; every other thread missing the
    same key before the leader publishes parks on the leader's flight
    instead of paying its own backend pass (``inflight_waits`` counts
    those parked reads). The plain :meth:`lookup`/:meth:`put` pair
    ignores flights entirely, which the cross-query fusion path relies
    on — its coalescer does its own in-flight joining and must see the
    raw miss.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        persistent: Optional[PersistentGridCache] = None,
    ) -> None:
        if max_bytes <= 0:
            raise QueryModelError(
                f"cache budget must be positive, got {max_bytes}"
            )
        self.max_bytes = int(max_bytes)
        self.persistent = persistent
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._flights: dict[Hashable, _TensorFlight] = {}
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self.persistent_hits = 0
        self.inflight_waits = 0

    @staticmethod
    def key_for(
        layer: object,
        query: Query,
        space: RefinedSpace,
        lo: Optional[Sequence[int]] = None,
        hi: Optional[Sequence[int]] = None,
        kind: str = "cells",
    ) -> TensorKey:
        """Build the canonical cache key for a grid or tile request.

        ``kind`` separates entry families sharing the same identity:
        raw ``"cells"`` tensors, finished ``"blocks"`` tensors, and
        per-axis ``"seam<a>"`` slabs. The persistent component is only
        present when the layer exposes a stable data fingerprint
        (``persistent_cache_key``); process-local layers get a
        memory-only key.
        """
        if lo is None:
            lo = (0,) * space.d
        if hi is None:
            hi = space.max_coords
        identity = (
            query_fingerprint(query),
            space_fingerprint(space),
            tuple(int(c) for c in lo),
            tuple(int(c) for c in hi),
            str(kind),
        )
        fingerprint = None
        probe = getattr(layer, "persistent_cache_key", None)
        if callable(probe):
            fingerprint = probe()
        return TensorKey(
            memory=(layer_cache_token(layer),) + identity,
            persistent=None
            if fingerprint is None
            else (fingerprint,) + identity,
        )

    @staticmethod
    def _split(key: Hashable) -> tuple:
        if isinstance(key, TensorKey):
            return key.memory, key.persistent
        return key, None

    def lookup(
        self, key: Hashable
    ) -> tuple[Optional[np.ndarray], Optional[str]]:
        """Two-tier read: ``(tensor, tier)`` with tier in
        ``("memory", "persistent", None)``. A persistent hit is
        promoted into the memory tier; a full miss counts once."""
        mem_key, persistent_key = self._split(key)
        with self._lock:
            tensor = self._entries.get(mem_key)
            if tensor is not None:
                self._entries.move_to_end(mem_key)
                self.hits += 1
                return tensor, "memory"
        if self.persistent is not None and persistent_key is not None:
            tensor = self.persistent.get(persistent_key)
            if tensor is not None:
                stored = self._admit(mem_key, tensor)
                with self._lock:
                    self.persistent_hits += 1
                return stored, "persistent"
        with self._lock:
            self.misses += 1
        return None, None

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached tensor (read-only) or None; touches LRU."""
        tensor, _ = self.lookup(key)
        return tensor

    def lookup_or_lead(
        self, key: Hashable
    ) -> tuple[Optional[np.ndarray], Optional[str], Optional[_TensorFlight]]:
        """Single-flighted two-tier read: ``(tensor, tier, flight)``.

        On a hit ``flight`` is None and ``tier`` names where the tensor
        came from — ``"memory"``, ``"persistent"``, or ``"inflight"``
        when another thread's in-progress computation of the same key
        supplied it (a thundering-herd save, counted in
        ``inflight_waits``). On a miss the caller is the *leader*:
        ``flight`` is a token it **must** resolve, either by computing
        the tensor and calling :meth:`complete_flight` or by calling
        :meth:`abort_flight` on failure (waiters then retry and one of
        them leads). The persistent tier is probed only by the leader,
        so N threads missing one key pay at most one file read.
        """
        mem_key, persistent_key = self._split(key)
        while True:
            wait_for = None
            with self._lock:
                tensor = self._entries.get(mem_key)
                if tensor is not None:
                    self._entries.move_to_end(mem_key)
                    self.hits += 1
                    return tensor, "memory", None
                flight = self._flights.get(mem_key)
                if flight is None:
                    flight = _TensorFlight()
                    self._flights[mem_key] = flight
                else:
                    self.inflight_waits += 1
                    wait_for = flight
            if wait_for is None:
                break
            wait_for.event.wait()
            if not wait_for.failed and wait_for.tensor is not None:
                with self._lock:
                    self.hits += 1
                return wait_for.tensor, "inflight", None
            # The leader aborted; loop and contend to lead ourselves.
        if self.persistent is not None and persistent_key is not None:
            tensor = self.persistent.get(persistent_key)
            if tensor is not None:
                stored = self._admit(mem_key, tensor)
                with self._lock:
                    self.persistent_hits += 1
                    self._flights.pop(mem_key, None)
                flight.tensor = stored
                flight.event.set()
                return stored, "persistent", None
        with self._lock:
            self.misses += 1
        return None, None, flight

    def complete_flight(
        self, key: Hashable, tensor: np.ndarray
    ) -> np.ndarray:
        """Publish a led miss: admit the tensor and wake every waiter.

        Returns the stored (read-only) array. Waiters receive it even
        when the cache itself rejects the entry (over-budget tensors
        are still correct answers).
        """
        stored = self.put(key, tensor)
        mem_key, _ = self._split(key)
        with self._lock:
            flight = self._flights.pop(mem_key, None)
        if flight is not None:
            flight.tensor = stored
            flight.event.set()
        return stored

    def abort_flight(self, key: Hashable) -> None:
        """Resolve a led miss without a tensor (the computation failed);
        waiters wake, re-check the cache, and contend to lead."""
        mem_key, _ = self._split(key)
        with self._lock:
            flight = self._flights.pop(mem_key, None)
        if flight is not None:
            flight.failed = True
            flight.event.set()

    def contains(self, key: Hashable) -> bool:
        """Peek either tier without touching LRU order or counters."""
        mem_key, persistent_key = self._split(key)
        with self._lock:
            if mem_key in self._entries:
                return True
        return (
            self.persistent is not None
            and persistent_key is not None
            and self.persistent.contains(persistent_key)
        )

    def put(self, key: Hashable, tensor: np.ndarray) -> np.ndarray:
        """Insert a tensor, evicting LRU entries past the byte budget.

        The stored array is marked read-only; the returned array is the
        stored one, so callers should treat it as immutable too. With a
        persistent tier, float tensors carrying a persistent key are
        also published to disk.
        """
        mem_key, persistent_key = self._split(key)
        stored = self._admit(mem_key, tensor)
        if self.persistent is not None and persistent_key is not None:
            self.persistent.put(persistent_key, stored)
        return stored

    def _admit(self, mem_key: Hashable, tensor: np.ndarray) -> np.ndarray:
        stored = np.ascontiguousarray(tensor)
        if stored is tensor and tensor.flags.writeable:
            stored = tensor.copy()
        stored.flags.writeable = False
        nbytes = int(stored.nbytes)
        with self._lock:
            if nbytes > self.max_bytes:
                self.rejected += 1
                return stored
            previous = self._entries.pop(mem_key, None)
            if previous is not None:
                self.current_bytes -= int(previous.nbytes)
            self._entries[mem_key] = stored
            self.current_bytes += nbytes
            while self.current_bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= int(evicted.nbytes)
                self.evictions += 1
        return stored

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def summary(self) -> str:
        with self._lock:
            return (
                f"GridTensorCache(entries={len(self._entries)}, "
                f"bytes={self.current_bytes}/{self.max_bytes}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions}, rejected={self.rejected}, "
                f"persistent_hits={self.persistent_hits}, "
                f"inflight_waits={self.inflight_waits})"
            )
