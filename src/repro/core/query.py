"""The ACQ query model: tables, predicates, and an aggregate constraint.

This is the in-memory object the SQL dialect of section 2.1 binds to:

.. code-block:: sql

    SELECT * FROM t1, t2
    CONSTRAINT AGG(attr) Op X
    WHERE P1 AND P2 NOREFINE AND ...

``NOREFINE`` predicates are carried with ``refinable=False``; the
*refinable* predicates, in declaration order, are the dimensions of the
refined space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.aggregates import AggregateSpec
from repro.core.predicate import (
    CategoricalPredicate,
    JoinPredicate,
    Predicate,
    SelectPredicate,
)
from repro.exceptions import QueryModelError


class ConstraintOp(enum.Enum):
    """Comparison operator of the aggregate constraint.

    The paper's expansion problem uses ``=``, ``>=`` and ``>``;
    ``<=``/``<`` select the contraction extension (section 7.2).
    """

    EQ = "="
    GE = ">="
    GT = ">"
    LE = "<="
    LT = "<"

    @classmethod
    def parse(cls, text: str) -> "ConstraintOp":
        for op in cls:
            if op.value == text:
                return op
        raise QueryModelError(f"unknown constraint operator: {text!r}")

    @property
    def is_expansion(self) -> bool:
        return self in (ConstraintOp.EQ, ConstraintOp.GE, ConstraintOp.GT)


@dataclass(frozen=True)
class AggregateConstraint:
    """``CONSTRAINT AGG(attribute) Op X`` — paper section 2.1.

    ``target`` is the expected aggregate value ``Aexp`` (a positive
    number per the paper's grammar).
    """

    spec: AggregateSpec
    op: ConstraintOp
    target: float

    def __post_init__(self) -> None:
        if self.target < 0:
            raise QueryModelError("constraint target X must be a positive number")

    def describe(self) -> str:
        # 12 significant digits: enough that format -> parse round-trips
        # exactly for any target a user plausibly types.
        return f"{self.spec.describe()} {self.op.value} {self.target:.12g}"


@dataclass(frozen=True)
class Query:
    """An aggregation constrained query ``Q = P_1 ^ ... ^ P_n``.

    Attributes:
        name: label used in reports.
        tables: relations in the FROM clause.
        predicates: every predicate, refinable or not, in declaration
            order.
        constraint: the aggregate constraint.
    """

    name: str
    tables: tuple[str, ...]
    predicates: tuple[Predicate, ...]
    constraint: AggregateConstraint
    extra_constraints: tuple[AggregateConstraint, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryModelError("query needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise QueryModelError("duplicate table in FROM clause")
        names = [predicate.name for predicate in self.predicates]
        if len(set(names)) != len(names):
            raise QueryModelError(f"duplicate predicate names: {names}")
        table_set = set(self.tables)
        for predicate in self.predicates:
            for table in _predicate_tables(predicate):
                if table not in table_set:
                    raise QueryModelError(
                        f"predicate {predicate.name!r} references table "
                        f"{table!r} not in FROM clause"
                    )

    @classmethod
    def build(
        cls,
        name: str,
        tables: Sequence[str],
        predicates: Sequence[Predicate],
        constraint: AggregateConstraint,
        extra_constraints: Sequence[AggregateConstraint] = (),
    ) -> "Query":
        return cls(
            name,
            tuple(tables),
            tuple(predicates),
            constraint,
            tuple(extra_constraints),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> tuple[AggregateConstraint, ...]:
        """All aggregate constraints, primary first.

        A multi-constraint ACQ (``CONSTRAINT c1 AND c2 ...``) is a
        conjunction: a refined query satisfies the ACQ only when every
        constraint's aggregate error is within delta. The first
        constraint drives the Expand traversal; the extras are checked
        per examined grid point.
        """
        return (self.constraint,) + self.extra_constraints

    @property
    def refinable_predicates(self) -> tuple[Predicate, ...]:
        """The d flexible predicates — the refined space dimensions."""
        return tuple(p for p in self.predicates if p.refinable)

    @property
    def fixed_predicates(self) -> tuple[Predicate, ...]:
        """NOREFINE predicates, applied verbatim by the backends."""
        return tuple(p for p in self.predicates if not p.refinable)

    @property
    def dimensionality(self) -> int:
        return len(self.refinable_predicates)

    @property
    def join_predicates(self) -> tuple[JoinPredicate, ...]:
        return tuple(
            p for p in self.predicates if isinstance(p, JoinPredicate)
        )

    @property
    def select_predicates(self) -> tuple[SelectPredicate, ...]:
        return tuple(
            p for p in self.predicates if isinstance(p, SelectPredicate)
        )

    @property
    def categorical_predicates(self) -> tuple[CategoricalPredicate, ...]:
        return tuple(
            p for p in self.predicates if isinstance(p, CategoricalPredicate)
        )

    @property
    def weights(self) -> tuple[float, ...]:
        """Weights of the refinable predicates (section 7.1 preferences)."""
        return tuple(p.weight for p in self.refinable_predicates)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_constraint(self, constraint: AggregateConstraint) -> "Query":
        return replace(self, constraint=constraint)

    def with_only_constraint(self, constraint: AggregateConstraint) -> "Query":
        """Single-constraint view: replace the primary, drop the extras.

        The driver and the corpus oracle evaluate each constraint of a
        multi-constraint ACQ through its own prepared handle; this is
        the query those handles are prepared from.
        """
        return replace(self, constraint=constraint, extra_constraints=())

    def with_predicates(self, predicates: Sequence[Predicate]) -> "Query":
        return replace(self, predicates=tuple(predicates))

    def describe(self) -> str:
        lines = [f"SELECT * FROM {', '.join(self.tables)}"]
        lines.append(
            "CONSTRAINT "
            + " AND ".join(c.describe() for c in self.constraints)
        )
        conditions = []
        for predicate in self.predicates:
            text = predicate.describe()
            if not predicate.refinable:
                text += " NOREFINE"
            conditions.append(text)
        if conditions:
            lines.append("WHERE " + "\n  AND ".join(conditions))
        return "\n".join(lines)


def _predicate_tables(predicate: Predicate) -> set[str]:
    if isinstance(predicate, SelectPredicate):
        return predicate.expr.tables()
    if isinstance(predicate, JoinPredicate):
        return predicate.left.tables() | predicate.right.tables()
    return predicate.column.tables()
