"""Materialized Explore: whole-grid / tiled aggregation + prefix combine.

The incremental Explore (:mod:`repro.core.explore`) pays one backend
round trip per visited cell. For dense searches the entire cell tensor
can be computed in a *single* backend pass
(:meth:`~repro.engine.backends.EvaluationLayer.execute_grid`), after
which the Eq. 17 recurrence

    O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1})

collapses into d axis-wise cumulative-combine passes over the tensor:
pass ``i`` replaces each line along axis ``i`` with its running
combine, turning cell states into block (full-query) states. Every
later grid query is then an O(1) in-memory lookup.

Bit-identity with the serial :class:`~repro.core.explore.Explorer`:
unrolled along one axis the recurrence is a left fold
``combine(current, accumulated)``; ``np.cumsum`` /
``np.maximum.accumulate`` compute the same fold with the operands
commuted (``accumulated + current``), and IEEE addition, min and max
are commutative — so every intermediate value is identical bit for
bit. User-defined OSP aggregates make no commutativity promise, so
they take a generic Python fold that preserves the serial operand
order exactly.

Tiling (:class:`TiledGridExplorer`): when the grid is too large to
materialize whole — or when only a prefix of the traversal will ever be
visited — the grid is partitioned into axis-aligned rectangular tiles
(the cartesian product of per-axis coordinate intervals) and each tile
is materialized on demand through
:meth:`~repro.engine.backends.EvaluationLayer.execute_grid_tile`. The
prefix passes run per tile with *seam carries*: after pass ``a`` over a
tile, its last slab along axis ``a`` (the stage-``a+1`` values at the
tile's upper boundary) is captured; the neighbouring tile one step up
along axis ``a`` folds that slab into its first slab before running its
own pass ``a``. Because the resulting per-line association chain is
exactly the full-grid chain, tiled block states are bit-identical to
both the whole-grid and the serial engines. A tile's carries come from
its componentwise-predecessor tiles, so materializing the down-set
``{t' : t' <= t}`` in lexicographic order satisfies every dependency.

Sharding (:class:`TileScheduler`): tile *fetches* — the backend pass
producing a tile's cell tensor — have no inter-tile dependency; only
the seam *stitching* is dependency-ordered. The scheduler therefore
dispatches every missing tile's fetch to a worker pool up front and
stitches serially in lexicographic order as tensors arrive, overlapping
backend I/O with prefix passes. Because each cell tensor is
deterministic regardless of fetch timing and the stitch order never
changes, block states stay bit-identical to the serial engine.

Process tier (:class:`ProcessTileScheduler`): thread workers only help
backends whose fetch path releases the GIL (sqlite); the numpy memory
backend computes tiles under the GIL, so its thread arm is flat. With
``tile_executor="process"`` fetches are dispatched to a persistent
``multiprocessing`` pool instead: workers rebuild the backend once per
pool from a picklable :class:`~repro.core.tile_worker.BackendSpec` and
return tile tensors through ``multiprocessing.shared_memory`` blocks,
so the parent stitches straight out of the mapped buffer. Stitching
stays serial in lex order on the parent, so answers remain
bit-identical to serial at any worker count. Pools are registered
process-wide keyed by (spec digest, workers) and survive across
explorer instances; a broken pool degrades to in-process fetches
(counted as ``process_fallbacks``) rather than failing the search.

Both materializing engines optionally consult a
:class:`~repro.core.grid_cache.GridTensorCache`, at two granularities:
raw *cell* tensors (kind ``"cells"``), so constraint sweeps re-use the
expensive backend pass; and finished *block* tensors plus tile seam
slabs (kinds ``"blocks"`` / ``"seam<axis>"``), so a warm replay skips
Explore entirely — no backend pass *and* no prefix passes. With a
persistent cache tier the block tensors survive across processes.

See ``docs/EXPLORE_MODES.md`` for the mode contract and when the
driver picks each path.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures.process import (
    BrokenProcessPool,
    ProcessPoolExecutor,
)
from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

from repro.core.aggregates import (
    AggState,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    OSPAggregate,
    SumAggregate,
)
from repro.core.grid_cache import GridTensorCache
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import (
    EvaluationLayer,
    PreparedQuery,
    current_scopes,
    scoped_stats,
)
from repro.exceptions import SearchError

Coords = tuple[int, ...]

#: axis -> carry slab (the neighbour tile's seam along that axis).
Carries = dict[int, np.ndarray]


class GridExplorer:
    """Drop-in Explore engine over a materialized cell grid.

    Exposes the same ``compute_aggregate`` / ``block_state`` /
    ``prime_cells`` / counter interface as
    :class:`~repro.core.explore.Explorer`, so the ACQUIRE driver, its
    budget accounting and the repartitioning step work unchanged.

    The grid is materialized lazily on first access; ``cells_executed``
    then equals the full grid size (every cell was computed exactly
    once, in one pass), and ``cells_skipped`` stays 0 — the bitmap
    index is pointless here because emptiness falls out of the same
    pass. With a ``cache``, a hit serves the cell tensor without any
    backend pass and ``cells_executed`` stays 0.
    """

    def __init__(
        self,
        layer: EvaluationLayer,
        prepared: PreparedQuery,
        space: RefinedSpace,
        aggregate: OSPAggregate,
        cache: Optional[GridTensorCache] = None,
    ) -> None:
        self.layer = layer
        self.prepared = prepared
        self.space = space
        self.aggregate = aggregate
        self.cache = cache
        self.cells_executed = 0
        self.cells_skipped = 0
        self._blocks: np.ndarray | None = None

    # -- Explorer interface --------------------------------------------
    def compute_aggregate(self, coords: Sequence[int]) -> float:
        """Finalized aggregate value of the grid query at ``coords``."""
        return self.aggregate.finalize(self.block_state(coords))

    def block_state(self, coords: Sequence[int]) -> AggState:
        """Aggregate state of the full query at ``coords`` (``O_{d+1}``)."""
        blocks = self._materialized()
        key = tuple(int(coord) for coord in coords)
        if blocks.dtype == object:
            return blocks[key]
        return tuple(float(value) for value in blocks[key])

    def prime_cells(self, coords_list: Sequence[Sequence[int]]) -> int:
        """No-op: the whole grid is (or will be) materialized at once."""
        return 0

    # -- materialization -----------------------------------------------
    def _materialized(self) -> np.ndarray:
        if self._blocks is None:
            blocks_key = None
            flight = None
            if self.cache is not None:
                blocks_key = GridTensorCache.key_for(
                    self.layer, self.prepared.query, self.space,
                    kind="blocks",
                )
                # Single-flighted even on the fusion path: the block
                # tensor is derived locally (never fused), so N threads
                # racing one cold key elect a leader and the rest adopt
                # its result — at most one persistent-tier read.
                cached, tier, flight = self.cache.lookup_or_lead(
                    blocks_key
                )
                if cached is not None:
                    # A finished block tensor: skip the backend pass
                    # and the d prefix passes entirely.
                    self.layer.count_cache_event(
                        True,
                        int(cached.nbytes),
                        persistent=tier == "persistent",
                        block=True,
                    )
                    self._blocks = cached
                    return cached
            try:
                tensor = self._fetch_grid()
                blocks = prefix_combine(tensor, self.aggregate)
            except BaseException:
                if flight is not None:
                    self.cache.abort_flight(blocks_key)
                raise
            if blocks_key is not None:
                blocks = self.cache.complete_flight(blocks_key, blocks)
            self._blocks = blocks
        return self._blocks

    def _fetch_grid(self) -> np.ndarray:
        if self.cache is None:
            tensor, executed = self._grid_pass()
            if executed:
                self.cells_executed = int(
                    np.prod(tensor.shape[:-1], dtype=np.int64)
                )
            return tensor
        key = GridTensorCache.key_for(
            self.layer, self.prepared.query, self.space
        )
        if getattr(self.layer, "pass_coalescer", None) is not None:
            # Fusion path (docs/SERVICE.md): plain lookup — the
            # coalescer does its own in-flight joining — and misses
            # route through the coalescer so concurrent requests can
            # share one merged pass.
            cached, tier = self.cache.lookup(key)
            if cached is not None:
                self.layer.count_cache_event(
                    True,
                    int(cached.nbytes),
                    persistent=tier == "persistent",
                )
                return cached
            tensor, executed = self._grid_pass()
            if executed:
                self.cells_executed = int(
                    np.prod(tensor.shape[:-1], dtype=np.int64)
                )
                tensor = self.cache.put(key, tensor)
                self.layer.count_cache_event(False)
            else:
                # Adopted from another request's pass: cache-hit-like
                # semantics (the leader executed and counted the pass),
                # mirroring the serial replay where a duplicate query
                # is served by the shared cache.
                tensor = self.cache.put(key, tensor)
            return tensor
        # Unhooked path: single-flight through the cache so N threads
        # missing the same grid execute exactly one backend pass.
        cached, tier, flight = self.cache.lookup_or_lead(key)
        if cached is not None:
            self.layer.count_cache_event(
                True, int(cached.nbytes), persistent=tier == "persistent"
            )
            return cached
        try:
            tensor = self.layer.execute_grid(self.prepared, self.space)
        except BaseException:
            self.cache.abort_flight(key)
            raise
        self.cells_executed = int(np.prod(tensor.shape[:-1], dtype=np.int64))
        tensor = self.cache.complete_flight(key, tensor)
        self.layer.count_cache_event(False)
        return tensor

    def _grid_pass(self) -> tuple[np.ndarray, bool]:
        """One full-grid backend pass, fused when a coalescer is up.

        Returns ``(tensor, executed)``: ``executed=False`` means the
        tensor was adopted from another in-flight request's merged
        pass and this request must not count the execution.
        """
        coalescer = getattr(self.layer, "pass_coalescer", None)
        if coalescer is not None:
            lo = (0,) * self.space.d
            hi = tuple(int(c) for c in self.space.max_coords)
            fetched = coalescer.fetch_tile(
                self.layer, self.prepared, self.space, lo, hi
            )
            if fetched is not None:
                return fetched.tensor, fetched.executed
        return self.layer.execute_grid(self.prepared, self.space), True


class TiledGridExplorer:
    """Explore engine over on-demand, seam-stitched grid tiles.

    Same driver-facing interface as :class:`GridExplorer`, but the grid
    is materialized tile by tile: only tiles the traversal actually
    reaches (plus their componentwise-predecessor down-set, needed for
    seam carries) are ever computed, so a search that stops after a few
    layers — or is truncated by ``max_grid_queries`` — never pays for
    the far corner of the grid.

    Args:
        layer: evaluation layer; tiles go through
            :meth:`~repro.engine.backends.EvaluationLayer.execute_grid_tile`.
        prepared: backend-prepared state for the query.
        space: the refined space grid.
        aggregate: the constraint's OSP aggregate.
        max_tile_cells: soft per-tile cell budget; the tile shape is
            derived from it via :func:`tile_shape_for`.
        tile_shape: explicit per-axis tile widths, overriding
            ``max_tile_cells`` (used by tests to force seams through
            specific layers).
        cache: optional cross-query tensor cache; cell tensors are
            keyed by their ``(lo, hi)`` box and finished block/seam
            tensors by the same box under distinct kinds, so replays
            hit tile by tile — a block hit skips the tile's backend
            pass and its prefix passes.
        tile_workers: worker threads for the sharded tile pipeline
            (1 = serial). Tile fetches are dispatched to a pool while
            stitching stays serial in lexicographic order, so results
            are bit-identical to the serial engine at any worker
            count.
        tile_executor: ``"thread"`` (default) or ``"process"``. The
            process tier dispatches fetches to a persistent worker
            *process* pool over shared memory, escaping the GIL for
            backends whose fetch path is pure Python/numpy. It needs a
            picklable backend recipe (``layer.backend_spec``) and a
            vectorized aggregate; otherwise the explorer silently
            falls back to the thread tier (the effective choice is
            recorded on :attr:`tile_executor`). Ignored when
            ``tile_workers == 1``.
    """

    def __init__(
        self,
        layer: EvaluationLayer,
        prepared: PreparedQuery,
        space: RefinedSpace,
        aggregate: OSPAggregate,
        max_tile_cells: int = 65536,
        tile_shape: Optional[Sequence[int]] = None,
        cache: Optional[GridTensorCache] = None,
        tile_workers: int = 1,
        tile_executor: str = "thread",
    ) -> None:
        self.layer = layer
        self.prepared = prepared
        self.space = space
        self.aggregate = aggregate
        self.cache = cache
        # Captured on the constructing (request) thread: pool workers
        # start with an empty context, so _fetch_tile re-establishes
        # these scopes to credit the owning request (see
        # repro.engine.backends.scoped_stats).
        self._scopes = current_scopes()
        if tile_shape is None:
            self.tile_shape: Coords = tile_shape_for(space, max_tile_cells)
        else:
            widths = tuple(int(width) for width in tile_shape)
            if len(widths) != space.d or any(w < 1 for w in widths):
                raise SearchError(
                    f"tile shape {widths} invalid for a {space.d}-d space"
                )
            self.tile_shape = widths
        self._tile_counts = tuple(
            -(-(limit + 1) // width)
            for limit, width in zip(space.max_coords, self.tile_shape)
        )
        if int(tile_workers) < 1:
            raise SearchError(
                f"tile_workers must be >= 1, got {tile_workers}"
            )
        self.tile_workers = int(tile_workers)
        if tile_executor not in ("thread", "process"):
            raise SearchError(
                f"unknown tile_executor {tile_executor!r}; "
                "expected 'thread' or 'process'"
            )
        self.cells_executed = 0
        self.cells_skipped = 0
        self.tiles_materialized = 0
        self.tiles_restored = 0
        self._blocks: dict[Coords, np.ndarray] = {}
        self._seams: dict[tuple[Coords, int], np.ndarray] = {}
        # Guards counters written from fetch worker threads.
        self._count_lock = threading.Lock()
        self._scheduler: Optional[TileScheduler | ProcessTileScheduler]
        self._scheduler = None
        self.tile_executor = "serial"
        if self.tile_workers > 1:
            self.tile_executor = "thread"
            spec = (
                layer.backend_spec(prepared)
                if tile_executor == "process"
                else None
            )
            if spec is not None and _vector_ops(aggregate) is not None:
                # Process tier: picklable backend + float64 tiles only.
                # Anything else (custom backend, generic OSP aggregate)
                # falls back to thread workers.
                self._scheduler = ProcessTileScheduler(
                    self, self.tile_workers, spec
                )
                self.tile_executor = "process"
            else:
                self._scheduler = TileScheduler(self, self.tile_workers)

    def close(self) -> None:
        """Shut down the tile worker pool (no-op when serial)."""
        if self._scheduler is not None:
            self._scheduler.close()

    # -- Explorer interface --------------------------------------------
    def compute_aggregate(self, coords: Sequence[int]) -> float:
        """Finalized aggregate value of the grid query at ``coords``."""
        return self.aggregate.finalize(self.block_state(coords))

    def block_state(self, coords: Sequence[int]) -> AggState:
        """Aggregate state of the full query at ``coords`` (``O_{d+1}``)."""
        key = tuple(int(coord) for coord in coords)
        tile = tuple(c // w for c, w in zip(key, self.tile_shape))
        blocks = self._ensure_tile(tile)
        local = tuple(
            c - t * w for c, t, w in zip(key, tile, self.tile_shape)
        )
        if blocks.dtype == object:
            return blocks[local]
        return tuple(float(value) for value in blocks[local])

    def prime_cells(self, coords_list: Sequence[Sequence[int]]) -> int:
        """Pre-materialize the tiles a layer's coordinates land in.

        Returns the number of cells newly executed against the backend
        (0 when every touched tile was already materialized or served
        from cache), mirroring ``Explorer.prime_cells`` accounting.
        """
        with self._count_lock:
            before = self.cells_executed
        tiles = {
            tuple(int(c) // w for c, w in zip(coords, self.tile_shape))
            for coords in coords_list
        }
        self._ensure_tiles(sorted(tiles))
        with self._count_lock:
            return self.cells_executed - before

    # -- tiling --------------------------------------------------------
    def tile_bounds(self, tile: Sequence[int]) -> tuple[Coords, Coords]:
        """Inclusive ``(lo, hi)`` coordinate box of a tile index."""
        lo = tuple(t * w for t, w in zip(tile, self.tile_shape))
        hi = tuple(
            min(low + width - 1, limit)
            for low, width, limit in zip(
                lo, self.tile_shape, self.space.max_coords
            )
        )
        return lo, hi

    def _ensure_tile(self, tile: Coords) -> np.ndarray:
        blocks = self._blocks.get(tile)
        if blocks is None:
            self._ensure_tiles([tile])
            blocks = self._blocks[tile]
        return blocks

    def _ensure_tiles(self, tiles: Sequence[Coords]) -> None:
        """Materialize every missing tile in the targets' down-sets.

        Seam carries chain through every componentwise predecessor, so
        each target needs its down-set ``{t' : t' <= t}``; global
        lexicographic order guarantees ``t - e_a`` is handled before
        ``t``. Tiles restorable from the block cache are installed
        first (they need no carries and *provide* their seams); the
        rest are fetched — in parallel when a scheduler is attached —
        and stitched serially in lexicographic order.
        """
        pending: list[Coords] = []
        seen: set[Coords] = set()
        for target in sorted(tuple(int(t) for t in tile) for tile in tiles):
            if target in self._blocks:
                continue
            for dep in itertools.product(*(range(t + 1) for t in target)):
                if dep in seen or dep in self._blocks:
                    continue
                seen.add(dep)
                if not self._restore_tile(dep):
                    pending.append(dep)
        pending.sort()
        if self._scheduler is not None and len(pending) > 1:
            self._scheduler.run(pending)
        else:
            for dep in pending:
                self._materialize_tile(dep)

    def _tile_key(self, tile: Coords, kind: str):
        lo, hi = self.tile_bounds(tile)
        return GridTensorCache.key_for(
            self.layer, self.prepared.query, self.space, lo, hi, kind=kind
        )

    def _restore_tile(self, tile: Coords) -> bool:
        """Install a tile's finished blocks + seams from the cache.

        Succeeds only when the block tensor *and* every seam slab a
        successor tile could need are all present — a partial hit is
        treated as a miss so stitching never sees half a tile.
        """
        if self.cache is None:
            return False
        blocks, tier = self.cache.lookup(self._tile_key(tile, "blocks"))
        if blocks is None:
            return False
        nbytes = int(blocks.nbytes)
        seams: Carries = {}
        for axis in range(self.space.d):
            if tile[axis] + 1 >= self._tile_counts[axis]:
                continue
            seam, _ = self.cache.lookup(self._tile_key(tile, f"seam{axis}"))
            if seam is None:
                return False
            seams[axis] = seam
            nbytes += int(seam.nbytes)
        self._blocks[tile] = blocks
        for axis, seam in seams.items():
            self._seams[(tile, axis)] = seam
        self.layer.count_cache_event(
            True, nbytes, persistent=tier == "persistent", block=True
        )
        self.tiles_restored += 1
        return True

    def _materialize_tile(
        self, tile: Coords, tensor: Optional[np.ndarray] = None
    ) -> None:
        lo, hi = self.tile_bounds(tile)
        if tensor is None:
            tensor = self._fetch_tile(lo, hi)
        carries: Carries = {}
        for axis in range(self.space.d):
            if tile[axis] > 0:
                neighbour = (
                    tile[:axis] + (tile[axis] - 1,) + tile[axis + 1:]
                )
                carries[axis] = self._seams[(neighbour, axis)]
        blocks, seams = tile_prefix_combine(tensor, self.aggregate, carries)
        if self.cache is not None:
            blocks = self.cache.put(self._tile_key(tile, "blocks"), blocks)
        self._blocks[tile] = blocks
        for axis, seam in seams.items():
            if tile[axis] + 1 < self._tile_counts[axis]:
                if self.cache is not None:
                    seam = self.cache.put(
                        self._tile_key(tile, f"seam{axis}"), seam
                    )
                self._seams[(tile, axis)] = seam
        self.tiles_materialized += 1

    def _fetch_tile(self, lo: Coords, hi: Coords) -> np.ndarray:
        # May run on a TileScheduler pool thread; re-establish the
        # owning request's stat scopes (idempotent on the request
        # thread itself, where they are already active).
        with scoped_stats(self._scopes):
            coalescer = getattr(self.layer, "pass_coalescer", None)
            if self.cache is None or coalescer is not None:
                cached = self._cached_tile(lo, hi)
                if cached is not None:
                    return cached
                if coalescer is not None:
                    # Fusion path (docs/SERVICE.md): the miss routes
                    # through the coalescer so concurrent requests can
                    # share one merged backend pass.
                    fetched = coalescer.fetch_tile(
                        self.layer, self.prepared, self.space, lo, hi
                    )
                    if fetched is not None:
                        if fetched.executed:
                            return self._store_tile(lo, hi, fetched.tensor)
                        return self._adopt_tile(lo, hi, fetched.tensor)
                tensor = self.layer.execute_grid_tile(
                    self.prepared, self.space, lo, hi
                )
                return self._store_tile(lo, hi, tensor)
            # Unhooked path: single-flight through the cache so N
            # threads missing the same tile execute exactly one
            # backend pass.
            key = GridTensorCache.key_for(
                self.layer, self.prepared.query, self.space, lo, hi
            )
            cached, tier, flight = self.cache.lookup_or_lead(key)
            if cached is not None:
                self.layer.count_cache_event(
                    True,
                    int(cached.nbytes),
                    persistent=tier == "persistent",
                )
                return cached
            try:
                tensor = self.layer.execute_grid_tile(
                    self.prepared, self.space, lo, hi
                )
            except BaseException:
                self.cache.abort_flight(key)
                raise
            return self._store_tile(lo, hi, tensor, flight=True)

    def _cached_tile(self, lo: Coords, hi: Coords) -> Optional[np.ndarray]:
        """Cell-cache lookup for one tile (None on miss or no cache).

        Split out of :meth:`_fetch_tile` so the process scheduler can
        pre-check the cache in the parent and dispatch only misses.
        """
        if self.cache is None:
            return None
        key = GridTensorCache.key_for(
            self.layer, self.prepared.query, self.space, lo, hi
        )
        cached, tier = self.cache.lookup(key)
        if cached is not None:
            self.layer.count_cache_event(
                True, int(cached.nbytes), persistent=tier == "persistent"
            )
        return cached

    def _store_tile(
        self,
        lo: Coords,
        hi: Coords,
        tensor: np.ndarray,
        flight: bool = False,
    ) -> np.ndarray:
        """Account for a freshly executed tile and admit it to the
        cell cache (counterpart of a :meth:`_cached_tile` miss).

        With ``flight=True`` the admission goes through
        :meth:`~repro.core.grid_cache.GridTensorCache.complete_flight`
        so threads parked on this tile's in-flight entry wake with the
        tensor (the caller must hold the flight's lead).

        Callers handing in a shared-memory view must copy it out first
        when a cache is attached — the cache may retain the array past
        the block's unlink.
        """
        with self._count_lock:
            self.cells_executed += int(
                np.prod(tensor.shape[:-1], dtype=np.int64)
            )
        if self.cache is None:
            return tensor
        key = GridTensorCache.key_for(
            self.layer, self.prepared.query, self.space, lo, hi
        )
        if flight:
            tensor = self.cache.complete_flight(key, tensor)
        else:
            tensor = self.cache.put(key, tensor)
        self.layer.count_cache_event(False)
        return tensor

    def _adopt_tile(
        self, lo: Coords, hi: Coords, tensor: np.ndarray
    ) -> np.ndarray:
        """Install a tile adopted from another request's fused pass.

        Cache-hit-like semantics: the pass was executed — and its
        counters credited — by the leading request, so no
        ``cells_executed`` and no cache hit/miss event is recorded
        here, mirroring the serial replay where a duplicate query is
        served by the shared cache.
        """
        if self.cache is None:
            return tensor
        key = GridTensorCache.key_for(
            self.layer, self.prepared.query, self.space, lo, hi
        )
        return self.cache.put(key, tensor)


class TileScheduler:
    """Dispatches independent tile fetches to a worker pool.

    The down-set arrives topologically ordered (lexicographic order is
    a linearization of the componentwise-predecessor DAG). Fetches —
    the backend pass producing a tile's *cell* tensor — have no
    inter-tile dependency, so all of them are submitted up front;
    stitching (seam carries + prefix passes) consumes the futures
    strictly in the given order on the calling thread. Materialization
    of tile ``k`` thus overlaps the fetches of tiles ``k+1..n`` while
    block states stay bit-identical to the serial engine.
    """

    def __init__(self, explorer: "TiledGridExplorer", workers: int) -> None:
        self.explorer = explorer
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _pool_for(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-tile"
            )
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def run(self, pending: Sequence[Coords]) -> None:
        explorer = self.explorer
        pool = self._pool_for()
        futures = {}
        for tile in pending:
            lo, hi = explorer.tile_bounds(tile)
            futures[tile] = pool.submit(explorer._fetch_tile, lo, hi)
        try:
            for tile in pending:
                explorer._materialize_tile(
                    tile, tensor=futures[tile].result()
                )
        finally:
            for future in futures.values():
                future.cancel()
        explorer.layer.count_parallel_tiles(len(pending))


# ---------------------------------------------------------------------------
# Process tier: persistent worker-process pools over shared memory

#: Environment override for the worker start method ("spawn" default;
#: "fork" skips the interpreter boot but inherits parent state).
_START_METHOD_ENV = "REPRO_TILE_START_METHOD"


def _start_method() -> str:
    method = os.environ.get(_START_METHOD_ENV, "spawn")
    if method not in multiprocessing.get_all_start_methods():
        return "spawn"
    return method


class _ProcessPool:
    """Registry entry: one persistent worker pool per (spec, workers).

    ``refs`` counts in-flight batches using the executor and
    ``retired`` marks a pool dropped from the registry after a
    failure; both fields are guarded by ``_PROCESS_POOL_LOCK``. The
    executor is only shut down once a retired pool's refcount reaches
    zero, so one request's fallback-retirement can never cancel another
    request's futures mid-batch.
    """

    __slots__ = ("key", "executor", "refs", "retired")

    def __init__(
        self, key: tuple[str, int], executor: ProcessPoolExecutor
    ) -> None:
        self.key = key
        self.executor = executor
        self.refs = 0
        self.retired = False


#: Process-wide pool registry. Workers rebuild their backend once per
#: pool (the expensive part), so pools outlive explorer instances and
#: repeated searches over the same data reuse warm workers.
_PROCESS_POOLS: dict[tuple[str, int], _ProcessPool] = {}
_PROCESS_POOL_LOCK = threading.Lock()
#: Per-key spawn locks: concurrent first use of the *same* key blocks
#: on one lock (double-checked against the registry) instead of both
#: spawning, while lookups and spawns for unrelated keys proceed —
#: the registry lock is never held across the spawn/warm barrier.
_POOL_SPAWN_LOCKS: dict[tuple[str, int], threading.Lock] = {}


def _process_pool_for(
    spec, workers: int, layer: EvaluationLayer
) -> Optional[_ProcessPool]:
    """A warm worker pool for ``spec``, spawning one if needed.

    Spawning submits one barrier task per worker so process start-up
    and the per-worker backend rebuild complete here — recorded as
    ``process_spawn_s`` — rather than bleeding into the first tile
    batch's IPC measurement. Returns None when workers cannot be
    spawned (the scheduler then degrades to in-process fetches).

    The returned pool carries one reference owned by the caller;
    release it with :func:`_release_pool` when the batch is done.
    """
    from repro.core import tile_worker

    key = (spec.digest(), int(workers))
    with _PROCESS_POOL_LOCK:
        pool = _PROCESS_POOLS.get(key)
        if pool is not None:
            pool.refs += 1
            return pool
        spawn_lock = _POOL_SPAWN_LOCKS.setdefault(key, threading.Lock())
    with spawn_lock:
        # Double-check: another request may have finished spawning this
        # key's pool while we waited on its spawn lock.
        with _PROCESS_POOL_LOCK:
            pool = _PROCESS_POOLS.get(key)
            if pool is not None:
                pool.refs += 1
                return pool
        started = time.perf_counter()
        executor: Optional[ProcessPoolExecutor] = None
        try:
            executor = ProcessPoolExecutor(
                max_workers=int(workers),
                mp_context=multiprocessing.get_context(_start_method()),
                initializer=tile_worker.initialize_worker,
                initargs=(spec,),
            )
            warm = [
                executor.submit(tile_worker.warm_worker)
                for _ in range(int(workers))
            ]
            for future in warm:
                future.result(timeout=120)
        except (OSError, ValueError, RuntimeError):
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            return None
        pool = _ProcessPool(key, executor)
        with _PROCESS_POOL_LOCK:
            pool.refs = 1
            _PROCESS_POOLS[key] = pool
    layer.count_process_tiles(
        pools=1, spawn_s=time.perf_counter() - started
    )
    return pool


def _release_pool(pool: _ProcessPool) -> None:
    """Drop one batch's reference; reap a retired pool on the last one."""
    with _PROCESS_POOL_LOCK:
        pool.refs -= 1
        reap = pool.retired and pool.refs <= 0
    if reap:
        pool.executor.shutdown(wait=False, cancel_futures=True)


def _retire_pool(pool: _ProcessPool) -> None:
    """Drop a broken pool from the registry.

    The executor is reaped immediately when no other batch holds a
    reference; otherwise shutdown is deferred to the last
    :func:`_release_pool`, so concurrent batches finish (or observe the
    breakage themselves) instead of having their futures cancelled out
    from under them. Identity-checked against the registry so retiring
    a stale pool never evicts a fresh replacement under the same key.
    """
    with _PROCESS_POOL_LOCK:
        if _PROCESS_POOLS.get(pool.key) is pool:
            del _PROCESS_POOLS[pool.key]
        pool.retired = True
        reap = pool.refs <= 0
    if reap:
        pool.executor.shutdown(wait=False, cancel_futures=True)


def shutdown_process_pools() -> None:
    """Shut down every registered tile worker pool (idempotent).

    Pools persist across explorer instances so repeated searches reuse
    warm workers; call this to reclaim the processes. An ``atexit``
    hook covers normal interpreter exit.
    """
    with _PROCESS_POOL_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
        for pool in pools:
            pool.retired = True
    for pool in pools:
        pool.executor.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_process_pools)


class ProcessTileScheduler:
    """Dispatches tile fetches to a persistent worker-*process* pool.

    Same contract as :class:`TileScheduler` — fetches fan out, stitching
    consumes strictly in the given lexicographic order on the calling
    thread, results are bit-identical to serial — but the fetch runs in
    another process, so backends that compute tiles under the GIL (the
    numpy memory backend, histograms) scale too.

    Mechanics per batch: the parent pre-checks the cell cache and, for
    each miss, creates a ``multiprocessing.shared_memory`` block sized
    from the tile's shape and the aggregate's state arity (the process
    tier is float64-only by construction), then submits
    :func:`repro.core.tile_worker.fetch_tile`. The worker fills the
    block and ships back only its stats delta; the parent stitches
    straight out of the mapped buffer (``tile_prefix_combine`` copies
    into its work array, so the zero-copy read is safe) and then closes
    + unlinks the block. Infrastructure failures — pool crash, worker
    death, shm exhaustion — degrade to in-process fetches and are
    counted as ``process_fallbacks``; deterministic engine errors
    propagate exactly as the serial path would raise them.
    """

    def __init__(
        self, explorer: "TiledGridExplorer", workers: int, spec
    ) -> None:
        self.explorer = explorer
        self.workers = int(workers)
        self.spec = spec
        self._key = (spec.digest(), self.workers)
        self._arity = len(explorer.aggregate.identity())

    def close(self) -> None:
        """No-op: pools are process-wide and stay warm for the next
        explorer (see :func:`shutdown_process_pools`)."""

    def run(self, pending: Sequence[Coords]) -> None:
        explorer = self.explorer
        layer = explorer.layer
        pool = _process_pool_for(self.spec, self.workers, layer)
        if pool is None:
            for tile in pending:
                explorer._materialize_tile(tile)
            layer.count_process_tiles(fallbacks=len(pending))
            return
        try:
            self._run_batch(pool, pending)
        finally:
            _release_pool(pool)

    def _run_batch(
        self, pool: _ProcessPool, pending: Sequence[Coords]
    ) -> None:
        from repro.core import tile_worker

        explorer = self.explorer
        layer = explorer.layer
        started = time.perf_counter()
        stitch_s = 0.0
        worker_exec_s = 0.0
        dispatched = 0
        fallbacks = 0
        shm_bytes = 0
        tasks: dict[Coords, tuple[str, object]] = {}
        blocks: dict[Coords, shared_memory.SharedMemory] = {}
        broken = False
        try:
            for tile in pending:
                lo, hi = explorer.tile_bounds(tile)
                cached = explorer._cached_tile(lo, hi)
                if cached is not None:
                    tasks[tile] = ("tensor", cached)
                    continue
                if broken:
                    tasks[tile] = ("fetch", (lo, hi))
                    continue
                shape = tuple(
                    high - low + 1 for low, high in zip(lo, hi)
                ) + (self._arity,)
                nbytes = int(np.prod(shape, dtype=np.int64)) * 8
                try:
                    block = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )
                    blocks[tile] = block
                    future = pool.executor.submit(
                        tile_worker.fetch_tile,
                        explorer.space, lo, hi, block.name, shape,
                    )
                except BrokenProcessPool:
                    # The pool is dead; stop dispatching and retire it
                    # so the next explorer spawns a fresh one (reaped
                    # once every in-flight batch releases it).
                    broken = True
                    _retire_pool(pool)
                    tasks[tile] = ("fetch", (lo, hi))
                    continue
                except OSError:
                    # shm exhaustion or similar: the pool itself is
                    # healthy, but this batch degrades in-process.
                    broken = True
                    tasks[tile] = ("fetch", (lo, hi))
                    continue
                tasks[tile] = ("future", (future, lo, hi, shape, nbytes))
            for tile in pending:
                kind, payload = tasks[tile]
                if kind == "tensor":
                    tensor = payload
                elif kind == "future":
                    future, lo, hi, shape, nbytes = payload
                    try:
                        delta = future.result()
                    except (BrokenProcessPool, OSError, CancelledError):
                        # CancelledError: a shutdown raced this batch
                        # (interpreter exit); degrade like a pool break.
                        _retire_pool(pool)
                        fallbacks += 1
                        tensor = self._fetch_fallback(lo, hi)
                    else:
                        layer.merge_stats(delta)
                        worker_exec_s += delta.execution_time_s
                        shm_bytes += nbytes
                        dispatched += 1
                        view = tile_worker.shm_tensor(blocks[tile], shape)
                        if explorer.cache is not None:
                            # The cache may retain the array past the
                            # block's unlink; hand it an owned copy.
                            view = np.array(
                                view, dtype=np.float64, copy=True
                            )
                        tensor = explorer._store_tile(lo, hi, view)
                else:  # "fetch": never dispatched (pool broke early)
                    lo, hi = payload
                    fallbacks += 1
                    tensor = self._fetch_fallback(lo, hi)
                stitch_started = time.perf_counter()
                explorer._materialize_tile(tile, tensor=tensor)
                stitch_s += time.perf_counter() - stitch_started
                block = blocks.pop(tile, None)
                if block is not None:
                    _release_block(block)
        finally:
            for entry in tasks.values():
                if entry[0] == "future":
                    entry[1][0].cancel()
            for block in blocks.values():
                _release_block(block)
            blocks.clear()
        ipc_s = 0.0
        if dispatched:
            # The batch's parent-side overhead: wall time minus the
            # stitching we timed and the workers' own execution spread
            # across the pool — a coarse but monotone per-batch IPC
            # estimate for the plan calibration.
            wall = time.perf_counter() - started
            effective = min(self.workers, dispatched)
            ipc_s = max(wall - stitch_s - worker_exec_s / effective, 0.0)
        layer.count_process_tiles(
            tiles=dispatched,
            fallbacks=fallbacks,
            shm_bytes=shm_bytes,
            ipc_s=ipc_s,
        )
        layer.count_parallel_tiles(dispatched)

    def _fetch_fallback(self, lo: Coords, hi: Coords) -> np.ndarray:
        """In-process fetch for a tile the pool could not deliver (the
        cache was already checked and missed)."""
        explorer = self.explorer
        tensor = explorer.layer.execute_grid_tile(
            explorer.prepared, explorer.space, lo, hi
        )
        return explorer._store_tile(lo, hi, tensor)


def _release_block(block: shared_memory.SharedMemory) -> None:
    """Close + unlink an owned shared-memory block, tolerating repeats."""
    block.close()
    try:
        block.unlink()
    except FileNotFoundError:
        pass


def tile_shape_for(space: RefinedSpace, max_tile_cells: int) -> Coords:
    """Per-axis tile widths with at most ``max_tile_cells`` per tile.

    Starts from the full extent and repeatedly halves the widest axis —
    keeping tiles as chunky (seam-light) as the budget allows while
    staying deterministic.
    """
    cap = max(int(max_tile_cells), 1)
    widths = [limit + 1 for limit in space.max_coords]
    while int(np.prod(widths, dtype=np.int64)) > cap:
        axis = max(range(len(widths)), key=lambda a: widths[a])
        if widths[axis] == 1:
            break
        widths[axis] = max(widths[axis] // 2, 1)
    return tuple(widths)


# ---------------------------------------------------------------------------
# Prefix passes


def prefix_combine(
    tensor: np.ndarray, aggregate: OSPAggregate
) -> np.ndarray:
    """Turn a cell tensor into a *new* block tensor.

    Applies one cumulative combine per grid axis (``np.cumsum`` for
    COUNT/SUM and both components of AVG's (sum, count) pair,
    ``np.maximum/minimum.accumulate`` for MAX/MIN). User-defined OSP
    aggregates fall back to an object array folded with
    ``aggregate.combine`` in the serial operand order; the result is
    then an object array of :data:`AggState` tuples.

    The input tensor is never written: callers may hand in shared
    (cached, read-only) tensors and keep using them afterwards.
    """
    ops = _vector_ops(aggregate)
    if ops is None:
        return _generic_prefix_combine(tensor, aggregate)
    accumulate, _ = ops
    blocks = np.array(tensor, dtype=np.float64, copy=True)
    for axis in range(blocks.ndim - 1):
        accumulate(blocks, axis)
    return blocks


def tile_prefix_combine(
    tensor: np.ndarray,
    aggregate: OSPAggregate,
    carries: Optional[Carries] = None,
) -> tuple[np.ndarray, Carries]:
    """Prefix passes over one tile, stitched to its neighbours.

    ``carries[a]`` is the stage-``a+1`` seam slab of the tile one step
    down along axis ``a`` (shape: this tile's cross-section orthogonal
    to ``a``). Before the cumulative pass along ``a``, the carry is
    folded into the tile's first slab — for the vectorized aggregates
    via the same commutative IEEE op the accumulate uses, for generic
    aggregates via ``combine(current, accumulated)`` — which reproduces
    the full-grid association chain exactly, so results are bit-
    identical to :func:`prefix_combine` over the whole grid.

    Returns ``(blocks, seams)``: the tile's block tensor and, per axis,
    the seam slab captured right after that axis' pass (i.e. the carry
    the next tile up along that axis needs). The input tensor and the
    carry slabs are never written.
    """
    carries = carries or {}
    ops = _vector_ops(aggregate)
    if ops is None:
        return _generic_tile_prefix_combine(tensor, aggregate, carries)
    accumulate, merge = ops
    work = np.array(tensor, dtype=np.float64, copy=True)
    seams: Carries = {}
    for axis in range(work.ndim - 1):
        carry = carries.get(axis)
        if carry is not None:
            first = work[(slice(None),) * axis + (0,)]
            merge(first, carry, out=first)
        accumulate(work, axis)
        seams[axis] = work[(slice(None),) * axis + (-1,)].copy()
    return work, seams


def _vector_ops(aggregate: OSPAggregate):
    """(in-place accumulate, binary merge ufunc) for built-in aggregates.

    None for aggregates without a commutative vectorized form — they
    take the generic object-array fold.
    """
    if isinstance(aggregate, (CountAggregate, SumAggregate, AvgAggregate)):
        return (lambda a, axis: np.cumsum(a, axis=axis, out=a), np.add)
    if isinstance(aggregate, MaxAggregate):
        return (
            lambda a, axis: np.maximum.accumulate(a, axis=axis, out=a),
            np.maximum,
        )
    if isinstance(aggregate, MinAggregate):
        return (
            lambda a, axis: np.minimum.accumulate(a, axis=axis, out=a),
            np.minimum,
        )
    return None


def _to_object_states(tensor: np.ndarray) -> np.ndarray:
    """Cell tensor -> object array of AggState tuples (always a copy)."""
    if tensor.dtype == object:
        return tensor.copy()
    shape = tensor.shape[:-1]
    states = np.empty(shape, dtype=object)
    for index in np.ndindex(shape):
        states[index] = tuple(float(value) for value in tensor[index])
    return states


def _generic_prefix_combine(
    tensor: np.ndarray, aggregate: OSPAggregate
) -> np.ndarray:
    """Python fold for aggregates without a vectorized accumulate.

    ``combine(line[k], line[k-1])`` matches the serial recurrence's
    ``combine(states[index - 1], previous)`` operand order exactly, so
    no commutativity is assumed of the user's combine function.
    """
    states = _to_object_states(tensor)
    for axis in range(states.ndim):
        length = states.shape[axis]
        if length <= 1:
            continue
        rest = states.shape[:axis] + states.shape[axis + 1:]
        for index in np.ndindex(rest):
            line = states[index[:axis] + (slice(None),) + index[axis:]]
            for k in range(1, length):
                line[k] = aggregate.combine(line[k], line[k - 1])
    return states


def _generic_tile_prefix_combine(
    tensor: np.ndarray, aggregate: OSPAggregate, carries: Carries
) -> tuple[np.ndarray, Carries]:
    """Tile fold for user-defined aggregates, serial operand order.

    The carry enters each line as ``combine(line[0], carry)`` — exactly
    the serial recurrence applied at the seam — and seams are captured
    as object arrays of the (immutable) state tuples, so later passes
    rebinding line elements cannot corrupt captured seams.
    """
    states = _to_object_states(tensor)
    seams: Carries = {}
    for axis in range(states.ndim):
        length = states.shape[axis]
        rest = states.shape[:axis] + states.shape[axis + 1:]
        carry = carries.get(axis)
        for index in np.ndindex(rest):
            line = states[index[:axis] + (slice(None),) + index[axis:]]
            if carry is not None:
                line[0] = aggregate.combine(line[0], carry[index])
            for k in range(1, length):
                line[k] = aggregate.combine(line[k], line[k - 1])
        seam = np.empty(rest, dtype=object)
        for index in np.ndindex(rest):
            seam[index] = states[index[:axis] + (length - 1,) + index[axis:]]
        seams[axis] = seam
    return states, seams


__all__ = [
    "GridExplorer",
    "ProcessTileScheduler",
    "TiledGridExplorer",
    "TileScheduler",
    "prefix_combine",
    "shutdown_process_pools",
    "tile_prefix_combine",
    "tile_shape_for",
]
