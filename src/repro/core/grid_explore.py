"""Materialized Explore: whole-grid aggregation + prefix combine.

The incremental Explore (:mod:`repro.core.explore`) pays one backend
round trip per visited cell. For dense searches the entire cell tensor
can be computed in a *single* backend pass
(:meth:`~repro.engine.backends.EvaluationLayer.execute_grid`), after
which the Eq. 17 recurrence

    O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1})

collapses into d axis-wise cumulative-combine passes over the tensor:
pass ``i`` replaces each line along axis ``i`` with its running
combine, turning cell states into block (full-query) states. Every
later grid query is then an O(1) in-memory lookup.

Bit-identity with the serial :class:`~repro.core.explore.Explorer`:
unrolled along one axis the recurrence is a left fold
``combine(current, accumulated)``; ``np.cumsum`` /
``np.maximum.accumulate`` compute the same fold with the operands
commuted (``accumulated + current``), and IEEE addition, min and max
are commutative — so every intermediate value is identical bit for
bit. User-defined OSP aggregates make no commutativity promise, so
they take a generic Python fold that preserves the serial operand
order exactly.

See ``docs/EXPLORE_MODES.md`` for the incremental-vs-materialized
contract and when the driver picks this path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregates import (
    AggState,
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    OSPAggregate,
    SumAggregate,
)
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer, PreparedQuery

Coords = tuple[int, ...]


class GridExplorer:
    """Drop-in Explore engine over a materialized cell grid.

    Exposes the same ``compute_aggregate`` / ``block_state`` /
    ``prime_cells`` / counter interface as
    :class:`~repro.core.explore.Explorer`, so the ACQUIRE driver, its
    budget accounting and the repartitioning step work unchanged.

    The grid is materialized lazily on first access; ``cells_executed``
    then equals the full grid size (every cell was computed exactly
    once, in one pass), and ``cells_skipped`` stays 0 — the bitmap
    index is pointless here because emptiness falls out of the same
    pass.
    """

    def __init__(
        self,
        layer: EvaluationLayer,
        prepared: PreparedQuery,
        space: RefinedSpace,
        aggregate: OSPAggregate,
    ) -> None:
        self.layer = layer
        self.prepared = prepared
        self.space = space
        self.aggregate = aggregate
        self.cells_executed = 0
        self.cells_skipped = 0
        self._blocks: np.ndarray | None = None

    # -- Explorer interface --------------------------------------------
    def compute_aggregate(self, coords: Sequence[int]) -> float:
        """Finalized aggregate value of the grid query at ``coords``."""
        return self.aggregate.finalize(self.block_state(coords))

    def block_state(self, coords: Sequence[int]) -> AggState:
        """Aggregate state of the full query at ``coords`` (``O_{d+1}``)."""
        blocks = self._materialized()
        key = tuple(int(coord) for coord in coords)
        if blocks.dtype == object:
            return blocks[key]
        return tuple(float(value) for value in blocks[key])

    def prime_cells(self, coords_list: Sequence[Sequence[int]]) -> int:
        """No-op: the whole grid is (or will be) materialized at once."""
        return 0

    # -- materialization -----------------------------------------------
    def _materialized(self) -> np.ndarray:
        if self._blocks is None:
            tensor = self.layer.execute_grid(self.prepared, self.space)
            self.cells_executed = int(
                np.prod(tensor.shape[:-1], dtype=np.int64)
            )
            self._blocks = prefix_combine(tensor, self.aggregate)
        return self._blocks


def prefix_combine(
    tensor: np.ndarray, aggregate: OSPAggregate
) -> np.ndarray:
    """Turn a cell tensor into a block tensor, in place where possible.

    Applies one cumulative combine per grid axis (``np.cumsum`` for
    COUNT/SUM and both components of AVG's (sum, count) pair,
    ``np.maximum/minimum.accumulate`` for MAX/MIN). User-defined OSP
    aggregates fall back to an object array folded with
    ``aggregate.combine`` in the serial operand order; the result is
    then an object array of :data:`AggState` tuples.
    """
    axes = range(tensor.ndim - 1)
    if isinstance(aggregate, (CountAggregate, SumAggregate, AvgAggregate)):
        for axis in axes:
            np.cumsum(tensor, axis=axis, out=tensor)
        return tensor
    if isinstance(aggregate, MaxAggregate):
        for axis in axes:
            np.maximum.accumulate(tensor, axis=axis, out=tensor)
        return tensor
    if isinstance(aggregate, MinAggregate):
        for axis in axes:
            np.minimum.accumulate(tensor, axis=axis, out=tensor)
        return tensor
    return _generic_prefix_combine(tensor, aggregate)


def _generic_prefix_combine(
    tensor: np.ndarray, aggregate: OSPAggregate
) -> np.ndarray:
    """Python fold for aggregates without a vectorized accumulate.

    ``combine(line[k], line[k-1])`` matches the serial recurrence's
    ``combine(states[index - 1], previous)`` operand order exactly, so
    no commutativity is assumed of the user's combine function.
    """
    shape = tensor.shape[:-1]
    states = np.empty(shape, dtype=object)
    for index in np.ndindex(shape):
        states[index] = tuple(float(value) for value in tensor[index])
    for axis in range(states.ndim):
        length = states.shape[axis]
        if length <= 1:
            continue
        rest = states.shape[:axis] + states.shape[axis + 1:]
        for index in np.ndindex(rest):
            line = states[index[:axis] + (slice(None),) + index[axis:]]
            for k in range(1, length):
                line[k] = aggregate.combine(line[k], line[k - 1])
    return states


__all__ = ["GridExplorer", "prefix_combine"]
