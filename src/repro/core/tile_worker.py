"""Process-tier tile workers: picklable backend recipes + shm plumbing.

The sharded tile pipeline's thread tier (``TileScheduler``) overlaps
``execute_grid_tile`` fetches only for backends that release the GIL;
the numpy memory backend does not, so ``BENCH_parallel.json`` showed
memory/w4 ~= memory/w1. This module is the escape hatch: the
``ProcessTileScheduler`` in :mod:`repro.core.grid_explore` dispatches
fetches to a persistent ``multiprocessing`` pool whose workers are
initialized once from a :class:`BackendSpec` — a picklable recipe that
rebuilds the evaluation layer and its prepared state from serializable
parts (tables as plain column arrays, an optional sqlite snapshot,
constructor keyword arguments).

Tile tensors come home through ``multiprocessing.shared_memory``
blocks: the parent creates the block (it knows the tile's shape and
the aggregate's state arity up front), the worker attaches, fills, and
closes it, and the parent stitches straight out of the mapped buffer —
zero-copy on the read side — before closing and unlinking. Because a
tile fetch is a pure function of (data, geometry) and stitching stays
serial in lex order on the parent, answers are bit-identical to the
serial explorer at any worker count, exactly as in the thread tier.

Shared-memory hygiene (see ``docs/PARALLELISM.md``): on Python < 3.13,
``SharedMemory`` registers the block with the ``resource_tracker``
even on *attach* (bpo-39959), so a worker that merely attached would
later have the tracker unlink a block it never owned — or warn about a
"leak" at exit. :func:`attach_shm` therefore unregisters the block
right after attaching; the parent, as the owner, keeps its
registration and always pairs ``close()`` with ``unlink()``.
"""

from __future__ import annotations

import importlib
import io
import pickle
import zlib
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import EngineError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.query import Query
    from repro.core.refined_space import RefinedSpace
    from repro.engine.backends import EvaluationLayer, ExecutionStats


# ----------------------------------------------------------------------
# picklable backend recipe
# ----------------------------------------------------------------------


TableColumns = Dict[str, Dict[str, np.ndarray]]


def database_tables(database: Any) -> TableColumns:
    """Plain column arrays for every table — the picklable image of a
    :class:`~repro.engine.catalog.Database`."""
    return {
        table.name: {
            name: table.column(name)
            for name in table.schema.column_names
        }
        for table in database
    }


@dataclass(frozen=True)
class BackendSpec:
    """Picklable recipe rebuilding a backend + prepared state in a
    worker process.

    ``factory`` is a ``"module:ClassName"`` reference resolved at
    worker start-up; ``tables`` are the catalog's column arrays;
    ``kwargs`` the constructor keywords beyond the database. The
    optional ``sqlite_snapshot`` carries a serialized sqlite image so
    workers skip the CREATE TABLE + INSERT reload (see
    ``SQLiteBackend.restore_snapshot``). Specs are produced by
    :meth:`repro.engine.backends.EvaluationLayer.backend_spec`; a
    backend that cannot be rebuilt from picklable parts returns None
    there and the tiled Explore path stays on the thread tier.
    """

    factory: str
    tables: TableColumns
    kwargs: Dict[str, Any]
    query: "Query"
    dim_caps: Tuple[float, ...]
    database_name: str = "db"
    sqlite_snapshot: Optional[bytes] = field(default=None, repr=False)

    def build_database(self) -> Any:
        from repro.engine.catalog import Database

        database = Database(self.database_name)
        for name, columns in self.tables.items():
            database.create_table(name, columns)
        return database

    def build_layer(self) -> "EvaluationLayer":
        """Construct the backend this spec describes (worker side)."""
        module_name, _, class_name = self.factory.partition(":")
        if not module_name or not class_name:
            raise EngineError(f"malformed backend factory {self.factory!r}")
        module = importlib.import_module(module_name)
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise EngineError(
                f"backend factory {self.factory!r} does not resolve"
            ) from None
        layer = cls(self.build_database(), **self.kwargs)
        if self.sqlite_snapshot is not None:
            restore = getattr(layer, "restore_snapshot", None)
            if restore is not None:
                restore(self.sqlite_snapshot, tuple(self.tables))
        return layer

    def digest(self) -> str:
        """Stable content digest keying the process-pool registry.

        Two layers over the same data, query, and construction
        arguments share one worker pool (pickle is deterministic for
        the plain containers and ndarrays a spec holds).
        """
        buffer = io.BytesIO()
        pickle.dump(
            (
                self.factory,
                self.kwargs,
                sorted(self.tables),
                self.query,
                self.dim_caps,
                self.database_name,
                self.sqlite_snapshot is not None,
            ),
            buffer,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        checksum = zlib.crc32(buffer.getvalue())
        for columns in self.tables.values():
            for name in sorted(columns):
                checksum = zlib.crc32(
                    np.ascontiguousarray(columns[name]).tobytes(),
                    checksum,
                )
        return f"{self.factory}:{checksum:08x}"


# ----------------------------------------------------------------------
# shared-memory lifecycle helpers
# ----------------------------------------------------------------------


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block *without* adopting it.

    On Python < 3.13 attaching registers the block with the
    ``resource_tracker`` as if it were owned here (bpo-39959). Pool
    workers inherit the *parent's* tracker process, so that register is
    a harmless set-add dedupe of the parent's own registration — it
    must NOT be undone with ``unregister``, which would strip the
    parent's entry and desynchronize the shared tracker (the parent's
    later ``unlink()`` would hit a tracker ``KeyError``). Python 3.13+
    exposes ``track=False`` to skip the registration outright; older
    interpreters attach normally and rely on the dedupe.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def shm_tensor(
    block: shared_memory.SharedMemory, shape: Tuple[int, ...]
) -> np.ndarray:
    """Float64 ndarray view over a shared-memory block's buffer."""
    return np.ndarray(shape, dtype=np.float64, buffer=block.buf)


# ----------------------------------------------------------------------
# worker-side entry points
# ----------------------------------------------------------------------

#: Worker-process state, filled once per pool by initialize_worker.
_STATE: Dict[str, Any] = {}


def initialize_worker(spec: BackendSpec) -> None:
    """Pool initializer: rebuild the backend and prepare the query.

    Runs once per worker process; every subsequent :func:`fetch_tile`
    reuses the layer and prepared state built here.
    """
    layer = spec.build_layer()
    prepared = layer.prepare(spec.query, list(spec.dim_caps))
    _STATE["layer"] = layer
    _STATE["prepared"] = prepared


def warm_worker() -> bool:
    """Barrier task: returns once this worker's initializer has run.

    The pool registry submits one of these per worker right after
    constructing a pool, so process spawn + backend rebuild cost is
    paid (and measured as ``process_spawn_s``) before the first real
    tile batch — keeping the per-tile IPC estimate clean.
    """
    return "layer" in _STATE


def fetch_tile(
    space: "RefinedSpace",
    lo: Tuple[int, ...],
    hi: Tuple[int, ...],
    shm_name: str,
    shape: Tuple[int, ...],
) -> "ExecutionStats":
    """Fetch one tile into the named shared-memory block.

    Returns the worker layer's :meth:`ExecutionStats.since` delta for
    this fetch; the parent folds it into its own layer via
    ``merge_stats`` so ``cells_executed``-style accounting matches the
    thread tier exactly.
    """
    layer: "EvaluationLayer" = _STATE["layer"]
    prepared = _STATE["prepared"]
    before = layer.stats.snapshot()
    tensor = layer.execute_grid_tile(prepared, space, lo, hi)
    delta = layer.stats.since(before)
    if tuple(tensor.shape) != tuple(shape):
        raise EngineError(
            f"tile shape {tensor.shape} != reserved shm shape {shape}"
        )
    block = attach_shm(shm_name)
    try:
        shm_tensor(block, tuple(shape))[...] = tensor
    finally:
        block.close()
    return delta


__all__ = [
    "BackendSpec",
    "attach_shm",
    "database_tables",
    "fetch_tile",
    "initialize_worker",
    "shm_tensor",
    "warm_worker",
]
