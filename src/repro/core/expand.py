"""Phase I — Expand (paper section 4, Algorithms 1 and 2).

The Expand phase generates grid queries in order of non-decreasing
QScore, layer by layer, so that (Theorem 2) a query with QScore ``k``
is only investigated after every query with smaller QScore, and
(Theorem 3) every query is generated after all queries it contains.
The Explore phase's incremental aggregate computation depends on that
containment order.

Two traversals are provided:

* :class:`LpBestFirstTraversal` — Algorithm 1 generalized: a best-first
  search keyed by ``(QScore, sum(coords), coords)``. For the default L1
  norm with unit weights this degenerates to the paper's plain
  breadth-first search; the extra key components guarantee containment
  order for *any* monotone norm, including weighted norms and L-inf
  (where two nested queries can share a QScore).
* :class:`LInfLayerTraversal` — Algorithm 2: explicit enumeration of
  the L-shaped layers of the L-infinity norm. Provided for fidelity and
  tested equivalent (as a set, layer by layer) to the best-first
  traversal under the L-inf norm.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from repro.core.refined_space import RefinedSpace
from repro.core.scoring import LInfNorm
from repro.exceptions import SearchError

Coords = tuple[int, ...]

#: Decimal places used when bucketing QScores into layers. Shared with
#: the driver so layer grouping and layer-boundary checks agree.
LAYER_DECIMALS = 9


class Traversal:
    """Iterator protocol over grid queries in non-decreasing QScore."""

    space: RefinedSpace

    def __iter__(self) -> Iterator[Coords]:
        raise NotImplementedError

    def scored(self) -> Iterator[tuple[Coords, float]]:
        """The coordinate stream paired with each point's QScore.

        Scores each grid point exactly once; traversals that already
        compute QScores internally (the best-first heap) override this
        to reuse them, so consumers never trigger a second
        ``space.qscore`` evaluation per point.
        """
        space = self.space
        for coords in self:
            yield coords, space.qscore(coords)

    def layers_scored(self) -> Iterator[list[tuple[Coords, float]]]:
        """Bulk layer generator: the scored stream grouped into maximal
        runs of equal QScore (rounded to ``LAYER_DECIMALS``).

        Concatenating the layers reproduces :meth:`scored` exactly, so
        a driver consuming layers visits the same queries in the same
        order. Cells within one layer never depend on each other's
        *cell* aggregates (the Eq. 17 recurrence reads stored states of
        strictly contained queries only when combining, never when
        executing a cell), which is what makes a layer a safe unit of
        batched execution.
        """
        batch: list[tuple[Coords, float]] = []
        key = 0.0
        for coords, qscore in self.scored():
            coords_key = round(qscore, LAYER_DECIMALS)
            if batch and coords_key != key:
                yield batch
                batch = []
            key = coords_key
            batch.append((coords, qscore))
        if batch:
            yield batch

    def layers(self) -> Iterator[list[Coords]]:
        """:meth:`layers_scored` with the QScores stripped."""
        for layer in self.layers_scored():
            yield [coords for coords, _ in layer]


class LpBestFirstTraversal(Traversal):
    """Best-first expansion of the refined-space grid (Algorithm 1).

    Every popped query pushes its d successors (one coordinate
    incremented by one step), deduplicated exactly like the paper's
    ``queryQue.Contains`` check. The priority key makes the stream
    non-decreasing in QScore and consistent with containment:
    ``u`` strictly contained in ``v`` implies ``QScore(u) <= QScore(v)``
    and ``sum(u) < sum(v)``, so ``u`` pops first even on QScore ties.
    """

    def __init__(self, space: RefinedSpace) -> None:
        self.space = space

    def __iter__(self) -> Iterator[Coords]:
        for coords, _ in self.scored():
            yield coords

    def scored(self) -> Iterator[tuple[Coords, float]]:
        """Native scored stream: QScores come straight off the heap
        keys, so each point is scored once — at push time."""
        space = self.space
        origin = space.origin
        heap: list[tuple[float, int, Coords]] = [
            (space.qscore(origin), 0, origin)
        ]
        queued: set[Coords] = {origin}
        while heap:
            qscore, total, coords = heapq.heappop(heap)
            yield coords, qscore
            for dim in range(space.d):
                if coords[dim] >= space.max_coords[dim]:
                    continue
                successor = coords[:dim] + (coords[dim] + 1,) + coords[dim + 1 :]
                if successor in queued:
                    continue
                queued.add(successor)
                heapq.heappush(
                    heap,
                    (space.qscore(successor), total + 1, successor),
                )


class LInfLayerTraversal(Traversal):
    """Layer-wise enumeration for the L-infinity norm (Algorithm 2).

    Layer ``r`` holds every grid query whose maximum coordinate equals
    ``r``; layers are L-shaped shells around the origin. Within a
    layer, queries are produced class by class (class ``i`` pins
    dimension ``i`` at ``r`` with earlier dimensions <= r and later
    dimensions <= r-1, a disjoint and complete cover), in
    lexicographic order — which preserves containment order.
    """

    def __init__(self, space: RefinedSpace) -> None:
        if not isinstance(space.norm, LInfNorm):
            raise SearchError(
                "LInfLayerTraversal requires the L-infinity norm; "
                f"got {space.norm!r}"
            )
        self.space = space

    def __iter__(self) -> Iterator[Coords]:
        space = self.space
        max_layer = max(space.max_coords) if space.max_coords else 0
        yield space.origin
        for layer in range(1, max_layer + 1):
            yield from self._layer(layer)

    def _layer(self, layer: int) -> Iterator[Coords]:
        """All in-bounds coordinates whose maximum equals ``layer``."""
        space = self.space
        for pinned in range(space.d):
            if space.max_coords[pinned] < layer:
                continue
            axis_ranges = []
            feasible = True
            for dim in range(space.d):
                if dim == pinned:
                    axis_ranges.append((layer,))
                    continue
                cap = layer if dim < pinned else layer - 1
                cap = min(cap, space.max_coords[dim])
                if cap < 0:
                    feasible = False
                    break
                axis_ranges.append(tuple(range(cap + 1)))
            if not feasible:
                continue
            for coords in itertools.product(*axis_ranges):
                yield coords


def make_traversal(space: RefinedSpace, kind: str = "auto") -> Traversal:
    """Pick a traversal implementation.

    ``auto`` uses the layer enumerator for the L-infinity norm and the
    best-first search otherwise; ``lp``/``linf`` force a choice.
    """
    if kind == "lp":
        return LpBestFirstTraversal(space)
    if kind == "linf":
        return LInfLayerTraversal(space)
    if kind == "auto":
        if isinstance(space.norm, LInfNorm):
            return LInfLayerTraversal(space)
        return LpBestFirstTraversal(space)
    raise SearchError(f"unknown traversal kind: {kind!r}")
