"""Phase II — Explore: incremental aggregate computation (paper section 5).

Every grid query ``Q'`` at coordinates ``u = (u_1 .. u_d)`` is
decomposed into ``d + 1`` sub-queries sharing ``u`` as their upper
corner (Equations 5-8): the *cell* (unit hyper-cube), the *pillar*,
the *wall*, ... up to the *block* (the whole query). Their aggregates
satisfy the recurrence (Equation 17)

    O_i(u) = O_{i-1}(u) + O_i(u_1, ..., u_{i-1} - 1, ..., u_d)

so once the cell aggregate is known, the block aggregate follows in d
constant-time combine steps from sub-aggregates stored at previously
visited grid points (Theorem 3 guarantees those points were visited
first). Only the cell is ever executed against the evaluation layer,
and every cell is executed at most once — the paper's work-sharing
guarantee.

Boundary handling: when ``u_{i-1} == 0`` the recurrence's second term
addresses coordinate ``-1`` — an empty region — so the aggregate
identity is used (equivalently ``O_i(u) = O_{i-1}(u)``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.aggregates import AggState, OSPAggregate
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer, PreparedQuery
from repro.exceptions import SearchError

Coords = tuple[int, ...]


class SubAggregateStore:
    """Stores, per visited grid query, its ``d + 1`` sub-aggregates.

    Index ``i`` of a stored list is the state of sub-query ``O_{i+1}``
    (index 0 = cell, index d = block). "The corresponding result tuples
    can either be stored in main memory or paged to disk" — we store
    only the aggregate states, as the paper's cost model assumes.
    """

    def __init__(self) -> None:
        self._store: dict[Coords, list[AggState]] = {}

    def put(self, coords: Coords, states: list[AggState]) -> None:
        self._store[coords] = states

    def get(self, coords: Coords) -> list[AggState]:
        try:
            return self._store[coords]
        except KeyError:
            raise SearchError(
                f"sub-aggregates for {coords} requested before computation; "
                "traversal violated containment order (Theorem 3)"
            ) from None

    def __contains__(self, coords: object) -> bool:
        return coords in self._store

    def __len__(self) -> int:
        return len(self._store)


class Explorer:
    """Computes grid-query aggregates incrementally (Algorithm 3).

    Args:
        layer: evaluation layer that executes cell queries.
        prepared: backend-prepared state for the query.
        space: the refined space grid.
        aggregate: the constraint's OSP aggregate.
        bitmap_index: optional empty-cell index (paper section 7.4);
            when it proves a cell empty, the identity state is used and
            no query is issued.
        parallelism: worker count forwarded to
            :meth:`~repro.engine.backends.EvaluationLayer.execute_cells`
            when :meth:`prime_cells` batches a layer; backends with a
            native bulk path ignore it.
    """

    def __init__(
        self,
        layer: EvaluationLayer,
        prepared: PreparedQuery,
        space: RefinedSpace,
        aggregate: OSPAggregate,
        bitmap_index: Optional["SupportsEmptyCheck"] = None,
        store: Optional[SubAggregateStore] = None,
        parallelism: int = 1,
    ) -> None:
        self.layer = layer
        self.prepared = prepared
        self.space = space
        self.aggregate = aggregate
        self.bitmap_index = bitmap_index
        # Any object with the SubAggregateStore interface works — e.g.
        # repro.core.store.PagedSubAggregateStore for disk paging.
        self.store = store if store is not None else SubAggregateStore()
        self.parallelism = parallelism
        self.cells_executed = 0
        self.cells_skipped = 0
        # Cell states batch-executed ahead of examination, consumed
        # (popped) by _cell_state so every cell still runs exactly once.
        self._primed: dict[Coords, AggState] = {}

    def compute_aggregate(self, coords: Sequence[int]) -> float:
        """Finalized aggregate value of the grid query at ``coords``."""
        return self.aggregate.finalize(self.block_state(coords))

    def block_state(self, coords: Sequence[int]) -> AggState:
        """Aggregate state of the full query at ``coords`` (``O_{d+1}``)."""
        coords = tuple(int(coord) for coord in coords)
        if coords in self.store:
            return self.store.get(coords)[-1]
        states = self._compute_states(coords)
        self.store.put(coords, states)
        return states[-1]

    def _compute_states(self, coords: Coords) -> list[AggState]:
        """Algorithm 3: cell execution plus d combine steps."""
        aggregate = self.aggregate
        states: list[AggState] = [self._cell_state(coords)]
        for index in range(1, self.space.d + 1):
            # states[index] is O_{index+1}(u); the recurrence needs
            # O_{index+1} at the previous neighbour along dim index-1.
            dim = index - 1
            if coords[dim] == 0:
                previous: AggState = aggregate.identity()
            else:
                neighbour = (
                    coords[:dim] + (coords[dim] - 1,) + coords[dim + 1 :]
                )
                previous = self.store.get(neighbour)[index]
            states.append(aggregate.combine(states[index - 1], previous))
        return states

    def prime_cells(self, coords_list: Sequence[Sequence[int]]) -> int:
        """Batch-execute a layer's cell queries ahead of examination.

        Filters the coordinates exactly as serial examination would —
        already-computed queries and bitmap-proven-empty cells issue no
        query — then executes the rest through the evaluation layer's
        batched path and parks the states for :meth:`_cell_state` to
        consume. Returns the number of cells executed (counted here,
        not again at consumption).
        """
        pending: list[Coords] = []
        for raw in coords_list:
            coords = tuple(int(coord) for coord in raw)
            if coords in self.store or coords in self._primed:
                continue
            if self.bitmap_index is not None and self.bitmap_index.is_empty(
                coords
            ):
                continue
            pending.append(coords)
        if not pending:
            return 0
        states = None
        # Cross-query fusion (docs/SERVICE.md): a service-installed
        # coalescer may serve this batch from a merged pass shared
        # with other in-flight requests. Per-cell states are
        # independent of batch composition, so the result is
        # bit-identical to executing the batch alone; None falls back
        # to the direct path.
        coalescer = getattr(self.layer, "pass_coalescer", None)
        if coalescer is not None:
            states = coalescer.fetch_cells(
                self.layer,
                self.prepared,
                self.space,
                pending,
                parallelism=self.parallelism,
            )
        if states is None:
            states = self.layer.execute_cells(
                self.prepared,
                self.space,
                pending,
                parallelism=self.parallelism,
            )
        self._primed.update(zip(pending, states))
        self.cells_executed += len(pending)
        return len(pending)

    def _cell_state(self, coords: Coords) -> AggState:
        if coords in self._primed:
            return self._primed.pop(coords)
        if self.bitmap_index is not None and self.bitmap_index.is_empty(coords):
            self.cells_skipped += 1
            return self.aggregate.identity()
        self.cells_executed += 1
        return self.layer.execute_cell(self.prepared, self.space, coords)


class SupportsEmptyCheck:
    """Protocol for the section 7.4 bitmap index."""

    def is_empty(self, coords: Sequence[int]) -> bool:  # pragma: no cover
        raise NotImplementedError
