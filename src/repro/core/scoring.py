"""Refinement scoring (paper section 2.3, Equations 1-3).

A refined query is represented as a d-dimensional vector of predicate
refinement scores (PScores); the query refinement score (QScore) is a
monotonic function of that vector. The paper uses weighted vector
p-norms with L1 as the default, plus the L-infinity norm whose layers
are L-shaped; all three are provided here, and any object satisfying
:class:`Norm` may replace them.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from repro.core.interval import Interval
from repro.exceptions import QueryModelError


class Norm(Protocol):
    """A monotonic map from PScore vectors to a scalar QScore."""

    def qscore(
        self, pscores: Sequence[float], weights: Sequence[float] | None = None
    ) -> float:
        ...


class LpNorm:
    """Weighted p-norm: ``(sum_i w_i * x_i^p)^(1/p)``.

    ``p=1`` reproduces the paper's default (Equation 3); the weighted
    variant is the ``LWp`` preference mechanism of section 7.1.
    """

    def __init__(self, p: float = 1.0) -> None:
        if p < 1:
            raise QueryModelError(f"p-norm requires p >= 1, got {p}")
        self.p = float(p)

    def qscore(
        self, pscores: Sequence[float], weights: Sequence[float] | None = None
    ) -> float:
        if weights is None:
            weights = [1.0] * len(pscores)
        if len(weights) != len(pscores):
            raise QueryModelError("weights/pscores length mismatch")
        if self.p == 1.0:
            return float(sum(w * abs(x) for w, x in zip(weights, pscores)))
        total = sum(w * abs(x) ** self.p for w, x in zip(weights, pscores))
        return float(total ** (1.0 / self.p))

    def __repr__(self) -> str:
        return f"LpNorm(p={self.p:g})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LpNorm) and other.p == self.p


class LInfNorm:
    """Weighted max norm; query layers are L-shaped (paper Figure 3)."""

    def qscore(
        self, pscores: Sequence[float], weights: Sequence[float] | None = None
    ) -> float:
        if weights is None:
            weights = [1.0] * len(pscores)
        if len(weights) != len(pscores):
            raise QueryModelError("weights/pscores length mismatch")
        if not pscores:
            return 0.0
        return float(max(w * abs(x) for w, x in zip(weights, pscores)))

    def __repr__(self) -> str:
        return "LInfNorm()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LInfNorm)


class ConstraintDistance(Protocol):
    """Combine per-constraint aggregate errors into one distance.

    Multi-constraint ACQs (``CONSTRAINT c1 AND c2 ...``) evaluate every
    constraint at each candidate refinement; the combined distance is
    what the driver compares against ``delta`` and what breaks ties in
    the answer ordering.
    """

    def combine(self, errors: Sequence[float]) -> float:
        ...


class MaxConstraintDistance:
    """Chebyshev combine: the worst per-constraint error.

    ``combine(errors) <= delta`` iff *every* constraint's error is
    within delta — the conjunction semantics of a multi-constraint ACQ
    — which is why this is the default. For a single constraint it is
    the identity.
    """

    def combine(self, errors: Sequence[float]) -> float:
        if not errors:
            return 0.0
        return float(max(errors))

    def __repr__(self) -> str:
        return "MaxConstraintDistance()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MaxConstraintDistance)


class SumConstraintDistance:
    """Additive combine: total violation mass across constraints.

    Unlike :class:`MaxConstraintDistance` this can exceed ``delta``
    even when each individual error is within it, so it expresses a
    stricter joint tolerance. Identity for a single constraint.
    """

    def combine(self, errors: Sequence[float]) -> float:
        return float(sum(errors))

    def __repr__(self) -> str:
        return "SumConstraintDistance()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SumConstraintDistance)


def pscore_interval(
    original: Interval, refined: Interval, denominator: float | None = None
) -> float:
    """PScore between two intervals (paper Equation 1).

    ``(|lo - lo'| + |hi - hi'|) / |hi - lo| * 100``; if the original
    interval is a point, the paper's rule for equality predicates
    applies and the denominator defaults to 100.
    """
    if denominator is None:
        width = original.width
        denominator = width if width > 0 and math.isfinite(width) else 100.0
    if denominator <= 0:
        raise QueryModelError("PScore denominator must be > 0")
    departure = abs(original.lo - refined.lo) + abs(original.hi - refined.hi)
    return departure / denominator * 100.0
