"""Experiment harness regenerating the paper's evaluation (section 8).

One function per figure (:mod:`repro.harness.experiments`), a method
runner that executes ACQUIRE and every baseline through the same
evaluation layer (:mod:`repro.harness.runner`), and plain-text series
reporting (:mod:`repro.harness.report`). ``python -m repro.harness``
runs any experiment from the command line.
"""

from repro.harness.metrics import ExperimentResult, Row
from repro.harness.runner import make_backend, run_acquire, run_method
from repro.harness.experiments import (
    EXPERIMENTS,
    evaluation_layers,
    fig8_aggregate_ratio,
    fig9_dimensionality,
    fig10a_table_size,
    fig10b_refinement_threshold,
    fig10c_cardinality_threshold,
    fig11_aggregate_types,
    skew_distribution,
    table1_capabilities,
)
from repro.harness.report import render_rows, save_result

__all__ = [
    "ExperimentResult",
    "Row",
    "make_backend",
    "run_acquire",
    "run_method",
    "EXPERIMENTS",
    "evaluation_layers",
    "fig8_aggregate_ratio",
    "fig9_dimensionality",
    "fig10a_table_size",
    "fig10b_refinement_threshold",
    "fig10c_cardinality_threshold",
    "fig11_aggregate_types",
    "skew_distribution",
    "table1_capabilities",
    "render_rows",
    "save_result",
]
