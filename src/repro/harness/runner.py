"""Execute one technique on one workload through a shared backend.

The paper implements ACQUIRE *and* every compared technique on top of
the same Postgres instance; here all methods share one evaluation
layer per database (SQLite by default for benchmarks — each probe is a
real SQL query, so baselines pay full join cost per probe while
ACQUIRE's cell queries stay small and indexed, exactly the asymmetry
the paper's numbers reflect).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.baselines import (
    BinSearch,
    HillClimbing,
    MethodRun,
    Skyline,
    TopK,
    TQGen,
)
import logging

from repro.baselines.base import BaselineTechnique
from repro.core.acquire import Acquire, AcquireConfig
from repro.core.query import Query
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis import AnalysisReport

METHOD_NAMES = ("ACQUIRE", "Top-k", "TQGen", "BinSearch")

logger = logging.getLogger(__name__)


def preflight_query(
    layer: EvaluationLayer,
    query: Query,
    config: Optional[AcquireConfig] = None,
) -> Optional["AnalysisReport"]:
    """Statically validate a workload query before a long run.

    Raises :class:`~repro.exceptions.AnalysisError` on ERROR-level
    diagnostics (provably unsatisfiable constraint, nothing to refine)
    so misconfigured experiment sweeps fail in milliseconds instead of
    after hours of sub-queries; warnings are logged and the run
    proceeds. Returns the full analyzer report so callers (the
    experiment sweeps) can surface plan verdicts — e.g. the ACQ5xx
    grid/cache warnings — next to their measurements. Backends without
    a catalog skip the check and return None.
    """
    database = getattr(layer, "database", None)
    if database is None:
        return None
    from repro.analysis import analyze

    report = analyze(query, database, config or AcquireConfig())
    for diagnostic in report.warnings:
        logger.warning(
            "workload %s %s: %s",
            query.name,
            diagnostic.code,
            diagnostic.message,
        )
    report.raise_if_errors()
    return report


def make_backend(database: Database, kind: str = "sqlite") -> EvaluationLayer:
    """Build an evaluation layer ('sqlite' or 'memory')."""
    if kind == "sqlite":
        return SQLiteBackend(database)
    if kind == "memory":
        return MemoryBackend(database)
    raise ReproError(f"unknown backend kind {kind!r}")


def run_acquire(
    layer: EvaluationLayer,
    query: Query,
    config: Optional[AcquireConfig] = None,
) -> MethodRun:
    """Run ACQUIRE and adapt its result to the common MethodRun shape."""
    config = config or AcquireConfig()
    result = Acquire(layer).run(query, config)
    best = result.best
    return MethodRun(
        method="ACQUIRE",
        aggregate_value=best.aggregate_value if best else float("nan"),
        error=best.error if best else float("inf"),
        qscore=best.qscore if best else float("inf"),
        pscores=best.pscores if best else (),
        elapsed_s=result.stats.elapsed_s,
        execution=result.stats.execution,
        satisfied=result.satisfied,
        details={
            "answers": len(result.answers),
            "grid_queries": result.stats.grid_queries_examined,
            "cells": result.stats.cells_executed,
            "original": result.original_value,
            "explore_mode": result.stats.explore_mode,
            "plan_reason": result.stats.plan_reason,
            "estimated_visited": result.stats.estimated_visited,
            "top_k": result.stats.top_k,
            # The certified ranking (qscore per rank) so reports can
            # surface alternatives without re-running the search.
            "top_qscores": [
                answer.qscore for answer in result.top()
            ],
        },
    )


def baseline_for(
    name: str,
    delta: float = 0.05,
    dim_cap_default: float = 400.0,
    **kwargs: object,
) -> BaselineTechnique:
    """Instantiate a baseline by method name."""
    common = dict(delta=delta, dim_cap_default=dim_cap_default)
    common.update(kwargs)
    if name == "Top-k":
        return TopK(**common)  # type: ignore[arg-type]
    if name == "TQGen":
        return TQGen(**common)  # type: ignore[arg-type]
    if name == "BinSearch":
        return BinSearch(**common)  # type: ignore[arg-type]
    if name == "HillClimbing":
        return HillClimbing(**common)  # type: ignore[arg-type]
    if name == "Skyline":
        return Skyline(**common)  # type: ignore[arg-type]
    raise ReproError(f"unknown baseline {name!r}")


def run_method(
    name: str,
    layer: EvaluationLayer,
    query: Query,
    acquire_config: Optional[AcquireConfig] = None,
    baseline_kwargs: Optional[dict] = None,
) -> MethodRun:
    """Dispatch by method name with consistent thresholds.

    The baseline delta/caps default to the ACQUIRE configuration's so
    all methods chase the same tolerance.
    """
    acquire_config = acquire_config or AcquireConfig()
    if name == "ACQUIRE":
        return run_acquire(layer, query, acquire_config)
    kwargs = dict(baseline_kwargs or {})
    technique = baseline_for(
        name,
        delta=kwargs.pop("delta", acquire_config.delta),
        dim_cap_default=kwargs.pop(
            "dim_cap_default", acquire_config.dim_cap_default
        ),
        **kwargs,
    )
    return technique.run(layer, query)
