"""Plain-text rendering of experiment results."""

from __future__ import annotations

import math
import os
from typing import Optional, Sequence

from repro.harness.metrics import ExperimentResult, Row

_COLUMNS = (
    ("x", lambda row: _fmt_x(row)),
    ("method", lambda row: row.method),
    ("time_ms", lambda row: f"{row.time_ms:.1f}"),
    ("error", lambda row: _fmt_float(row.error, 4)),
    ("qscore", lambda row: _fmt_float(row.qscore, 2)),
    ("A_actual", lambda row: _fmt_float(row.aggregate_value, 1)),
    ("queries", lambda row: str(row.queries)),
    ("batches", lambda row: str(row.batches)),
    ("grids", lambda row: str(row.materializations)),
    ("tiles", lambda row: str(row.tiles)),
    ("cache", lambda row: _fmt_cache(row)),
    ("warm", lambda row: _fmt_warm(row)),
    ("explore", lambda row: row.explore_mode or "-"),
    ("topk", lambda row: _fmt_topk(row)),
    ("ok", lambda row: "y" if row.satisfied else "n"),
)


def _fmt_topk(row: Row) -> str:
    """k plus how many ranked alternatives the search certified."""
    if row.top_k <= 1:
        return "-"
    ranked = row.extra.get("top_qscores")
    found = len(ranked) if isinstance(ranked, list) else 0
    return f"{found}/{row.top_k}"


def _fmt_cache(row: Row) -> str:
    if row.cache_hits == 0 and row.cache_misses == 0:
        return "-"
    return f"{row.cache_hits}h/{row.cache_misses}m"


def _fmt_warm(row: Row) -> str:
    if row.persistent_hits == 0 and row.block_hits == 0:
        return "-"
    return f"{row.persistent_hits}p/{row.block_hits}b"


def _fmt_x(row: Row) -> str:
    value = row.x_value
    if isinstance(value, float):
        return f"{row.x_name}={value:g}"
    return f"{row.x_name}={value}"


def _fmt_float(value: float, digits: int) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "nan"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return f"{value:.{digits}f}"


def render_rows(rows: Sequence[Row]) -> str:
    """Aligned text table over the standard metric columns."""
    header = [name for name, _ in _COLUMNS]
    body = [[render(row) for _, render in _COLUMNS] for row in rows]
    widths = [
        max(len(header[index]), *(len(line[index]) for line in body))
        if body
        else len(header[index])
        for index in range(len(header))
    ]
    lines = [
        "  ".join(name.ljust(width) for name, width in zip(header, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for line in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    return "\n".join(lines)


def render_chart(
    result: ExperimentResult,
    metric: str = "time_ms",
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """ASCII bar chart of one metric, grouped by sweep value.

    Bars are scaled to the experiment-wide maximum; with
    ``log_scale`` the bar length is proportional to ``log10(value)``
    (matching the paper's log-scale time axes).
    """
    values = [
        getattr(row, metric)
        for row in result.rows
        if math.isfinite(getattr(row, metric)) and getattr(row, metric) > 0
    ]
    if not values:
        return ""
    top = max(values)
    floor = min(values)

    def bar_length(value: float) -> int:
        if not (math.isfinite(value) and value > 0):
            return 0
        if log_scale and top > floor > 0:
            span = math.log10(top) - math.log10(floor) or 1.0
            fraction = (math.log10(value) - math.log10(floor)) / span
        else:
            fraction = value / top
        return max(int(round(fraction * (width - 1))) + 1, 1)

    method_width = max(len(row.method) for row in result.rows)
    lines = [f"{metric}" + (" (log scale)" if log_scale else "")]
    previous_x = object()
    for row in result.rows:
        label = _fmt_x(row) if row.x_value != previous_x else ""
        previous_x = row.x_value
        value = getattr(row, metric)
        bar = "#" * bar_length(value)
        lines.append(
            f"{label:<16} {row.method:<{method_width}}  "
            f"{bar} {_fmt_float(value, 1)}"
        )
    return "\n".join(lines)


def render_result(result: ExperimentResult) -> str:
    """Full report: title, settings, table, chart, headline ratios."""
    lines = [
        f"== {result.title} ==",
        f"paper: {result.paper_expectation}",
        f"settings: {result.settings}",
        "",
        render_rows(result.rows),
    ]
    chart = render_chart(result)
    if chart and len(result.rows) > 1:
        lines.extend(["", chart])
    summary = summarize(result)
    if summary:
        lines.extend(["", summary])
    return "\n".join(lines)


def summarize(result: ExperimentResult) -> str:
    """Headline geometric-mean ratios against ACQUIRE, when present."""
    methods = result.methods()
    if "ACQUIRE" not in methods:
        return ""
    parts = []
    for method in methods:
        if method == "ACQUIRE":
            continue
        time_ratio = result.speedup("time_ms", method)
        qscore_ratio = result.speedup("qscore", method)
        fragment = f"{method}: "
        bits = []
        if time_ratio is not None:
            bits.append(f"{time_ratio:.1f}x ACQUIRE time")
        if qscore_ratio is not None:
            bits.append(f"{qscore_ratio:.1f}x ACQUIRE refinement")
        if bits:
            parts.append(fragment + ", ".join(bits))
    return ("vs ACQUIRE (geo-mean): " + "; ".join(parts)) if parts else ""


def save_result(
    result: ExperimentResult, directory: Optional[str] = None
) -> str:
    """Write the rendered report (and a raw CSV) under
    ``benchmarks/results/``; returns the text report's path."""
    directory = directory or os.path.join("benchmarks", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_result(result) + "\n")
    save_csv(result, os.path.join(directory, f"{result.name}.csv"))
    return path


def save_csv(result: ExperimentResult, path: str) -> str:
    """Raw per-row series as CSV, for downstream plotting tools."""
    import csv

    fields = (
        "x_name", "x_value", "method", "time_ms", "error", "qscore",
        "aggregate_value", "queries", "rows_scanned", "batches",
        "materializations", "tiles", "cache_hits", "cache_misses",
        "persistent_hits", "block_hits", "cache_bytes",
        "explore_mode", "top_k", "satisfied",
    )
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for row in result.rows:
            writer.writerow([getattr(row, field) for field in fields])
    return path


def save_json(result: ExperimentResult, path: str) -> str:
    """Machine-readable result dump (rows + settings) for CI and
    downstream tooling; see ``benchmarks/smoke.py``."""
    import json
    from dataclasses import asdict

    payload = {
        "name": result.name,
        "title": result.title,
        "paper_expectation": result.paper_expectation,
        "settings": {
            key: repr(value) if not _jsonable(value) else value
            for key, value in result.settings.items()
        },
        "rows": [asdict(row) for row in result.rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=repr)
        handle.write("\n")
    return path


def _jsonable(value: object) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))
