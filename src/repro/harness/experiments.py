"""Per-figure experiment definitions (paper section 8).

Every public function regenerates one table/figure of the paper's
evaluation and returns an :class:`ExperimentResult` whose rows carry
the same metrics the paper plots: execution time, relative aggregate
error, and refinement score.

Scaling note: the paper ran on 1M-tuple TPC-H with a Postgres backend
on 2006-era hardware; defaults here are sized for a single-core CI
machine (tens of thousands of tuples, SQLite backend). Shapes — who
wins, how curves trend — are the reproduction target, not absolute
milliseconds; every default can be scaled up via the function
arguments or the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import math
import os
from dataclasses import replace
from typing import Optional, Sequence

from repro.core.acquire import AcquireConfig
from repro.core.grid_cache import GridTensorCache
from repro.core.plan import PlanCalibration
from repro.core.query import ConstraintOp
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.exceptions import QueryModelError
from repro.harness.metrics import ExperimentResult, Row
from repro.harness.runner import make_backend, preflight_query, run_method
from repro.workloads.generator import build_ratio_workload
from repro.workloads.templates import Q2_JOINS, Q2_TABLES, q2_flex_specs

ALL_METHODS = ("ACQUIRE", "Top-k", "TQGen", "BinSearch")
RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Per-dimension base selectivity of flexible predicates. Low base
#: selectivity with domain-width PScore denominators reproduces the
#: paper's regime of small refinement scores (Figure 8c's 1-6 for
#: ACQUIRE): narrow slivers in dense regions grow fast per unit of
#: percent refinement.
BASE_SELECTIVITY = 0.2


def bench_scale() -> float:
    """Global size multiplier from the environment (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _scaled(rows: int) -> int:
    return max(int(rows * bench_scale()), 200)


def _tpch(scale_rows: int, zipf_z: float = 0.0, seed: int = 7) -> Database:
    return generate_tpch(
        TPCHConfig(
            scale_rows=scale_rows,
            zipf_z=zipf_z,
            seed=seed,
            tables=("supplier", "part", "partsupp"),
        )
    )


def _baseline_kwargs(method: str, tqgen: Optional[dict]) -> dict:
    if method == "TQGen" and tqgen:
        return dict(tqgen)
    return {}


def _run_point(
    rows: list[Row],
    x_name: str,
    x_value: object,
    methods: Sequence[str],
    layer: EvaluationLayer,
    workload,
    config: AcquireConfig,
    tqgen: Optional[dict] = None,
) -> None:
    # Fail a misconfigured sweep in milliseconds, not after a long run.
    report = preflight_query(layer, workload.query, config)
    # Surface the analyzer's plan verdicts (ACQ5xx: grid over the
    # tensor cap, config-keyed cache geometry) next to the
    # measurements, so a benchmark config silently exceeding the cell
    # cap is visible in the saved result rows.
    plan_warnings = (
        sum(
            1
            for diagnostic in report.diagnostics
            if diagnostic.code.startswith("ACQ5")
            and diagnostic.severity.name != "INFO"
        )
        if report is not None
        else 0
    )
    for method in methods:
        run = run_method(
            method,
            layer,
            workload.query,
            acquire_config=config,
            baseline_kwargs=_baseline_kwargs(method, tqgen),
        )
        row = Row.from_run(x_name, x_value, run)
        row.extra.setdefault("target", workload.target)
        row.extra.setdefault("original", workload.original_value)
        row.extra.setdefault("plan_warnings", plan_warnings)
        rows.append(row)


# ----------------------------------------------------------------------
# Figure 8: varying aggregate ratio
# ----------------------------------------------------------------------
def fig8_aggregate_ratio(
    scale_rows: int = 30_000,
    ratios: Sequence[float] = RATIOS,
    methods: Sequence[str] = ALL_METHODS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
    tqgen: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 8: COUNT ACQ on the Q2 join, 3 flexible predicates,
    aggregate ratio swept 0.1-0.9, delta = 0.05."""
    tqgen = tqgen or {"grid_points": 5, "rounds": 4}
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    config = AcquireConfig(gamma=gamma, delta=delta)
    rows: list[Row] = []
    for ratio in ratios:
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(3, selectivity),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"fig8_r{ratio:g}",
        )
        _run_point(
            rows, "ratio", ratio, methods, layer, workload, config, tqgen
        )
    return ExperimentResult(
        name="fig8",
        title="Fig 8: performance vs aggregate ratio (time / error / refinement)",
        paper_expectation=(
            "ACQUIRE time grows as the ratio shrinks; TQGen is slowest "
            "(paper: ~100X over ACQUIRE), BinSearch ~2X slower than "
            "ACQUIRE with erratic error, Top-k ~3.7X slower on average; "
            "ACQUIRE error always <= delta; ACQUIRE refinement scores "
            "2-3X below every baseline."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "backend": backend,
            "gamma": gamma,
            "delta": delta,
            "selectivity": selectivity,
            "tqgen": tqgen,
        },
    )


# ----------------------------------------------------------------------
# Figure 9: varying dimensionality
# ----------------------------------------------------------------------
def fig9_dimensionality(
    scale_rows: int = 6_000,
    dims: Sequence[int] = (1, 2, 3, 4, 5),
    ratio: float = 0.3,
    methods: Sequence[str] = ALL_METHODS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    step: float = 5.0,
    tqgen: Optional[dict] = None,
    batched: bool = False,
    parallelism: int = 1,
) -> ExperimentResult:
    """Figure 9: ratio fixed at 0.3, flexible predicates swept 1-5.

    Two disclosed calibrations keep high-d runs tractable at laptop
    scale (both noted in EXPERIMENTS.md): the grid step is pinned at
    ``step`` for every d instead of the gamma/d rule (which at d=5
    would mean exploring ~10^6 grid cells on our data), and per-
    dimension base selectivity follows a per-d schedule so the original
    query's cardinality stays non-degenerate while the ratio-0.3 target
    remains attainable within a few grid steps at every d.
    """
    tqgen = tqgen or {"grid_points": 4, "rounds": 4}
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    config = AcquireConfig(
        gamma=gamma,
        delta=delta,
        step=step,
        batched=batched,
        parallelism=parallelism,
    )
    # Per-d base selectivity: keeps the original cardinality
    # non-degenerate while the growth to the ratio-0.3 target stays
    # within a few grid steps per dimension at every d.
    selectivities = {1: 0.27, 2: 0.52, 3: 0.55, 4: 0.45, 5: 0.40}
    rows: list[Row] = []
    for d in dims:
        selectivity_d = selectivities.get(d, 0.4)
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(d, selectivity_d),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"fig9_d{d}",
        )
        _run_point(rows, "dims", d, methods, layer, workload, config, tqgen)
    return ExperimentResult(
        name="fig9",
        title="Fig 9: performance vs number of flexible predicates",
        paper_expectation=(
            "TQGen explodes exponentially with d (paper: up to 500X over "
            "ACQUIRE at d=5); ACQUIRE grows far slower; Top-k stays "
            "~flat; BinSearch error is unstable (up to 45%); ACQUIRE "
            "keeps the lowest refinement scores."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratio": ratio,
            "backend": backend,
            "tqgen": tqgen,
            "batched": batched,
            "parallelism": parallelism,
        },
    )


# ----------------------------------------------------------------------
# Figure 10a: varying table size
# ----------------------------------------------------------------------
def fig10a_table_size(
    sizes: Sequence[int] = (1_000, 10_000, 50_000),
    ratio: float = 0.3,
    methods: Sequence[str] = ALL_METHODS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
    tqgen: Optional[dict] = None,
) -> ExperimentResult:
    """Figure 10a: 1K-tuple (sampling-sized) through larger tables."""
    tqgen = tqgen or {"grid_points": 5, "rounds": 4}
    config = AcquireConfig(gamma=gamma, delta=delta)
    rows: list[Row] = []
    for size in sizes:
        database = _tpch(_scaled(size))
        layer = make_backend(database, backend)
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(3, selectivity),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"fig10a_n{size}",
        )
        _run_point(
            rows, "table_size", _scaled(size), methods, layer, workload,
            config, tqgen,
        )
    return ExperimentResult(
        name="fig10a",
        title="Fig 10a: execution time vs table size",
        paper_expectation=(
            "All methods grow ~proportionally with table size; Top-k is "
            "competitive only at the smallest (sample-sized) tables and "
            "degrades fastest as size grows."
        ),
        rows=rows,
        settings={"sizes": [_scaled(s) for s in sizes], "ratio": ratio,
                  "backend": backend},
    )


# ----------------------------------------------------------------------
# Figure 10b/10c: ACQUIRE parameter studies
# ----------------------------------------------------------------------
def fig10b_refinement_threshold(
    scale_rows: int = 20_000,
    gammas: Sequence[float] = (2, 4, 6, 8, 10, 12),
    ratio: float = 0.3,
    backend: str = "sqlite",
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
) -> ExperimentResult:
    """Figure 10b: ACQUIRE execution time vs refinement threshold gamma."""
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(3, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="fig10b",
    )
    rows: list[Row] = []
    for gamma in gammas:
        config = AcquireConfig(gamma=float(gamma), delta=delta)
        _run_point(rows, "gamma", gamma, ("ACQUIRE",), layer, workload, config)
    return ExperimentResult(
        name="fig10b",
        title="Fig 10b: ACQUIRE time vs refinement threshold",
        paper_expectation=(
            "A stringent (small) refinement threshold means a finer grid "
            "and proportionally more explored queries, hence more time."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "ratio": ratio,
                  "delta": delta},
    )


def fig10c_cardinality_threshold(
    scale_rows: int = 20_000,
    deltas: Sequence[float] = (0.0001, 0.001, 0.01, 0.1),
    ratio: float = 0.3,
    backend: str = "sqlite",
    gamma: float = 10.0,
    selectivity: float = 0.5,
) -> ExperimentResult:
    """Figure 10c: ACQUIRE execution time vs cardinality threshold delta.

    Base selectivity is raised to 0.5 per dimension so the original
    cardinality is large enough that the strictest threshold (1e-4 of
    the target) is attainable with integer counts — the regime the
    paper's 1M-tuple runs were in."""
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(3, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="fig10c",
    )
    rows: list[Row] = []
    for delta in deltas:
        config = AcquireConfig(gamma=gamma, delta=float(delta))
        _run_point(rows, "delta", delta, ("ACQUIRE",), layer, workload, config)
    return ExperimentResult(
        name="fig10c",
        title="Fig 10c: ACQUIRE time vs cardinality threshold",
        paper_expectation=(
            "Tighter cardinality thresholds require exploring more "
            "queries (and repartitioning more cells), increasing time "
            "proportionally."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "ratio": ratio,
                  "gamma": gamma},
    )


# ----------------------------------------------------------------------
# Figure 11: aggregate types
# ----------------------------------------------------------------------
def fig11_aggregate_types(
    scale_rows: int = 20_000,
    ratios: Sequence[float] = RATIOS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
) -> ExperimentResult:
    """Figure 11: ACQUIRE with SUM, COUNT and MAX constraints.

    MIN is omitted exactly as in the paper (MIN(x) = -MAX(-x)). The
    SUM constraint mirrors Q2' (SUM(ps_availqty) >=); MAX reads
    p_retailprice, which co-moves with a flexible predicate so the
    ratio sweep is meaningful. MAX targets beyond the attribute domain
    are unattainable at any refinement; those points are recorded with
    ``attainable=False`` instead of burning time proving it.
    """
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    config = AcquireConfig(gamma=gamma, delta=delta)
    aggregates = (
        ("COUNT", None, ConstraintOp.EQ),
        ("SUM", "partsupp.ps_availqty", ConstraintOp.GE),
        ("MAX", "part.p_retailprice", ConstraintOp.GE),
    )
    max_domain = database.column_stats("part", "p_retailprice").max_value
    rows: list[Row] = []
    for agg_name, attr, op in aggregates:
        for ratio in ratios:
            workload = build_ratio_workload(
                database,
                Q2_TABLES,
                q2_flex_specs(3, selectivity),
                ratio,
                aggregate=agg_name,
                aggregate_attr=attr,
                joins=Q2_JOINS,
                op=op,
                name=f"fig11_{agg_name}_{ratio:g}",
            )
            if agg_name == "MAX" and workload.target > max_domain:
                rows.append(
                    Row(
                        x_name="ratio",
                        x_value=ratio,
                        method=agg_name,
                        time_ms=0.0,
                        error=math.inf,
                        qscore=math.inf,
                        aggregate_value=math.nan,
                        queries=0,
                        rows_scanned=0,
                        satisfied=False,
                        extra={"attainable": False,
                               "target": workload.target},
                    )
                )
                continue
            run = run_method(
                "ACQUIRE", layer, workload.query, acquire_config=config
            )
            run.method = agg_name  # series label = the aggregate
            row = Row.from_run("ratio", ratio, run)
            row.extra["target"] = workload.target
            rows.append(row)
    return ExperimentResult(
        name="fig11",
        title="Fig 11: ACQUIRE across aggregate types (SUM/COUNT/MAX)",
        paper_expectation=(
            "ACQUIRE reaches the aggregate threshold for every OSP "
            "aggregate, with time/refinement trends matching COUNT's."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "gamma": gamma,
                  "delta": delta},
    )


# ----------------------------------------------------------------------
# Section 8.4.4: data distributions
# ----------------------------------------------------------------------
def skew_distribution(
    scale_rows: int = 20_000,
    zipf_zs: Sequence[float] = (0.0, 1.0),
    ratio: float = 0.3,
    methods: Sequence[str] = ALL_METHODS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
    tqgen: Optional[dict] = None,
) -> ExperimentResult:
    """Section 8.4.4: re-run the comparison on Zipf z=1 skewed data."""
    tqgen = tqgen or {"grid_points": 5, "rounds": 4}
    config = AcquireConfig(gamma=gamma, delta=delta)
    rows: list[Row] = []
    for z in zipf_zs:
        database = _tpch(_scaled(scale_rows), zipf_z=z)
        layer = make_backend(database, backend)
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(3, selectivity),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"skew_z{z:g}",
        )
        _run_point(rows, "zipf_z", z, methods, layer, workload, config, tqgen)
    return ExperimentResult(
        name="skew",
        title="Sec 8.4.4: uniform (z=0) vs skewed (z=1) data",
        paper_expectation=(
            "Trends on skewed data match the uniform case: same method "
            "ordering for time, error and refinement."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "ratio": ratio},
    )


# ----------------------------------------------------------------------
# Table 1: related-work capability matrix
# ----------------------------------------------------------------------
def table1_capabilities(
    scale_rows: int = 2_000, backend: str = "memory"
) -> ExperimentResult:
    """Table 1: probe each implementation's actual capabilities.

    Aggregate support is probed empirically — each technique is asked
    to run a workload per aggregate and either completes or refuses —
    rather than asserted, so the matrix is a living property of the
    code.
    """
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    config = AcquireConfig(gamma=10.0, delta=0.1)
    aggregates = (
        ("COUNT", None, ConstraintOp.EQ),
        ("SUM", "partsupp.ps_availqty", ConstraintOp.GE),
        ("MIN", "part.p_retailprice", ConstraintOp.GE),
        ("MAX", "part.p_retailprice", ConstraintOp.GE),
        ("AVG", "part.p_retailprice", ConstraintOp.EQ),
    )
    rows: list[Row] = []
    for method in (*ALL_METHODS, "HillClimbing", "Skyline"):
        supported = []
        for agg_name, attr, op in aggregates:
            workload = build_ratio_workload(
                database,
                Q2_TABLES,
                q2_flex_specs(2, 0.4),
                0.8,
                aggregate=agg_name,
                aggregate_attr=attr,
                joins=Q2_JOINS,
                op=op,
                name=f"table1_{method}_{agg_name}",
            )
            try:
                run = run_method(
                    method, layer, workload.query, acquire_config=config
                )
                supported.append(agg_name)
                del run
            except QueryModelError:
                continue
        rows.append(
            Row(
                x_name="capability",
                x_value="aggregates",
                method=method,
                time_ms=0.0,
                error=0.0,
                qscore=0.0,
                aggregate_value=float(len(supported)),
                queries=0,
                rows_scanned=0,
                satisfied=True,
                extra={
                    "aggregates": supported,
                    "proximity": method in ("ACQUIRE", "Top-k",
                                            "Skyline"),
                    "cardinality": True,
                    "query_output": method in ("ACQUIRE", "TQGen",
                                               "BinSearch",
                                               "HillClimbing"),
                },
            )
        )
    return ExperimentResult(
        name="table1",
        title="Table 1: technique capability matrix (probed)",
        paper_expectation=(
            "Only ACQUIRE supports COUNT, SUM, MIN, MAX and AVG with "
            "both proximity and cardinality criteria while emitting "
            "refined queries; the baselines are COUNT-only."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows)},
    )


# ----------------------------------------------------------------------
# Query-shape robustness (generalization beyond the paper's one shape)
# ----------------------------------------------------------------------
def shape_robustness(
    scale_rows: int = 10_000,
    ratio: float = 0.3,
    methods: Sequence[str] = ALL_METHODS,
    backend: str = "sqlite",
    gamma: float = 10.0,
    delta: float = 0.05,
    selectivity: float = BASE_SELECTIVITY,
    tqgen: Optional[dict] = None,
) -> ExperimentResult:
    """The paper evaluates one query shape (the Q2 star join); this
    extension re-runs the comparison on three shapes — a single wide
    fact table, a two-table FK join, and the three-table star — to
    check the method ordering is not an artifact of the shape."""
    from repro.datagen.tpch import TPCHConfig, generate_tpch
    from repro.workloads.templates import (
        LINEITEM_JOINS,
        lineitem_flex_specs,
    )

    tqgen = tqgen or {"grid_points": 4, "rounds": 4}
    database = generate_tpch(
        TPCHConfig(scale_rows=_scaled(scale_rows), seed=7)
    )
    layer = make_backend(database, backend)
    config = AcquireConfig(gamma=gamma, delta=delta)
    shapes = (
        (
            "single-table",
            ("lineitem",),
            lineitem_flex_specs(3, selectivity),
            (),
        ),
        (
            "fk-join",
            ("lineitem", "orders"),
            lineitem_flex_specs(3, selectivity, with_orders=True),
            LINEITEM_JOINS,
        ),
        ("star-join", Q2_TABLES, q2_flex_specs(3, selectivity), Q2_JOINS),
    )
    rows: list[Row] = []
    for name, tables, flexible, joins in shapes:
        workload = build_ratio_workload(
            database,
            tables,
            flexible,
            ratio,
            aggregate="COUNT",
            joins=joins,
            name=f"shape_{name}",
        )
        _run_point(rows, "shape", name, methods, layer, workload, config,
                   tqgen)
    return ExperimentResult(
        name="shapes",
        title="Extension: method ordering across query shapes",
        paper_expectation=(
            "ACQUIRE meets delta with the lowest refinement on every "
            "shape; TQGen stays the slowest; the ordering is not an "
            "artifact of the Q2 star join."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "ratio": ratio,
                  "backend": backend},
    )


# ----------------------------------------------------------------------
# Section 3's modular evaluation layer: exact vs sampling vs estimation
# ----------------------------------------------------------------------
def evaluation_layers(
    scale_rows: int = 30_000,
    ratio: float = 0.3,
    gamma: float = 10.0,
    delta: float = 0.05,
    sampling_fraction: float = 0.1,
    selectivity: float = BASE_SELECTIVITY,
    batched: bool = False,
    parallelism: int = 1,
    explore_mode: str = "incremental",
) -> ExperimentResult:
    """Paper section 3: "the evaluation layer is modular and can be
    replaced with other techniques such as estimation, and/or sampling."

    Runs the same ACQ through four layers — exact (memory), exact
    (SQLite), Bernoulli sampling, and histogram estimation — and
    reports each layer's cost plus the *validated* error: the
    recommended refined query re-executed exactly, which is what the
    user ultimately experiences.
    """
    from repro.core.aggregates import COUNT as _COUNT
    from repro.engine.histogram_backend import HistogramBackend
    from repro.engine.memory_backend import MemoryBackend
    from repro.engine.sampling import SamplingBackend
    from repro.engine.sqlite_backend import SQLiteBackend

    database = _tpch(_scaled(scale_rows))
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(3, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="layers",
    )
    config = AcquireConfig(
        gamma=gamma,
        delta=delta,
        batched=batched,
        parallelism=parallelism,
        explore_mode=explore_mode,
    )
    validator = MemoryBackend(database)
    validator_prepared = validator.prepare(
        workload.query, [config.dim_cap_default] * 3
    )
    layers = (
        ("memory", MemoryBackend(database)),
        ("sqlite", SQLiteBackend(database)),
        ("sampling",
         SamplingBackend(database, sampling_fraction, seed=3,
                         tables=("partsupp",))),
        ("histogram", HistogramBackend(database)),
    )
    rows: list[Row] = []
    for name, layer in layers:
        run = run_method("ACQUIRE", layer, workload.query,
                         acquire_config=config)
        run.method = name
        if run.pscores:
            true_value = _COUNT.finalize(
                validator.execute_box(validator_prepared, run.pscores)
            )
            run.details["validated_value"] = true_value
            run.details["validated_error"] = (
                abs(workload.target - true_value) / workload.target
            )
        rows.append(Row.from_run("layer", name, run))
    return ExperimentResult(
        name="layers",
        title="Sec 3: evaluation-layer substitution "
              "(exact / sampling / estimation)",
        paper_expectation=(
            "ACQUIRE runs unchanged over approximate evaluation layers; "
            "sampling and estimation cut execution cost while the "
            "recommended query's validated error stays small."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratio": ratio,
            "sampling_fraction": sampling_fraction,
            "batched": batched,
            "parallelism": parallelism,
            "explore_mode": explore_mode,
        },
    )


# ----------------------------------------------------------------------
# Tentpole benchmark: incremental vs batched vs materialized Explore
# ----------------------------------------------------------------------
def explore_modes(
    scale_rows: int = 8_000,
    ratio: float = 0.25,
    gamma: float = 10.0,
    delta: float = 0.05,
    step: float = 5.0,
    selectivity: float = BASE_SELECTIVITY,
    backends: Sequence[str] = ("memory", "sqlite"),
) -> ExperimentResult:
    """Round-trip profile of the four Explore configurations.

    Runs one 2-dimensional COUNT ACQ on the Q2 join through serial
    (one query per cell), batched (one round trip per layer),
    materialized (one round trip for the whole grid), and auto
    (cost-model choice) on each exact backend. All four produce
    identical answer sets — ``benchmarks/smoke.py`` asserts the qscore
    column is constant per backend — so the interesting columns are
    ``queries`` (round trips), ``grids`` and ``explore``.
    """
    database = _tpch(_scaled(scale_rows))
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(2, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="explore",
    )
    modes = (
        ("serial", {}),
        ("batched", {"batched": True}),
        ("materialized", {"explore_mode": "materialized"}),
        ("auto", {"explore_mode": "auto"}),
    )
    rows: list[Row] = []
    for backend in backends:
        layer = make_backend(database, backend)
        for mode, overrides in modes:
            config = AcquireConfig(
                gamma=gamma, delta=delta, step=step, **overrides
            )
            run = run_method("ACQUIRE", layer, workload.query,
                             acquire_config=config)
            run.method = f"{backend}/{mode}"
            rows.append(Row.from_run("mode", mode, run))
    return ExperimentResult(
        name="explore",
        title="Explore engines: serial vs batched vs materialized "
              "vs auto (round trips)",
        paper_expectation=(
            "All engines return identical answer sets; batching "
            "collapses round trips to one per layer and "
            "materialization to one per search, while auto never does "
            "more round trips than the better fixed mode."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratio": ratio,
            "gamma": gamma,
            "delta": delta,
            "step": step,
            "selectivity": selectivity,
        },
    )


def grid_cache_sweep(
    scale_rows: int = 6_000,
    ratios: Sequence[float] = (0.5, 0.35, 0.25, 0.15),
    gamma: float = 10.0,
    delta: float = 0.05,
    step: float = 5.0,
    selectivity: float = BASE_SELECTIVITY,
    backend: str = "memory",
    cache_mb: int = 64,
) -> ExperimentResult:
    """Constraint sweep with and without the grid tensor cache.

    The cache key excludes the constraint target, so a sweep over
    cardinality ratios (same tables, predicates and aggregate; only
    the target changes) re-materializes the identical cell tensor at
    every point without the cache and computes it exactly once with
    it. ``benchmarks/smoke.py`` gates on the cached arm issuing
    strictly fewer backend queries.
    """
    database = _tpch(_scaled(scale_rows))
    arms = (
        ("uncached", None),
        ("cached", GridTensorCache(cache_mb * 1024 * 1024)),
    )
    rows: list[Row] = []
    for arm, cache in arms:
        layer = make_backend(database, backend)
        for ratio in ratios:
            workload = build_ratio_workload(
                database,
                Q2_TABLES,
                q2_flex_specs(2, selectivity),
                ratio,
                aggregate="COUNT",
                joins=Q2_JOINS,
                name=f"cache_{ratio:g}",
            )
            config = AcquireConfig(
                gamma=gamma,
                delta=delta,
                step=step,
                explore_mode="materialized",
                grid_cache=cache,
            )
            run = run_method(
                "ACQUIRE", layer, workload.query, acquire_config=config
            )
            run.method = f"{backend}/{arm}"
            rows.append(Row.from_run("ratio", ratio, run))
    return ExperimentResult(
        name="grid_cache",
        title="Grid tensor cache: backend passes across a constraint "
              "sweep",
        paper_expectation=(
            "Materialization cost is target-independent, so caching "
            "the cell tensor across sweep points leaves answers "
            "bit-identical while only the first point pays the "
            "backend grid pass."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratios": list(ratios),
            "gamma": gamma,
            "delta": delta,
            "step": step,
            "selectivity": selectivity,
            "backend": backend,
            "cache_mb": cache_mb,
        },
    )


def sharded_tiles(
    scale_rows: int = 6_000,
    ratio: float = 0.25,
    gamma: float = 10.0,
    step: float = 2.0,
    selectivity: float = BASE_SELECTIVITY,
    backends: Sequence[str] = ("memory", "sqlite"),
    workers: Sequence[int] = (1, 4),
    executors: Sequence[str] = ("thread", "process"),
    tile_width: int = 5,
    repeats: int = 3,
) -> ExperimentResult:
    """Sharded tile pipeline: full-grid materialization, serial vs N
    workers on each executor tier.

    Times exactly the phase the tile schedulers parallelize — one
    ``prime_cells`` of the whole down-set grid, every tile pending at
    once — rather than a full ACQUIRE run, where driver scoring
    dilutes the fetch overlap (Amdahl) and makes a wall-clock gate
    flaky. Tile *fetches* are independent; only the seam stitching is
    ordered, so every worker count on every tier must produce
    bit-identical block states. Each ``executor`` in ``executors``
    gets its own worker sweep (rows ``backend/executor/wN``); the
    process tier's first repeat pays the pool spawn, which best-of-
    ``repeats`` timing deliberately excludes (the pool is persistent —
    steady state is the honest number; the spawn cost is reported
    separately via ``process_spawn_s``). ``qscore`` carries the summed
    finalized aggregate over the whole grid as an identity checksum,
    and ``extra`` records the exact cell-by-cell comparison against
    the serial arm (``identical_to_serial``), ``parallel_tiles``, and
    the effective ``tile_executor`` after any runtime fallback.
    """
    import itertools as _it
    import time as _time

    import numpy as _np

    from repro.core.grid_explore import TiledGridExplorer
    from repro.core.refined_space import RefinedSpace

    database = _tpch(_scaled(scale_rows))
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(2, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="sharded",
    )
    query = workload.query
    aggregate = query.constraint.spec.aggregate
    config = AcquireConfig(gamma=gamma, step=step)
    rows: list[Row] = []
    for backend in backends:
        layer = make_backend(database, backend)
        dim_caps = [config.dim_cap_default] * query.dimensionality
        prepared = layer.prepare(query, dim_caps)
        useful = layer.useful_max_scores(prepared)
        max_scores = [min(c, s) for c, s in zip(dim_caps, useful)]
        space = RefinedSpace(query, gamma, max_scores, config.norm, step)
        corner = space.max_coords
        grid_coords = list(
            _it.product(*(range(limit + 1) for limit in corner))
        )
        serial_values: Optional[_np.ndarray] = None
        for executor in executors:
            for count in workers:
                best_s = math.inf
                explorer = None
                stats_delta = None
                for _ in range(max(repeats, 1)):
                    candidate = TiledGridExplorer(
                        layer,
                        prepared,
                        space,
                        aggregate,
                        tile_shape=(tile_width,) * space.d,
                        tile_workers=count,
                        tile_executor=executor,
                    )
                    before = layer.stats.snapshot()
                    started = _time.perf_counter()
                    candidate.prime_cells([corner])
                    elapsed = _time.perf_counter() - started
                    delta = layer.stats.since(before)
                    if elapsed < best_s:
                        if explorer is not None:
                            explorer.close()
                        best_s, explorer, stats_delta = (
                            elapsed, candidate, delta,
                        )
                    else:
                        candidate.close()
                values = _np.array(
                    [explorer.compute_aggregate(c) for c in grid_coords]
                )
                identical = (
                    True
                    if serial_values is None
                    else bool(_np.array_equal(values, serial_values))
                )
                if serial_values is None:
                    serial_values = values
                rows.append(
                    Row(
                        x_name="workers",
                        x_value=count,
                        method=f"{backend}/{executor}/w{count}",
                        time_ms=best_s * 1000.0,
                        error=0.0,
                        qscore=float(values.sum()),
                        aggregate_value=float(values[-1]),
                        queries=stats_delta.queries_executed,
                        rows_scanned=stats_delta.rows_scanned,
                        satisfied=identical,
                        tiles=explorer.tiles_materialized,
                        cache_hits=stats_delta.cache_hits,
                        cache_misses=stats_delta.cache_misses,
                        explore_mode="tiled",
                        extra={
                            "identical_to_serial": identical,
                            "parallel_tiles": stats_delta.parallel_tiles,
                            "process_tiles": stats_delta.process_tiles,
                            "process_fallbacks": (
                                stats_delta.process_fallbacks
                            ),
                            "tile_executor": explorer.tile_executor,
                            "grid_cells": len(grid_coords),
                        },
                    )
                )
                explorer.close()
    return ExperimentResult(
        name="sharded_tiles",
        title="Sharded tiles: tiled Explore at 1 vs N workers on the "
              "thread and process tiers (bit-identical answers)",
        paper_expectation=(
            "Tile fetches carry no inter-tile dependency, so the "
            "sharded pipeline overlaps backend work across workers — "
            "threads sharing the interpreter, or processes escaping "
            "the GIL over shared memory — while the ordered seam "
            "stitching keeps every block state — and hence the answer "
            "set — bit-identical to serial."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratio": ratio,
            "step": step,
            "tile_width": tile_width,
            "workers": list(workers),
            "executors": list(executors),
            "backends": list(backends),
            "repeats": repeats,
        },
    )


def persistent_cache(
    scale_rows: int = 4_000,
    ratios: Sequence[float] = (0.5, 0.3),
    backend: str = "memory",
    gamma: float = 10.0,
    delta: float = 0.05,
    step: float = 5.0,
    selectivity: float = BASE_SELECTIVITY,
) -> ExperimentResult:
    """Cross-process grid cache: a cold and a warm subprocess.

    Runs the same materialized-mode sweep in two fresh Python
    processes sharing one on-disk :class:`PersistentGridCache`
    directory (see :mod:`repro.harness._persistent_worker`). The cold
    process pays every backend grid pass and publishes the tensors;
    the warm process — no shared memory, only the cache directory —
    must answer identically while issuing strictly fewer backend
    queries. ``benchmarks/smoke.py`` gates on exactly that.
    """
    import subprocess
    import sys as _sys
    import tempfile

    rows: list[Row] = []
    with tempfile.TemporaryDirectory(prefix="repro-pcache-") as cache_dir:
        command = [
            _sys.executable,
            "-m",
            "repro.harness._persistent_worker",
            "--cache-dir", cache_dir,
            "--scale-rows", str(_scaled(scale_rows)),
            "--ratios", ",".join(f"{r:g}" for r in ratios),
            "--backend", backend,
            "--gamma", str(gamma),
            "--delta", str(delta),
            "--step", str(step),
            "--selectivity", str(selectivity),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [path for path in _sys.path if path]
        )
        summaries = {}
        for arm in ("cold", "warm"):
            completed = subprocess.run(
                command,
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            import json as _json

            summaries[arm] = _json.loads(completed.stdout)
        for arm in ("cold", "warm"):
            summary = summaries[arm]
            rows.append(
                Row(
                    x_name="arm",
                    x_value=arm,
                    method=f"{backend}/{arm}",
                    time_ms=0.0,
                    error=0.0,
                    qscore=float(summary["qscores"][0]),
                    aggregate_value=math.nan,
                    queries=summary["queries"],
                    rows_scanned=summary["rows_scanned"],
                    satisfied=True,
                    cache_hits=summary["cache_hits"],
                    cache_misses=summary["cache_misses"],
                    persistent_hits=summary["persistent_hits"],
                    block_hits=summary["block_hits"],
                    cache_bytes=summary["persistent_bytes"],
                    explore_mode="materialized",
                    extra={
                        "qscores": summary["qscores"],
                        "store": summary["store"],
                    },
                )
            )
    return ExperimentResult(
        name="persistent_cache",
        title="Persistent grid cache: cold vs warm process over one "
              "cache directory",
        paper_expectation=(
            "Grid tensors are pure functions of (data fingerprint, "
            "geometry), so a second process over the same data serves "
            "every tensor from disk: identical qscores, strictly fewer "
            "backend queries, nonzero persistent-hit bytes."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratios": list(ratios),
            "backend": backend,
            "gamma": gamma,
            "delta": delta,
            "step": step,
        },
    )


def plan_calibration(
    scale_rows: int = 6_000,
    ratios: Sequence[float] = (0.5, 0.4, 0.3, 0.2),
    gamma: float = 10.0,
    delta: float = 0.05,
    step: float = 5.0,
    selectivity: float = BASE_SELECTIVITY,
    backend: str = "memory",
) -> ExperimentResult:
    """Planner estimate vs observed traversal, with feedback.

    Runs an ``auto`` sweep sharing one :class:`PlanCalibration`: each
    row records the plan's ``estimated_visited`` next to the grid
    queries actually examined, plus the correction factor in effect
    *after* the run — the calibration table showing the estimate
    converging onto observed behaviour.
    """
    database = _tpch(_scaled(scale_rows))
    calibration = PlanCalibration()
    layer = make_backend(database, backend)
    rows: list[Row] = []
    for ratio in ratios:
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(2, selectivity),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"calib_{ratio:g}",
        )
        config = AcquireConfig(
            gamma=gamma,
            delta=delta,
            step=step,
            explore_mode="auto",
            calibration=calibration,
        )
        run = run_method(
            "ACQUIRE", layer, workload.query, acquire_config=config
        )
        run.method = f"{backend}/auto"
        row = Row.from_run("ratio", ratio, run)
        row.extra["calibration_factor"] = calibration.factor()
        rows.append(row)
    return ExperimentResult(
        name="calibration",
        title="Plan calibration: estimated vs actually-visited cells",
        paper_expectation=(
            "The star-join visited estimate is systematically biased "
            "on any one workload; the geometric-mean feedback factor "
            "measures that bias so later plans correct for it."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "ratios": list(ratios),
            "gamma": gamma,
            "delta": delta,
            "step": step,
            "selectivity": selectivity,
            "backend": backend,
            "final_factor": calibration.factor(),
            "observations": calibration.observations,
        },
    )


# ----------------------------------------------------------------------
# Section 8.4.1's BinSearch critique: ordering sensitivity
# ----------------------------------------------------------------------
def binsearch_order_sensitivity(
    scale_rows: int = 20_000,
    ratio: float = 0.15,
    backend: str = "sqlite",
    delta: float = 0.05,
) -> ExperimentResult:
    """Reproduce "even a single change to the order can change the
    error by a factor of 100" (section 8.4.1).

    Runs BinSearch under every permutation of three flexible
    predicates — one of them the coarse integer ``p_size`` whose
    cardinality jumps make bisection land far from the target — and
    reports the per-ordering error spread.
    """
    import itertools as _it

    from repro.harness.runner import baseline_for

    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    specs = q2_flex_specs(4, BASE_SELECTIVITY)
    chosen = [specs[0], specs[3], specs[2]]  # retailprice, p_size, supplycost
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        chosen,
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="binsearch_order",
    )
    rows: list[Row] = []
    for order in _it.permutations(range(3)):
        technique = baseline_for("BinSearch", delta=delta, order=order)
        run = technique.run(layer, workload.query)
        rows.append(Row.from_run("order", "".join(map(str, order)), run))
    return ExperimentResult(
        name="binsearch_order",
        title="Sec 8.4.1: BinSearch error vs predicate refinement order",
        paper_expectation=(
            "BinSearch error varies wildly across predicate orderings "
            "(paper: 0.002 vs 0.19 — a 100X swing — between two orders)."
        ),
        rows=rows,
        settings={"scale_rows": _scaled(scale_rows), "ratio": ratio},
    )


# ----------------------------------------------------------------------
# Service: concurrent multi-query driver under generated load
# ----------------------------------------------------------------------
def service_load(
    scale_rows: int = 4_000,
    requests_per_worker: int = 4,
    workers: Sequence[int] = (1, 2, 4),
    backend: str = "sqlite",
    ratio: float = 0.25,
    gamma: float = 10.0,
    step: float = 2.0,
    selectivity: float = BASE_SELECTIVITY,
    corpus_requests: int = 8,
    corpus_seed: int = 7,
    open_loop_rps: float = 40.0,
    fused_corpus_requests: int = 4,
    fused_duplicate_fraction: float = 3.0,
    fusion_window_ms: float = 25.0,
) -> ExperimentResult:
    """Load-generate against :class:`repro.service.AcquireService`.

    Four arms, mirroring how a multi-tenant driver is actually judged:

    * ``service/closed/<backend>`` — closed-loop throughput sweep over
      worker counts: N clients per worker hammer one shared backend
      with same-shape ACQs, shared caching *disabled* so every request
      pays its full backend pass. Throughput should
      scale with workers on backends whose execution releases the GIL
      (sqlite); ``extra`` carries p50/p99 latency and requests/s.
    * ``service/open/corpus`` — open-loop arrival over corpus-sampled
      triples on one cache-sharing service: duplicates with jittered
      targets dedupe against the original's tensors (the cache key is
      target-independent), so the shared-cache hit counters prove
      cross-request dedupe. Arrivals do not wait for completions, so
      this arm also exercises the backpressure policy.
    * ``service/serial/corpus`` — the same corpus mix replayed one
      request at a time on a fresh service: the deterministic
      backend-query/row counts the regression baseline pins (the
      concurrent arms' counters depend on request interleaving — two
      simultaneous identical requests may both miss the cache).
    * ``service/unfused/corpus`` vs ``service/fused/corpus`` — a
      duplicate-heavy open-loop mix (each sampled triple immediately
      followed by jittered near-duplicates, so same-key requests race
      in flight) replayed at equal workers with cross-query pass
      fusion off and on. The fused arm must complete everything with
      zero rejections, report ``fused_passes > 0``, and issue
      *strictly fewer* backend queries than the unfused arm — the
      merged passes, not the cache, absorb the concurrency
      (``benchmarks/smoke.py`` gates exactly that).
    """
    import time as _time

    from repro.service import (
        AcquireService,
        ServiceConfig,
        run_closed_loop,
        run_open_loop,
        sample_corpus_requests,
    )

    rows: list[Row] = []

    # -- Arm A: closed-loop throughput vs worker count ----------------
    database = _tpch(_scaled(scale_rows))
    layer = make_backend(database, backend)
    workload = build_ratio_workload(
        database,
        Q2_TABLES,
        q2_flex_specs(2, selectivity),
        ratio,
        aggregate="COUNT",
        joins=Q2_JOINS,
        name="service_load",
    )
    config = AcquireConfig(
        gamma=gamma, step=step, explore_mode="materialized"
    )
    preflight_query(layer, workload.query, config)
    # Warm the backend (page cache, prepared-statement paths) so the
    # first timed arm is not charged for one-time setup.
    from repro.core.acquire import Acquire as _Acquire

    _Acquire(layer).run(workload.query, config)
    for count in workers:
        total = max(int(requests_per_worker), 1) * int(count)
        requests = [
            ("default", workload.query, config) for _ in range(total)
        ]
        report = None
        for _ in range(2):  # best-of-2: scheduling noise, not trend
            service = AcquireService(
                ServiceConfig(
                    workers=int(count),
                    max_queue=total,
                    cache_bytes=0,  # no sharing: every request pays
                )
            )
            try:
                service.register_backend("default", layer)
                candidate = run_closed_loop(service, requests, int(count))
            finally:
                service.close()
            if report is None or candidate.wall_s < report.wall_s:
                report = candidate
        stats = report.service
        rows.append(
            Row(
                x_name="workers",
                x_value=int(count),
                method=f"service/closed/{backend}",
                time_ms=report.wall_s * 1000.0,
                error=0.0,
                qscore=0.0,
                aggregate_value=0.0,
                queries=sum(r.queries_executed for r in report.records),
                rows_scanned=sum(r.rows_scanned for r in report.records),
                satisfied=all(
                    r.satisfied for r in report.records if r.completed
                ),
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
                explore_mode="materialized",
                extra={
                    "throughput_rps": report.throughput_rps,
                    "p50_ms": report.latency_ms(0.50),
                    "p99_ms": report.latency_ms(0.99),
                    "completed": report.completed,
                    "rejected": report.rejected,
                    "peak_in_flight": (
                        stats.peak_in_flight if stats else 0
                    ),
                },
            )
        )

    # -- Arm B: open-loop corpus mix on one cache-sharing service -----
    service = AcquireService(
        ServiceConfig(workers=4, max_queue=2 * corpus_requests + 8)
    )
    try:
        requests = sample_corpus_requests(
            service, corpus_requests, seed=corpus_seed
        )
        report = run_open_loop(
            service, requests, inter_arrival_s=1.0 / max(open_loop_rps, 1e-9)
        )
        cache = service.grid_cache
        shared_hits = cache.hits + cache.persistent_hits if cache else 0
        shared_misses = cache.misses if cache else 0
        stats = report.service
        rows.append(
            Row(
                x_name="arrival",
                x_value="open",
                method="service/open/corpus",
                time_ms=report.wall_s * 1000.0,
                error=0.0,
                qscore=0.0,
                aggregate_value=0.0,
                queries=sum(r.queries_executed for r in report.records),
                rows_scanned=sum(r.rows_scanned for r in report.records),
                satisfied=True,
                cache_hits=shared_hits,
                cache_misses=shared_misses,
                extra={
                    "throughput_rps": report.throughput_rps,
                    "p50_ms": report.latency_ms(0.50),
                    "p99_ms": report.latency_ms(0.99),
                    "requests": len(requests),
                    "completed": report.completed,
                    "rejected": report.rejected,
                    "dedupe_hit_rate": (
                        shared_hits / (shared_hits + shared_misses)
                        if shared_hits + shared_misses
                        else 0.0
                    ),
                    "peak_in_flight": (
                        stats.peak_in_flight if stats else 0
                    ),
                },
            )
        )
    finally:
        service.close()

    # -- Arm C: serial replay of the same mix (deterministic counters)
    service = AcquireService(
        ServiceConfig(workers=1, max_queue=2 * corpus_requests + 8)
    )
    try:
        requests = sample_corpus_requests(
            service, corpus_requests, seed=corpus_seed
        )
        started = _time.perf_counter()
        report = run_closed_loop(service, requests, concurrency=1)
        wall = _time.perf_counter() - started
        cache = service.grid_cache
        shared_hits = cache.hits + cache.persistent_hits if cache else 0
        rows.append(
            Row(
                x_name="arrival",
                x_value="serial",
                method="service/serial/corpus",
                time_ms=wall * 1000.0,
                error=0.0,
                qscore=0.0,
                aggregate_value=0.0,
                queries=sum(r.queries_executed for r in report.records),
                rows_scanned=sum(r.rows_scanned for r in report.records),
                satisfied=True,
                cache_hits=shared_hits,
                cache_misses=cache.misses if cache else 0,
                extra={
                    "requests": len(requests),
                    "completed": report.completed,
                    "satisfied_count": sum(
                        1 for r in report.records if r.satisfied
                    ),
                },
            )
        )
    finally:
        service.close()

    # -- Arm D: fused vs unfused duplicate-heavy open loop ------------
    # Batched incremental: the incremental engine never consults the
    # grid cache, so with fusion off every request pays its own cell
    # passes — the clean baseline against which the coalescer's merged
    # passes show up as strictly fewer backend queries at equal
    # workers (``batched=True`` routes each layer through
    # ``prime_cells``, the coalescer's cell seam).
    for method, fusion in (
        ("service/unfused/corpus", False),
        ("service/fused/corpus", True),
    ):
        service = AcquireService(
            ServiceConfig(
                workers=4,
                max_queue=8,
                admission="wait",
                fusion=fusion,
                fusion_window_ms=fusion_window_ms,
            )
        )
        try:
            requests = [
                (name, query, replace(request_config, batched=True))
                for name, query, request_config in sample_corpus_requests(
                    service,
                    fused_corpus_requests,
                    seed=corpus_seed,
                    duplicate_fraction=fused_duplicate_fraction,
                    explore_mode="incremental",
                    duplicate_placement="adjacent",
                )
            ]
            report = run_open_loop(
                service, requests, inter_arrival_s=0.002
            )
            stats = report.service
            rows.append(
                Row(
                    x_name="fusion",
                    x_value="on" if fusion else "off",
                    method=method,
                    time_ms=report.wall_s * 1000.0,
                    error=0.0,
                    qscore=0.0,
                    aggregate_value=0.0,
                    queries=report.queries_executed,
                    rows_scanned=sum(
                        r.rows_scanned for r in report.records
                    ),
                    satisfied=True,
                    cache_hits=report.cache_hits,
                    cache_misses=report.cache_misses,
                    explore_mode="incremental",
                    extra={
                        "throughput_rps": report.throughput_rps,
                        "p50_ms": report.latency_ms(0.50),
                        "p99_ms": report.latency_ms(0.99),
                        "requests": len(requests),
                        "completed": report.completed,
                        "rejected": report.rejected,
                        "fused_passes": report.fused_passes,
                        "fused_cells": report.fused_cells,
                        "fused_groups": (
                            stats.fused_groups if stats else 0
                        ),
                        "fused_fetches": (
                            stats.fused_fetches if stats else 0
                        ),
                    },
                )
            )
        finally:
            service.close()

    return ExperimentResult(
        name="service_load",
        title="ACQ-as-a-service: latency/throughput under generated load",
        paper_expectation=(
            "The paper's interactive framing implies a multi-query "
            "deployment: throughput scales with service workers on a "
            "GIL-escaping backend, overlapping sweeps dedupe tile "
            "work through the shared target-independent grid cache "
            "(cross-request cache hits > 0), and with pass fusion on, "
            "duplicate-heavy in-flight traffic is served by strictly "
            "fewer merged backend passes than the unfused replay."
        ),
        rows=rows,
        settings={
            "scale_rows": _scaled(scale_rows),
            "workers": list(workers),
            "requests_per_worker": requests_per_worker,
            "backend": backend,
            "corpus_requests": corpus_requests,
            "corpus_seed": corpus_seed,
            "open_loop_rps": open_loop_rps,
            "fused_corpus_requests": fused_corpus_requests,
            "fused_duplicate_fraction": fused_duplicate_fraction,
            "fusion_window_ms": fusion_window_ms,
        },
    )


EXPERIMENTS = {
    "fig8": fig8_aggregate_ratio,
    "fig9": fig9_dimensionality,
    "fig10a": fig10a_table_size,
    "fig10b": fig10b_refinement_threshold,
    "fig10c": fig10c_cardinality_threshold,
    "fig11": fig11_aggregate_types,
    "skew": skew_distribution,
    "table1": table1_capabilities,
    "binsearch_order": binsearch_order_sensitivity,
    "layers": evaluation_layers,
    "explore": explore_modes,
    "grid_cache": grid_cache_sweep,
    "sharded_tiles": sharded_tiles,
    "persistent_cache": persistent_cache,
    "calibration": plan_calibration,
    "shapes": shape_robustness,
    "service_load": service_load,
}
