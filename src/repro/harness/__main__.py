"""Command-line entry point: ``python -m repro.harness [experiment...]``.

Runs the named experiments (default: all of them) and prints each
report; pass ``--save`` to also write ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import render_result, save_result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default=["all"],
        help="experiment ids (fig8, fig9, fig10a, fig10b, fig10c, "
        "fig11, skew, table1) or 'all'",
    )
    parser.add_argument(
        "--save",
        action="store_true",
        help="also write reports under benchmarks/results/",
    )
    args = parser.parse_args(argv)
    names = (
        list(EXPERIMENTS)
        if "all" in args.experiments
        else list(dict.fromkeys(args.experiments))
    )
    for name in names:
        result = EXPERIMENTS[name]()
        print(render_result(result))
        print()
        if args.save:
            path = save_result(result)
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
