"""Result rows shared by every experiment."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.baselines.base import MethodRun


@dataclass
class Row:
    """One (x-value, method) measurement in a sweep.

    Mirrors the paper's three reported metrics — execution time,
    relative aggregate error, refinement score — plus the
    machine-independent work counters our evaluation layers expose.
    """

    x_name: str
    x_value: Any
    method: str
    time_ms: float
    error: float
    qscore: float
    aggregate_value: float
    queries: int
    rows_scanned: int
    satisfied: bool
    batches: int = 0
    materializations: int = 0
    tiles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    persistent_hits: int = 0
    block_hits: int = 0
    cache_bytes: int = 0
    explore_mode: str = ""
    top_k: int = 1
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_run(cls, x_name: str, x_value: Any, run: MethodRun) -> "Row":
        return cls(
            x_name=x_name,
            x_value=x_value,
            method=run.method,
            time_ms=run.elapsed_s * 1000.0,
            error=run.error,
            qscore=run.qscore,
            aggregate_value=run.aggregate_value,
            queries=run.execution.queries_executed,
            rows_scanned=run.execution.rows_scanned,
            satisfied=run.satisfied,
            batches=run.execution.batches,
            materializations=run.execution.grid_materializations,
            tiles=run.execution.grid_tiles,
            cache_hits=run.execution.cache_hits,
            cache_misses=run.execution.cache_misses,
            persistent_hits=run.execution.persistent_hits,
            block_hits=run.execution.block_hits,
            cache_bytes=run.execution.persistent_bytes,
            explore_mode=str(run.details.get("explore_mode", "")),
            top_k=int(run.details.get("top_k", 1)),
            extra=dict(run.details),
        )


@dataclass
class ExperimentResult:
    """All rows of one experiment plus its paper context."""

    name: str
    title: str
    paper_expectation: str
    rows: list[Row]
    settings: dict = field(default_factory=dict)

    def methods(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.method not in seen:
                seen.append(row.method)
        return seen

    def series(self, method: str, metric: str) -> list[tuple[Any, float]]:
        """(x, metric) pairs for one method, in sweep order."""
        return [
            (row.x_value, getattr(row, metric))
            for row in self.rows
            if row.method == method
        ]

    def speedup(
        self, metric: str, baseline: str, against: str = "ACQUIRE"
    ) -> Optional[float]:
        """Geometric-mean ratio baseline/against over shared x values."""
        ours = dict(self.series(against, metric))
        theirs = dict(self.series(baseline, metric))
        shared = [
            (theirs[x], ours[x])
            for x in ours
            if x in theirs
            and ours[x] > 0
            and theirs[x] > 0
            and math.isfinite(ours[x])
            and math.isfinite(theirs[x])
        ]
        if not shared:
            return None
        log_sum = sum(math.log(b / a) for b, a in shared)
        return math.exp(log_sum / len(shared))
