"""Subprocess worker for the ``persistent_cache`` experiment.

Runs one materialized-mode constraint sweep with a persistent-backed
grid tensor cache and prints a JSON stats summary to stdout. The
parent experiment (:func:`repro.harness.experiments.persistent_cache`)
launches this module twice against the same ``--cache-dir`` — a cold
process that populates the cache and a warm process that should serve
every grid tensor from disk — and compares the two summaries.

Determinism contract: given the same ``--scale-rows``/``--seed`` the
worker regenerates byte-identical data (the TPC-H generator is
seeded), so the persistent fingerprint of the warm process matches the
cold one and cross-process hits are guaranteed, not incidental.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.acquire import AcquireConfig
from repro.core.grid_cache import GridTensorCache, PersistentGridCache
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.harness.runner import make_backend, run_method
from repro.workloads.generator import build_ratio_workload
from repro.workloads.templates import Q2_JOINS, Q2_TABLES, q2_flex_specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness._persistent_worker",
        description="Run one persistent-cache sweep arm (internal).",
    )
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--scale-rows", type=int, default=4_000)
    parser.add_argument("--ratios", default="0.5,0.3")
    parser.add_argument("--backend", default="memory")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--gamma", type=float, default=10.0)
    parser.add_argument("--delta", type=float, default=0.05)
    parser.add_argument("--step", type=float, default=5.0)
    parser.add_argument("--selectivity", type=float, default=0.2)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    ratios = [float(part) for part in args.ratios.split(",") if part]
    database = generate_tpch(
        TPCHConfig(
            scale_rows=args.scale_rows,
            seed=args.seed,
            tables=("supplier", "part", "partsupp"),
        )
    )
    layer = make_backend(database, args.backend)
    persistent = PersistentGridCache(args.cache_dir)
    cache = GridTensorCache(persistent=persistent)
    summary = {
        "backend": args.backend,
        "ratios": ratios,
        "qscores": [],
        "queries": 0,
        "rows_scanned": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "persistent_hits": 0,
        "persistent_bytes": 0,
        "block_hits": 0,
    }
    for ratio in ratios:
        workload = build_ratio_workload(
            database,
            Q2_TABLES,
            q2_flex_specs(2, args.selectivity),
            ratio,
            aggregate="COUNT",
            joins=Q2_JOINS,
            name=f"persist_{ratio:g}",
        )
        config = AcquireConfig(
            gamma=args.gamma,
            delta=args.delta,
            step=args.step,
            explore_mode="materialized",
            grid_cache=cache,
        )
        run = run_method(
            "ACQUIRE", layer, workload.query, acquire_config=config
        )
        summary["qscores"].append(run.qscore)
        summary["queries"] += run.execution.queries_executed
        summary["rows_scanned"] += run.execution.rows_scanned
        summary["cache_hits"] += run.execution.cache_hits
        summary["cache_misses"] += run.execution.cache_misses
        summary["persistent_hits"] += run.execution.persistent_hits
        summary["persistent_bytes"] += run.execution.persistent_bytes
        summary["block_hits"] += run.execution.block_hits
    summary["store"] = persistent.summary()
    json.dump(summary, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
