"""Example 1 from the paper: the advertising-audience ACQ (Q1').

A campaign manager must reach a fixed audience size. Her demographic
filters are precise but the estimated reach falls short, so the query
must be refined as little as possible until COUNT hits the budgeted
audience — including relaxing the categorical city filter through a
location ontology (paper section 7.3 / Figure 7b).

Run:  python examples/ad_campaign.py
"""

from repro import Acquire, AcquireConfig, MemoryBackend, parse_acq
from repro.datagen.synthetic import users_table
from repro.workloads.templates import location_ontology


def main() -> None:
    db = users_table(n=50_000, seed=2024)

    # Audience goal: 2,000 users — about 2.5x what the filters reach
    # today, the same shortfall ratio as the paper's Facebook example
    # (393,980 estimated vs 1M budgeted). Interests are fixed
    # (NOREFINE), the rest may stretch.
    acq = parse_acq(
        """
        SELECT * FROM users
        CONSTRAINT COUNT(*) = 2000
        WHERE city IN ('Boston', 'NewYork', 'Seattle')
          AND age <= 35
          AND income <= 100000
          AND interest IN ('Retail', 'Shopping') NOREFINE
        """,
        db,
        ontologies={"users.city": location_ontology()},
    )
    print("Campaign ACQ:")
    print(acq.describe())

    result = Acquire(MemoryBackend(db)).run(
        acq, AcquireConfig(gamma=12.0, delta=0.05)
    )
    print()
    print(result.summary())

    best = result.best
    print("\nRecommended audience definition:")
    for predicate, score in zip(acq.refinable_predicates, best.pscores):
        marker = "*" if score > 0 else " "
        print(f" {marker} {predicate.describe(score)}  "
              f"(refined by {max(score, 0):.1f}%)")
    for predicate in acq.fixed_predicates:
        print(f"   {predicate.describe()}  (NOREFINE)")
    print(f"\nEstimated reach: {best.aggregate_value:,.0f} users "
          f"(target 2,000; error {best.error:.1%})")


if __name__ == "__main__":
    main()
