"""Contracting a query that returns too much (paper section 7.2).

The inverse problem: an analyst's export is capped at 2,000 rows but
the query matches far more. ACQUIRE shrinks the predicates as little
as possible (constraint operators <= / < select the contraction path;
an over-shooting equality constraint is routed there automatically).

Run:  python examples/contraction_too_many.py
"""

import numpy as np

from repro import Acquire, AcquireConfig, Database, MemoryBackend, parse_acq


def main() -> None:
    rng = np.random.default_rng(31)
    db = Database("logs")
    db.create_table(
        "events",
        {
            "latency_ms": np.round(rng.gamma(2.0, 40.0, 60_000), 1),
            "payload_kb": np.round(rng.uniform(0.0, 512.0, 60_000), 1),
        },
    )

    acq = parse_acq(
        """
        SELECT * FROM events
        CONSTRAINT COUNT(*) <= 2000
        WHERE latency_ms <= 200 AND payload_kb <= 256
        """,
        db,
    )
    print("Input ACQ (over-full):")
    print(acq.describe())

    result = Acquire(MemoryBackend(db)).run(
        acq, AcquireConfig(gamma=10.0, delta=0.05)
    )
    print()
    print(result.summary())
    best = result.best
    print("\nContracted filters (negative PScore = shrinkage):")
    for predicate, score, interval in zip(
        acq.refinable_predicates, best.pscores, best.intervals
    ):
        print(f"  {predicate.name}: shrink {abs(min(score, 0)):.1f}% "
              f"-> {interval}")
    print(f"\nRows now returned: {best.aggregate_value:,.0f} (cap 2,000)")


if __name__ == "__main__":
    main()
