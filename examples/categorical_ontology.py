"""Categorical predicates over ontology trees (paper section 7.3).

Reproduces Figure 7's restaurant scenario: a query for places serving
Gyro relaxes level by level — first to all Middle-Eastern cuisine, then
to anything in the taxonomy — until enough restaurants are found.

Run:  python examples/categorical_ontology.py
"""

import numpy as np

from repro import (
    Acquire,
    AcquireConfig,
    CategoricalPredicate,
    Database,
    Interval,
    MemoryBackend,
    Query,
    SelectPredicate,
    col,
)
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.predicate import Direction
from repro.core.query import AggregateConstraint, ConstraintOp
from repro.workloads.templates import cuisine_ontology


def main() -> None:
    tree = cuisine_ontology()
    print("Cuisine taxonomy (Figure 7a):")
    for node in sorted(tree.nodes, key=tree.depth_of):
        print("  " * tree.depth_of(node) + node)

    rng = np.random.default_rng(11)
    leaves = sorted(
        node for node in tree.nodes
        if not tree.leaves_under(node) - {node}
    )
    db = Database("city_guide")
    db.create_table(
        "restaurants",
        {
            "cuisine": rng.choice(np.array(leaves, dtype=object), 5000),
            "rating": np.round(rng.uniform(1.0, 5.0, 5000), 1),
        },
    )

    predicates = [
        CategoricalPredicate(
            name="cuisine",
            column=col("restaurants.cuisine"),
            accepted=frozenset({"Gyro"}),
            ontology=tree,
        ),
        SelectPredicate(
            name="rating",
            expr=col("restaurants.rating"),
            interval=Interval(4.0, 5.0),
            direction=Direction.LOWER,
            denominator=4.0,
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 1500
    )
    acq = Query.build("gyro_hunt", ("restaurants",), predicates, constraint)
    print("\nInput ACQ:")
    print(acq.describe())

    result = Acquire(MemoryBackend(db)).run(
        acq, AcquireConfig(gamma=20.0, delta=0.1)
    )
    print()
    print(result.summary())
    best = result.best
    cuisine_pred, rating_pred = acq.refinable_predicates
    print("\nRecommended relaxation:")
    print(f"  cuisines: {sorted(cuisine_pred.accepted_at(best.pscores[0]))}")
    print(f"  rating:   {rating_pred.describe(best.pscores[1])}")
    print(f"  restaurants matched: {best.aggregate_value:g} (target 1500)")


if __name__ == "__main__":
    main()
