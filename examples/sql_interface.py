"""The ACQ SQL dialect end to end (paper section 2.1).

Parses dialect text with CONSTRAINT / NOREFINE / magnitude suffixes /
chained comparisons, shows the bound query model, formats it back, and
prints the plain-SQL rendering of ACQUIRE's recommended refinement —
exactly what a user would paste into their production database.

Run:  python examples/sql_interface.py
"""

import numpy as np

from repro import (
    Acquire,
    AcquireConfig,
    Database,
    MemoryBackend,
    format_query,
    format_refined_query,
    parse_acq,
)

DIALECT_TEXT = """
SELECT * FROM patients
CONSTRAINT AVG(cost) = 4K
WHERE 40 <= age <= 70
  AND visits >= 3
  AND (insured = 1) NOREFINE
"""


def main() -> None:
    rng = np.random.default_rng(5)
    db = Database("clinic")
    ages = rng.integers(18, 95, 30_000)
    db.create_table(
        "patients",
        {
            "age": ages,
            "visits": rng.poisson(4, 30_000),
            "insured": rng.integers(0, 2, 30_000),
            # Cost correlates with age so the AVG constraint is
            # sensitive to how the age range refines.
            "cost": np.round(ages * 80.0 + rng.exponential(800.0, 30_000), 2),
        },
    )

    print("== dialect text ==")
    print(DIALECT_TEXT.strip())

    acq = parse_acq(DIALECT_TEXT, db)
    print("\n== bound query model ==")
    print(acq.describe())
    print(f"\ndimensionality: {acq.dimensionality} "
          f"(range split into two one-sided predicates, "
          f"NOREFINE pinned)")

    print("\n== formatted back to the dialect ==")
    print(format_query(acq))

    result = Acquire(MemoryBackend(db)).run(
        acq, AcquireConfig(gamma=10.0, delta=0.03)
    )
    print("\n== ACQUIRE ==")
    print(result.summary())
    print("\n== recommended plain SQL ==")
    print(format_refined_query(result.best))


if __name__ == "__main__":
    main()
