"""Example 2 from the paper: the supply-chain ACQ (Q2') on TPC-H.

HybridCars needs 100,000 units of a part: a three-way join between
supplier, part and partsupp where the equi-joins are NOREFINE and the
price/balance filters may relax until SUM(ps_availqty) covers the
order. Also contrasts ACQUIRE with the baseline techniques on the
COUNT version of the same query.

Run:  python examples/supply_chain.py
"""

from repro import Acquire, AcquireConfig, SQLiteBackend
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.harness.runner import run_method
from repro.workloads.generator import build_ratio_workload
from repro.workloads.templates import (
    Q2_JOINS,
    Q2_TABLES,
    q2_flex_specs,
    q2_prime_query,
)


def main() -> None:
    db = generate_tpch(
        TPCHConfig(scale_rows=20_000,
                   tables=("supplier", "part", "partsupp"))
    )
    layer = SQLiteBackend(db)

    # --- The paper's Q2': SUM(ps_availqty) >= 100,000 ---------------
    acq = q2_prime_query(db, target=100_000)
    print("Q2' —", acq.constraint.describe())
    result = Acquire(layer).run(acq, AcquireConfig(gamma=10.0, delta=0.02))
    print(result.summary())
    best = result.best
    print("\nRefined sourcing filters:")
    for predicate, score in zip(acq.refinable_predicates, best.pscores):
        print(f"  {predicate.describe(score)}")
    print(f"Available quantity secured: {best.aggregate_value:,.0f}")

    # --- COUNT variant: every technique side by side ------------------
    print("\n--- methods compared on the COUNT variant ---")
    workload = build_ratio_workload(
        db,
        Q2_TABLES,
        q2_flex_specs(3, 0.25),
        ratio=0.3,
        joins=Q2_JOINS,
        name="q2_count",
    )
    print(f"original COUNT = {workload.original_value:g}, "
          f"target = {workload.target:g}")
    header = f"{'method':<10} {'time_ms':>9} {'error':>8} {'QScore':>8}"
    print(header)
    for method in ("ACQUIRE", "Top-k", "BinSearch", "TQGen"):
        run = run_method(method, layer, workload.query)
        print(
            f"{method:<10} {run.elapsed_s * 1000:>9.1f} "
            f"{run.error:>8.4f} {run.qscore:>8.2f}"
        )


if __name__ == "__main__":
    main()
