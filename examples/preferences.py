"""Refinement preferences: weights and limits (paper section 7.1).

"ACQUIRE allows users to set preferences on which predicates should be
refined ... by specifying a LWp norm which sets appropriate weights on
various predicates. Similarly, users can also supply maximum refinement
limits on predicates."

Three runs of the same ACQ: neutral, with the price predicate made
expensive to refine (weight 5), and with a hard 5% cap on it — watch
the refinement burden shift to the rating predicate.

Run:  python examples/preferences.py
"""

import numpy as np

from repro import (
    Acquire,
    AcquireConfig,
    Database,
    Interval,
    MemoryBackend,
    Query,
    SelectPredicate,
    col,
)
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.predicate import Direction
from repro.core.query import AggregateConstraint, ConstraintOp


def build_query(price_weight=1.0, price_limit=None) -> Query:
    predicates = [
        SelectPredicate(
            name="price",
            expr=col("products.price"),
            interval=Interval(0.0, 40.0),
            direction=Direction.UPPER,
            denominator=200.0,
            weight=price_weight,
            limit=price_limit,
        ),
        SelectPredicate(
            name="rating",
            expr=col("products.rating"),
            interval=Interval(4.0, 5.0),
            direction=Direction.LOWER,
            denominator=4.0,
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 3000
    )
    return Query.build("prefs", ("products",), predicates, constraint)


def main() -> None:
    rng = np.random.default_rng(41)
    db = Database("shop")
    db.create_table(
        "products",
        {
            "price": np.round(rng.uniform(0, 200, 20_000), 2),
            "rating": np.round(rng.uniform(1, 5, 20_000), 2),
        },
    )
    config = AcquireConfig(gamma=10.0, delta=0.05)
    scenarios = [
        ("neutral (equal weights)", build_query()),
        ("price weighted 5x (LW1 norm)", build_query(price_weight=5.0)),
        ("price capped at 5% refinement", build_query(price_limit=5.0)),
    ]
    print(f"{'scenario':<32} {'price expands':>14} {'rating expands':>15} "
          f"{'COUNT':>6}")
    for label, query in scenarios:
        result = Acquire(MemoryBackend(db)).run(query, config)
        best = result.best
        price_score = max(best.pscores[0], 0.0)
        rating_score = max(best.pscores[1], 0.0)
        print(
            f"{label:<32} {price_score:>13.1f}% {rating_score:>14.1f}% "
            f"{best.aggregate_value:>6.0f}"
        )
    print("\nHeavier weight / hard limit on `price` pushes the expansion "
          "onto `rating`, at the cost of a higher raw refinement total.")


if __name__ == "__main__":
    main()
