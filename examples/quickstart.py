"""Quickstart: process one Aggregation Constrained Query end to end.

Builds a small synthetic table, states an ACQ in the paper's SQL
dialect (CONSTRAINT / NOREFINE), runs ACQUIRE, and prints the refined
queries it recommends.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Acquire,
    AcquireConfig,
    Database,
    MemoryBackend,
    format_refined_query,
    parse_acq,
)


def main() -> None:
    # 1. A products table: 10,000 rows of price/rating/stock.
    rng = np.random.default_rng(7)
    db = Database("shop")
    db.create_table(
        "products",
        {
            "price": np.round(rng.uniform(1.0, 500.0, 10_000), 2),
            "rating": np.round(rng.uniform(1.0, 5.0, 10_000), 2),
            "stock": rng.integers(0, 100, 10_000),
        },
    )

    # 2. The user wants ~1,000 products, but their filters are too
    #    strict. The stock filter is business-critical: NOREFINE.
    acq = parse_acq(
        """
        SELECT * FROM products
        CONSTRAINT COUNT(*) = 1000
        WHERE price <= 50
          AND rating >= 4.5
          AND (stock >= 1) NOREFINE
        """,
        db,
    )
    print("Input ACQ:")
    print(acq.describe())
    print()

    # 3. Run ACQUIRE: gamma bounds how far answers may drift from the
    #    optimum, delta is the acceptable aggregate error.
    result = Acquire(MemoryBackend(db)).run(
        acq, AcquireConfig(gamma=10.0, delta=0.05)
    )

    # 4. Inspect the outcome.
    print(result.summary())
    print()
    print(f"Alternatives in the minimal-refinement layer: "
          f"{len(result.answers)}")
    print(result.alternatives_table())
    for index, answer in enumerate(result.answers[:3], start=1):
        print(f"\n--- alternative {index} "
              f"(COUNT={answer.aggregate_value:g}, "
              f"QScore={answer.qscore:.2f}) ---")
        print(format_refined_query(answer))


if __name__ == "__main__":
    main()
