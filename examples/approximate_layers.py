"""Swapping the evaluation layer: exact, sampling, estimation (paper §3).

ACQUIRE never touches tuples itself — it delegates every cell/box query
to an evaluation layer. This example runs the identical ACQ through
four layers and validates each layer's recommendation against exact
execution, showing the cost/accuracy trade the paper's modularity
enables.

Run:  python examples/approximate_layers.py
"""

from repro import Acquire, AcquireConfig, MemoryBackend, SQLiteBackend
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.engine.histogram_backend import HistogramBackend
from repro.engine.sampling import SamplingBackend
from repro.workloads.generator import build_ratio_workload
from repro.workloads.templates import Q2_JOINS, Q2_TABLES, q2_flex_specs


def main() -> None:
    db = generate_tpch(
        TPCHConfig(scale_rows=30_000,
                   tables=("supplier", "part", "partsupp"))
    )
    workload = build_ratio_workload(
        db, Q2_TABLES, q2_flex_specs(3, 0.2), ratio=0.3, joins=Q2_JOINS
    )
    print(f"ACQ: {workload.query.constraint.describe()} "
          f"(original {workload.original_value:g})")

    config = AcquireConfig(gamma=10.0, delta=0.05)
    validator = MemoryBackend(db)
    validator_prepared = validator.prepare(workload.query, [400.0] * 3)

    layers = [
        ("exact / memory", MemoryBackend(db)),
        ("exact / sqlite", SQLiteBackend(db)),
        ("10% sample of partsupp",
         SamplingBackend(db, 0.1, seed=1, tables=("partsupp",))),
        ("histogram estimation", HistogramBackend(db)),
    ]
    print(f"\n{'layer':<24} {'time_ms':>8} {'claimed_A':>10} "
          f"{'true_A':>8} {'true_err':>9}")
    for name, layer in layers:
        result = Acquire(layer).run(workload.query, config)
        best = result.best
        true_value = validator.execute_box(
            validator_prepared, best.pscores
        )[0]
        true_error = abs(workload.target - true_value) / workload.target
        print(
            f"{name:<24} {result.stats.elapsed_s * 1000:>8.1f} "
            f"{best.aggregate_value:>10.1f} {true_value:>8.0f} "
            f"{true_error:>9.2%}"
        )
    print("\nApproximate layers trade validated accuracy for speed; the "
          "search itself is unchanged.")


if __name__ == "__main__":
    main()
