#!/usr/bin/env python
"""Repo-specific invariant lint (stdlib-ast, no third-party deps).

Enforced invariants over ``src/repro``:

I1  sqlite3 isolation — only modules under ``src/repro/engine/`` may
    import :mod:`sqlite3` (directly or via ``from sqlite3 import``).
    Everything else must go through the evaluation-layer API or the
    :mod:`repro.engine.sqlite_util` seam, so backends stay swappable.

I2  typed exceptions — every ``raise`` must construct an exception
    class defined in :mod:`repro.exceptions` (the class list is parsed
    from that file, so new exception types are picked up
    automatically). Allowed besides those:

    * bare ``raise`` (re-raise inside an ``except`` block);
    * re-raising a local variable (lowercase name, e.g. ``raise exc``);
    * ``raise NotImplementedError`` (abstract-method convention);
    * ``raise AttributeError`` inside a module-level ``__getattr__``
      (the lazy-import protocol requires it).

Run ``python tools/lint_invariants.py``; exits non-zero and prints
``path:line: message`` for each violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
ENGINE = SRC / "engine"
EXCEPTIONS_MODULE = SRC / "exceptions.py"

#: Exceptions permitted everywhere in addition to repro.exceptions.
GLOBAL_ALLOWLIST = frozenset({"NotImplementedError"})


def repro_exception_names() -> frozenset[str]:
    """Class names defined at the top level of repro/exceptions.py."""
    tree = ast.parse(EXCEPTIONS_MODULE.read_text(encoding="utf-8"))
    return frozenset(
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    )


def raised_name(node: ast.Raise) -> str | None:
    """The root identifier of a raise, or None for bare re-raise."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return "<expression>"


class InvariantChecker(ast.NodeVisitor):
    def __init__(self, path: Path, allowed: frozenset[str]) -> None:
        self.path = path
        self.allowed = allowed
        self.in_engine = ENGINE in path.parents or path.parent == ENGINE
        self.violations: list[tuple[int, str]] = []
        self._function_stack: list[str] = []

    # -- I1: sqlite3 isolation -----------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_sqlite(alias.name, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self._check_sqlite(node.module, node.lineno)
        self.generic_visit(node)

    def _check_sqlite(self, module: str, lineno: int) -> None:
        if module.split(".")[0] == "sqlite3" and not self.in_engine:
            self.violations.append(
                (
                    lineno,
                    "I1: sqlite3 may only be imported under "
                    "src/repro/engine/ (use the evaluation-layer API "
                    "or repro.engine.sqlite_util)",
                )
            )

    # -- I2: typed exceptions ------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_Raise(self, node: ast.Raise) -> None:
        name = raised_name(node)
        ok = (
            name is None
            or name in self.allowed
            or name in GLOBAL_ALLOWLIST
            or (name[:1].islower() and name != "<expression>")
            or (
                name == "AttributeError"
                and self._function_stack[-1:] == ["__getattr__"]
            )
        )
        if not ok:
            self.violations.append(
                (
                    node.lineno,
                    f"I2: raise {name} — raise a class from "
                    "repro.exceptions instead",
                )
            )
        self.generic_visit(node)


def check_file(path: Path, allowed: frozenset[str]) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    checker = InvariantChecker(path, allowed)
    checker.visit(tree)
    relative = path.relative_to(REPO_ROOT)
    return [
        f"{relative}:{lineno}: {message}"
        for lineno, message in checker.violations
    ]


def main() -> int:
    allowed = repro_exception_names()
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(check_file(path, allowed))
    for line in problems:
        print(line)
    if problems:
        print(f"{len(problems)} invariant violation(s)", file=sys.stderr)
        return 1
    print("invariants ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
