# Canonical developer commands for the ACQUIRE reproduction.

.PHONY: install test bench experiments examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.harness all --save

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
