# Canonical developer commands for the ACQUIRE reproduction.

.PHONY: install test test-fast test-cov corpus-gate corpus-rebuild bench bench-smoke bench-parallel bench-service experiments examples clean lint lint-engine typecheck

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Tier-1 minus the slow corpus/differential tests (docs/CORPUS.md)
# and the worker-process-pool suites (spawn cost dominates).
test-fast:
	pytest tests/ -m "not slow and not procpool"

# Coverage floor on the refinement core + SQL extension (CI enforces
# it with pytest-cov installed; skipped locally when the plugin is
# missing so offline checkouts still have a working target).
test-cov:
	@if python -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src python -m pytest -q \
			--cov=src/repro/core --cov=src/repro/sqlext \
			--cov-report=term-missing --cov-fail-under=75; \
	else \
		echo "pytest-cov not installed; skipping coverage gate (CI runs it)"; \
	fi

# Quality-regression gate: replays every committed gold-standard
# triple (tests/corpus/data/corpus_manifest.json) through all four
# explore backends and asserts 100% oracle-optimality plus stable
# top-k rankings. See docs/CORPUS.md.
corpus-gate:
	PYTHONPATH=src python -m repro.corpus gate

# Regenerate the committed manifest (only after a deliberate scoring
# or corpus change; the diff is the review artifact).
corpus-rebuild:
	PYTHONPATH=src python -m repro.corpus rebuild

# Engine-invariant lint always runs (see docs/ANALYSIS.md: EL1xx
# purity, EL2xx locks, EL3xx exceptions/imports, EL4xx stats drift);
# ruff is skipped with a notice when not installed so offline
# checkouts still get the gate.
lint: lint-engine
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
	else \
		echo "ruff not installed; skipping style lint (CI runs it)"; \
	fi

# Fails on any finding not covered by tools/engine_lint_baseline.txt.
lint-engine:
	PYTHONPATH=src python -m repro lint --engine

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type check (CI runs it)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

# Dependency-light benchmark gate (also run by CI): emits and validates
# BENCH_layers.json + BENCH_explore.json, including the materialized
# round-trip regression guard against BENCH_explore_baseline.json.
bench-smoke:
	python benchmarks/smoke.py

# Sharded-tile + persistent-cache gates only: bit-identical block
# states at every worker count on both executor tiers (thread and
# process), wall-clock sanity vs serial, the GIL-escape speedup gate
# on >=4-core hosts, and a warm cross-process cache run issuing
# strictly fewer backend queries (regression-guarded by
# BENCH_parallel_baseline.json).
bench-parallel:
	python benchmarks/smoke.py --parallel-only

# ACQ-as-a-service gates only: closed-loop p50/p99 + throughput vs
# worker count (the 2x worker-scaling gate binds on >=4-core hosts),
# cross-request shared-cache dedupe on the corpus arms, and the serial
# replay's backend-query total regression-guarded by
# BENCH_service_baseline.json. See docs/SERVICE.md.
bench-service:
	python benchmarks/smoke.py --service-only

experiments:
	python -m repro.harness all --save

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
