"""Tests for the CSV command-line interface."""

import csv

import numpy as np
import pytest

from repro.cli import load_csv, main
from repro.engine.catalog import Database
from repro.engine.schema import ColumnType
from repro.exceptions import DataGenError, ReproError


@pytest.fixture()
def users_csv(tmp_path):
    path = tmp_path / "users.csv"
    rng = np.random.default_rng(0)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["age", "income", "city"])
        for _ in range(2000):
            writer.writerow(
                [
                    int(rng.integers(18, 80)),
                    round(float(rng.uniform(1e4, 2e5)), 2),
                    str(rng.choice(["Boston", "NYC", "LA"])),
                ]
            )
    return str(path)


class TestLoadCSV:
    def test_type_inference(self, users_csv):
        database = Database()
        load_csv(database, "users", users_csv)
        schema = database.table("users").schema
        assert schema.column("age").ctype is ColumnType.INT
        assert schema.column("income").ctype is ColumnType.FLOAT
        assert schema.column("city").ctype is ColumnType.STR
        assert len(database.table("users")) == 2000

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataGenError, match="empty"):
            load_csv(Database(), "t", str(path))

    def test_empty_cells_rejected(self, tmp_path):
        path = tmp_path / "holes.csv"
        path.write_text("a,b\n1,\n2,3\n")
        with pytest.raises(DataGenError, match="empty cells"):
            load_csv(Database(), "t", str(path))


class TestMain:
    SQL = (
        "SELECT * FROM users CONSTRAINT COUNT(*) = 500 "
        "WHERE age <= 30 AND income <= 60000"
    )

    def test_satisfied_run_exits_zero(self, users_csv, capsys):
        code = main(["--csv", f"users={users_csv}", self.SQL])
        output = capsys.readouterr().out
        assert code == 0
        assert "satisfied=True" in output
        assert "SELECT * FROM users" in output

    def test_show_rows(self, users_csv, capsys):
        code = main(
            ["--csv", f"users={users_csv}", "--show-rows", "2", self.SQL]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "users.age=" in output

    def test_sqlite_backend_and_norm(self, users_csv, capsys):
        code = main(
            [
                "--csv", f"users={users_csv}",
                "--backend", "sqlite",
                "--norm", "linf",
                self.SQL,
            ]
        )
        assert code == 0
        assert "satisfied=True" in capsys.readouterr().out

    def test_unsatisfiable_exits_one(self, users_csv, capsys):
        sql = (
            "SELECT * FROM users CONSTRAINT COUNT(*) = 900000 "
            "WHERE age <= 30 AND income <= 60000"
        )
        code = main(["--csv", f"users={users_csv}", "--gamma", "40", sql])
        assert code == 1
        assert "satisfied=False" in capsys.readouterr().out

    def test_no_tables_is_error(self, capsys):
        assert main([self.SQL]) == 2
        assert "no tables" in capsys.readouterr().err

    def test_bad_csv_spec(self):
        with pytest.raises(ReproError, match="NAME=PATH"):
            main(["--csv", "nonsense", self.SQL])

    def test_bad_norm(self, users_csv):
        with pytest.raises(ReproError, match="unknown norm"):
            main(["--csv", f"users={users_csv}", "--norm", "manhattan",
                  self.SQL])
