"""Every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_satisfaction():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "satisfied=True" in completed.stdout
    assert "SELECT * FROM products" in completed.stdout
