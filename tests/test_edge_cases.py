"""Edge cases through the full pipeline: tiny, degenerate, hostile."""

import math

import numpy as np

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.query import ConstraintOp
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.sqlext import parse_acq
from tests.conftest import count_query

CONFIG = AcquireConfig(gamma=10.0, delta=0.05)


def _db(**columns) -> Database:
    database = Database()
    database.create_table("data", columns)
    return database


class TestTinyTables:
    def test_empty_table(self):
        database = _db(x=np.array([]), y=np.array([]))
        query = count_query("data", {"x": 10.0, "y": 10.0}, target=5)
        for layer in (MemoryBackend(database), SQLiteBackend(database)):
            result = Acquire(layer).run(query, CONFIG)
            assert not result.satisfied
            assert result.original_value == 0.0

    def test_single_row(self):
        database = _db(x=np.array([5.0]), y=np.array([5.0]))
        query = count_query("data", {"x": 10.0, "y": 10.0}, target=1)
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied
        assert result.best.qscore == 0.0

    def test_all_identical_values(self):
        database = _db(x=np.full(50, 7.0), y=np.full(50, 7.0))
        query = count_query("data", {"x": 10.0, "y": 10.0}, target=50)
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied
        assert result.best.aggregate_value == 50

    def test_target_between_discrete_jumps(self):
        """With 3 identical tuples, COUNT jumps 0 -> 3; target 2 with a
        tight delta is unattainable and the closest query is reported."""
        database = _db(x=np.array([20.0, 20.0, 20.0]), y=np.zeros(3))
        query = count_query("data", {"x": 10.0, "y": 10.0}, target=2)
        result = Acquire(MemoryBackend(database)).run(
            query, AcquireConfig(gamma=10, delta=0.01)
        )
        assert not result.satisfied
        assert result.best.aggregate_value in (0.0, 3.0)


class TestHostileValues:
    def test_negative_attribute_values(self):
        rng = np.random.default_rng(1)
        database = _db(
            x=rng.uniform(-100, 0, 500), y=rng.uniform(-100, 0, 500)
        )
        query = count_query(
            "data", {"x": -70.0, "y": -70.0}, target=300, lo=-100.0,
            domain_hi=0.0,
        )
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied

    def test_very_large_values(self):
        rng = np.random.default_rng(2)
        database = _db(
            x=rng.uniform(0, 1e12, 500), y=rng.uniform(0, 1e12, 500)
        )
        query = count_query(
            "data",
            {"x": 3e11, "y": 3e11},
            target=300,
            domain_hi=1e12,
        )
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied

    def test_integer_columns(self):
        rng = np.random.default_rng(3)
        database = _db(
            x=rng.integers(0, 100, 1000), y=rng.integers(0, 100, 1000)
        )
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=300)
        memory = Acquire(MemoryBackend(database)).run(query, CONFIG)
        sqlite = Acquire(SQLiteBackend(database)).run(query, CONFIG)
        assert memory.best.aggregate_value == sqlite.best.aggregate_value


class TestDegenerateConstraints:
    def test_target_zero_ge(self):
        database = _db(x=np.array([1.0, 2.0]), y=np.array([1.0, 2.0]))
        query = count_query(
            "data", {"x": 10.0, "y": 10.0}, target=0.0, op=ConstraintOp.GE
        )
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied
        assert result.best.qscore == 0.0

    def test_single_dimension_query(self):
        rng = np.random.default_rng(4)
        database = _db(x=rng.uniform(0, 100, 800), y=np.zeros(800))
        query = count_query("data", {"x": 30.0}, target=600)
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        assert result.satisfied
        assert len(result.best.pscores) == 1

    def test_dialect_with_unsatisfiable_fixed_filter(self):
        rng = np.random.default_rng(5)
        database = _db(x=rng.uniform(0, 100, 500), y=rng.uniform(0, 100, 500))
        acq = parse_acq(
            "SELECT * FROM data CONSTRAINT COUNT(*) = 100 "
            "WHERE x <= 30 AND (y <= -5) NOREFINE",
            database,
        )
        result = Acquire(MemoryBackend(database)).run(acq, CONFIG)
        assert not result.satisfied
        assert result.original_value == 0.0

    def test_nan_free_outputs(self):
        rng = np.random.default_rng(6)
        database = _db(x=rng.uniform(0, 100, 300), y=rng.uniform(0, 100, 300))
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=250)
        result = Acquire(MemoryBackend(database)).run(query, CONFIG)
        best = result.best
        assert not math.isnan(best.qscore)
        assert not math.isnan(best.aggregate_value)
        assert all(not math.isnan(score) for score in best.pscores)
