"""Cross-module integration stories.

Each test walks a complete user journey through the public API:
dialect text -> binder -> ACQUIRE -> refined SQL, on both evaluation
layers, including the paper's own example queries.
"""

import sqlite3

import numpy as np
import pytest

from repro import (
    Acquire,
    AcquireConfig,
    Database,
    LInfNorm,
    MemoryBackend,
    SQLiteBackend,
    format_refined_query,
    parse_acq,
)
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.workloads.templates import q2_prime_query


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(
        TPCHConfig(scale_rows=2000,
                   tables=("supplier", "part", "partsupp"))
    )


class TestDialectToRefinedSQL:
    def test_full_pipeline_on_both_backends(self):
        rng = np.random.default_rng(17)
        database = Database()
        database.create_table(
            "sales",
            {
                "amount": np.round(rng.uniform(0, 1000, 4000), 2),
                "margin": np.round(rng.uniform(0, 0.5, 4000), 4),
            },
        )
        acq = parse_acq(
            "SELECT * FROM sales CONSTRAINT COUNT(*) = 800 "
            "WHERE amount <= 200 AND margin <= 0.1",
            database,
        )
        results = {}
        for name, layer in (
            ("memory", MemoryBackend(database)),
            ("sqlite", SQLiteBackend(database)),
        ):
            results[name] = Acquire(layer).run(
                acq, AcquireConfig(gamma=10, delta=0.05)
            )
        assert results["memory"].satisfied
        assert results["sqlite"].satisfied
        assert results["memory"].best.qscore == pytest.approx(
            results["sqlite"].best.qscore
        )
        assert results["memory"].best.aggregate_value == pytest.approx(
            results["sqlite"].best.aggregate_value
        )

    def test_refined_sql_executes_with_promised_count(self):
        rng = np.random.default_rng(23)
        database = Database()
        database.create_table(
            "m", {"a": rng.uniform(0, 10, 2000), "b": rng.uniform(0, 10, 2000)}
        )
        acq = parse_acq(
            "SELECT * FROM m CONSTRAINT COUNT(*) = 700 "
            "WHERE a <= 3 AND b <= 3",
            database,
        )
        result = Acquire(MemoryBackend(database)).run(
            acq, AcquireConfig(gamma=8, delta=0.05)
        )
        assert result.satisfied
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE m (a REAL, b REAL)")
        table = database.table("m")
        connection.executemany(
            "INSERT INTO m VALUES (?, ?)",
            zip(table.column("a").tolist(), table.column("b").tolist()),
        )
        for answer in result.answers:
            sql = format_refined_query(answer).replace(
                "SELECT *", "SELECT COUNT(*)", 1
            )
            count = connection.execute(sql).fetchone()[0]
            assert count == answer.aggregate_value


class TestPaperQ2Pipeline:
    def test_q2_prime_join_workload(self, tpch):
        """Example 2 end to end: joins with NOREFINE, SUM constraint."""
        acq = q2_prime_query(tpch, target=150_000)
        for layer in (MemoryBackend(tpch), SQLiteBackend(tpch)):
            result = Acquire(layer).run(
                acq, AcquireConfig(gamma=10, delta=0.05)
            )
            assert result.best is not None
            if result.satisfied:
                assert result.best.aggregate_value >= 150_000 * 0.95
        # NOREFINE join predicates were never altered: the refined
        # dimensions only cover the two select predicates.
        assert len(result.best.pscores) == 2

    def test_dialect_q2_matches_programmatic(self, tpch):
        text = """
        SELECT * FROM supplier, part, partsupp
        CONSTRAINT SUM(ps_availqty) >= 0.15M
        WHERE (s_suppkey = ps_suppkey) NOREFINE AND
              (p_partkey = ps_partkey) NOREFINE AND
              (p_retailprice < 1000) AND (s_acctbal < 2000)
        """
        parsed = parse_acq(text, tpch)
        assert parsed.dimensionality == 2
        assert len(parsed.join_predicates) == 2
        assert all(not j.refinable for j in parsed.join_predicates)
        result = Acquire(MemoryBackend(tpch)).run(
            parsed, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.best is not None


class TestNormChoiceEndToEnd:
    def test_linf_traversal_full_run(self):
        rng = np.random.default_rng(29)
        database = Database()
        database.create_table(
            "t", {"x": rng.uniform(0, 100, 3000), "y": rng.uniform(0, 100, 3000)}
        )
        acq = parse_acq(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 900 "
            "WHERE x <= 30 AND y <= 30",
            database,
        )
        result = Acquire(MemoryBackend(database)).run(
            acq,
            AcquireConfig(gamma=10, delta=0.05, norm=LInfNorm(),
                          traversal="linf"),
        )
        assert result.satisfied
        # Under L-inf the answer's QScore is its max per-dim PScore.
        best = result.best
        assert best.qscore == pytest.approx(max(best.pscores))


class TestStatsConsistency:
    def test_work_counters_add_up(self, tpch):
        acq = q2_prime_query(tpch, target=120_000)
        layer = MemoryBackend(tpch)
        result = Acquire(layer).run(acq, AcquireConfig(gamma=10, delta=0.05))
        stats = result.stats
        assert stats.cells_executed <= stats.grid_queries_examined + 1
        assert (
            stats.execution.cell_queries == stats.cells_executed
        )
        assert stats.execution.queries_executed == (
            stats.execution.cell_queries + stats.execution.box_queries
        )
