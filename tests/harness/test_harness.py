"""Tests for the experiment harness (metrics, runner, report, CLI)."""

import math
import os

import pytest

from repro.baselines.base import MethodRun
from repro.engine.backends import ExecutionStats
from repro.harness.experiments import (
    binsearch_order_sensitivity,
    fig8_aggregate_ratio,
    fig10b_refinement_threshold,
    table1_capabilities,
)
from repro.harness.metrics import ExperimentResult, Row
from repro.harness.report import render_result, render_rows, save_result
from repro.harness.runner import (
    baseline_for,
    make_backend,
    run_acquire,
    run_method,
)
from repro.exceptions import ReproError
from tests.conftest import count_query


def _run(method="M", time_ms=10.0, qscore=5.0, x=0.5):
    return Row(
        x_name="ratio",
        x_value=x,
        method=method,
        time_ms=time_ms,
        error=0.01,
        qscore=qscore,
        aggregate_value=100.0,
        queries=3,
        rows_scanned=10,
        satisfied=True,
    )


class TestMetrics:
    def test_row_from_run(self):
        run = MethodRun(
            method="ACQUIRE",
            aggregate_value=90.0,
            error=0.1,
            qscore=12.0,
            pscores=(6.0, 6.0),
            elapsed_s=0.25,
            execution=ExecutionStats(queries_executed=7, rows_scanned=40),
            satisfied=False,
            details={"cells": 5},
        )
        row = Row.from_run("ratio", 0.3, run)
        assert row.time_ms == 250.0
        assert row.queries == 7
        assert row.extra["cells"] == 5

    def test_series_and_methods(self):
        result = ExperimentResult(
            "x", "t", "p",
            rows=[_run("A", x=0.1), _run("B", x=0.1), _run("A", x=0.5)],
        )
        assert result.methods() == ["A", "B"]
        assert result.series("A", "time_ms") == [(0.1, 10.0), (0.5, 10.0)]

    def test_speedup_geo_mean(self):
        rows = [
            _run("ACQUIRE", time_ms=10.0, x=0.1),
            _run("SLOW", time_ms=40.0, x=0.1),
            _run("ACQUIRE", time_ms=10.0, x=0.5),
            _run("SLOW", time_ms=90.0, x=0.5),
        ]
        result = ExperimentResult("x", "t", "p", rows=rows)
        assert result.speedup("time_ms", "SLOW") == pytest.approx(6.0)

    def test_speedup_no_shared_points(self):
        result = ExperimentResult(
            "x", "t", "p", rows=[_run("ACQUIRE", x=0.1), _run("B", x=0.9)]
        )
        assert result.speedup("time_ms", "B") is None


class TestReport:
    def test_render_rows_aligned(self):
        text = render_rows([_run(), _run("Other", time_ms=1234.5)])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 4
        assert "1234.5" in text

    def test_render_result_includes_summary(self):
        rows = [_run("ACQUIRE"), _run("B", time_ms=100.0, qscore=20.0)]
        text = render_result(ExperimentResult("e", "Title", "expect", rows))
        assert "Title" in text
        assert "10.0x ACQUIRE time" in text

    def test_render_handles_inf_nan(self):
        row = _run()
        row.error = math.inf
        row.aggregate_value = math.nan
        text = render_rows([row])
        assert "inf" in text and "nan" in text

    def test_save_result(self, tmp_path):
        result = ExperimentResult("unit", "T", "p", rows=[_run()])
        path = save_result(result, directory=str(tmp_path))
        assert os.path.exists(path)
        assert "T" in open(path).read()


class TestRunner:
    def test_make_backend_kinds(self, small_db):
        from repro.engine.memory_backend import MemoryBackend
        from repro.engine.sqlite_backend import SQLiteBackend

        assert isinstance(make_backend(small_db, "memory"), MemoryBackend)
        assert isinstance(make_backend(small_db, "sqlite"), SQLiteBackend)
        with pytest.raises(ReproError):
            make_backend(small_db, "oracle")

    def test_run_acquire_adapts_result(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=120)
        run = run_acquire(make_backend(small_db, "memory"), query)
        assert run.method == "ACQUIRE"
        assert run.satisfied
        assert run.details["cells"] > 0

    def test_run_method_dispatch(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=120)
        layer = make_backend(small_db, "memory")
        for name in ("ACQUIRE", "Top-k", "TQGen", "BinSearch"):
            run = run_method(name, layer, query)
            assert run.method == name

    def test_baseline_for_unknown(self):
        with pytest.raises(ReproError):
            baseline_for("SimulatedAnnealing")


class TestExperimentsSmallScale:
    """Each experiment runs end to end at toy scale."""

    def test_fig8_rows_complete(self):
        result = fig8_aggregate_ratio(
            scale_rows=600,
            ratios=(0.5,),
            methods=("ACQUIRE", "BinSearch"),
            backend="memory",
        )
        assert {row.method for row in result.rows} == {"ACQUIRE",
                                                       "BinSearch"}
        assert all(row.time_ms > 0 for row in result.rows)

    def test_fig10b_monotone_queries(self):
        result = fig10b_refinement_threshold(
            scale_rows=600, gammas=(4, 12), backend="memory"
        )
        queries = [row.queries for row in result.rows]
        assert queries[0] > queries[1]  # finer grid explores more

    def test_table1_capability_matrix(self):
        result = table1_capabilities(scale_rows=400)
        by_method = {row.method: row for row in result.rows}
        assert set(by_method["ACQUIRE"].extra["aggregates"]) == {
            "COUNT", "SUM", "MIN", "MAX", "AVG",
        }
        for baseline in ("Top-k", "TQGen", "BinSearch"):
            assert by_method[baseline].extra["aggregates"] == ["COUNT"]
        assert by_method["ACQUIRE"].extra["query_output"]
        assert not by_method["Top-k"].extra["query_output"]

    def test_binsearch_order_experiment(self):
        result = binsearch_order_sensitivity(
            scale_rows=600, backend="memory"
        )
        assert len(result.rows) == 6  # 3! orderings
        errors = [row.error for row in result.rows]
        assert max(errors) >= min(errors)


class TestCLI:
    def test_main_runs_named_experiment(self, capsys):
        os.environ["REPRO_BENCH_SCALE"] = "0.05"
        try:
            from repro.harness.__main__ import main

            assert main(["table1"]) == 0
            output = capsys.readouterr().out
            assert "capability matrix" in output
        finally:
            del os.environ["REPRO_BENCH_SCALE"]


class TestChart:
    def test_render_chart_log_scale(self):
        rows = [
            _run("ACQUIRE", time_ms=10.0, x=0.1),
            _run("TQGen", time_ms=1000.0, x=0.1),
            _run("ACQUIRE", time_ms=20.0, x=0.5),
        ]
        from repro.harness.report import render_chart

        chart = render_chart(
            ExperimentResult("e", "t", "p", rows), "time_ms"
        )
        lines = chart.splitlines()
        assert "log scale" in lines[0]
        assert len(lines) == 4
        # The slow method's bar is the longest.
        assert lines[2].count("#") > lines[1].count("#")
        # The x label prints once per group.
        assert lines[1].startswith("ratio=0.1")
        assert lines[2].startswith(" ")

    def test_render_chart_empty_metric(self):
        import math

        from repro.harness.report import render_chart

        row = _run()
        row.time_ms = math.inf
        chart = render_chart(ExperimentResult("e", "t", "p", [row]))
        assert chart == ""


class TestCSVOutput:
    def test_save_writes_csv_next_to_txt(self, tmp_path):
        import csv

        from repro.harness.report import save_result

        result = ExperimentResult("unit2", "T", "p", rows=[_run(), _run("B")])
        save_result(result, directory=str(tmp_path))
        csv_path = tmp_path / "unit2.csv"
        assert csv_path.exists()
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "x_name"
        assert len(rows) == 3
        assert rows[1][2] == "M"
