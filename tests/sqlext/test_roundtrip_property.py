"""Property test: random ACQs survive format -> parse -> bind intact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.catalog import Database
from repro.sqlext import format_query, parse_acq

COLUMNS = ("alpha", "beta", "gamma_col")


@pytest.fixture(scope="module")
def database() -> Database:
    rng = np.random.default_rng(0)
    db = Database()
    db.create_table(
        "t",
        {column: rng.uniform(0, 1000, 400) for column in COLUMNS},
    )
    return db


def _bound(draw_value: float) -> str:
    return f"{draw_value:.3f}"


condition = st.builds(
    lambda column, op, value, norefine: (
        f"({column} {op} {_bound(value)})" + (" NOREFINE" if norefine else "")
    ),
    st.sampled_from(COLUMNS),
    st.sampled_from(["<=", ">=", "<", ">"]),
    st.floats(min_value=1.0, max_value=999.0, allow_nan=False),
    st.booleans(),
)

range_condition = st.builds(
    lambda column, low, high: (
        f"({low:.3f} <= {column} <= {low + high:.3f})"
    ),
    st.sampled_from(COLUMNS),
    st.floats(min_value=1.0, max_value=400.0),
    st.floats(min_value=1.0, max_value=400.0),
)

aggregate_clause = st.one_of(
    st.builds(
        lambda target: f"COUNT(*) = {target:.0f}",
        st.floats(min_value=1, max_value=1e6),
    ),
    st.builds(
        lambda column, target: f"SUM({column}) >= {target:.1f}",
        st.sampled_from(COLUMNS),
        st.floats(min_value=1, max_value=1e6),
    ),
    st.builds(
        lambda column, target: f"AVG({column}) = {target:.1f}",
        st.sampled_from(COLUMNS),
        st.floats(min_value=1, max_value=999),
    ),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        aggregate_clause,
        st.lists(
            st.one_of(condition, range_condition), min_size=1, max_size=4
        ),
    )
    def test_format_parse_bind_fixpoint(self, constraint, conditions):
        rng = np.random.default_rng(0)
        database = Database()
        database.create_table(
            "t",
            {column: rng.uniform(0, 1000, 400) for column in COLUMNS},
        )
        text = (
            f"SELECT * FROM t CONSTRAINT {constraint} "
            f"WHERE {' AND '.join(conditions)}"
        )
        first = parse_acq(text, database)
        second = parse_acq(format_query(first), database)

        assert second.tables == first.tables
        assert second.constraint.op == first.constraint.op
        assert second.constraint.target == pytest.approx(
            first.constraint.target
        )
        assert (
            second.constraint.spec.aggregate.name
            == first.constraint.spec.aggregate.name
        )
        assert second.dimensionality == first.dimensionality
        assert len(second.predicates) == len(first.predicates)
        for a, b in zip(second.predicates, first.predicates):
            assert type(a) is type(b)
            assert a.refinable == b.refinable
            assert a.interval.lo == pytest.approx(b.interval.lo, abs=1e-6)
            assert a.interval.hi == pytest.approx(b.interval.hi, abs=1e-6)
