"""Tests for the ACQ dialect tokenizer."""

import pytest

from repro.exceptions import ParseError
from repro.sqlext.lexer import TokenType, tokenize


def kinds(text):
    return [token.type for token in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where and NOREFINE constraint")
        assert all(token.type is TokenType.KEYWORD for token in tokens[:-1])
        assert [t.text for t in tokens[:-1]] == [
            "SELECT", "FROM", "WHERE", "AND", "NOREFINE", "CONSTRAINT",
        ]

    def test_identifiers_preserve_case(self):
        token = tokenize("ps_availQty")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "ps_availQty"

    def test_operators(self):
        tokens = tokenize("<= >= < > = !=")
        assert [t.text for t in tokens[:-1]] == ["<=", ">=", "<", ">", "=",
                                                 "!="]

    def test_punctuation(self):
        assert kinds("( ) , . * ;") == [TokenType.PUNCT] * 6

    def test_whitespace_and_comments_skipped(self):
        tokens = tokenize("a -- comment\n b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_eof_token(self):
        assert tokenize("")[0].type is TokenType.EOF


class TestNumbers:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("42", 42.0),
            ("3.25", 3.25),
            (".5", 0.5),
            ("1K", 1e3),
            ("2.5M", 2.5e6),
            ("1m", 1e6),
            ("3B", 3e9),
            ("0.1M", 1e5),
        ],
    )
    def test_values_with_suffixes(self, text, value):
        """The paper writes COUNT(*)=1M and SUM(...) >= 0.1M."""
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert token.value == value

    def test_suffix_must_end_word(self):
        with pytest.raises(ParseError):
            tokenize("10Mbit")

    def test_qualified_column_not_number(self):
        tokens = tokenize("t1.x")
        assert [t.text for t in tokens[:-1]] == ["t1", ".", "x"]


class TestStrings:
    def test_simple(self):
        token = tokenize("'SMALL BURNISHED STEEL'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "SMALL BURNISHED STEEL"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2


class TestScientificNotation:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1e6", 1e6),
            ("2.5E-3", 2.5e-3),
            ("1e+06", 1e6),
            ("7E2", 700.0),
        ],
    )
    def test_exponent_forms(self, text, value):
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert token.value == value

    def test_bare_e_is_identifier_boundary(self):
        """'1east' is a malformed literal, not 1 followed by 'east'...
        actually the 'e' is not followed by digits, so the number ends
        at '1' and 'east' is a separate identifier."""
        tokens = tokenize("1east")
        assert tokens[0].value == 1.0
        assert tokens[1].text == "east"
