"""Tests for binding parsed ACQs against the catalog."""


import numpy as np
import pytest

from repro.core.ontology import OntologyTree
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    JoinPredicate,
    SelectPredicate,
)
from repro.core.query import ConstraintOp
from repro.engine.catalog import Database
from repro.exceptions import BindError, OSPViolationError
from repro.sqlext.binder import parse_acq


@pytest.fixture(scope="module")
def database() -> Database:
    rng = np.random.default_rng(0)
    db = Database()
    db.create_table(
        "users",
        {
            "age": rng.integers(18, 80, 500),
            "income": rng.uniform(0, 1e5, 500),
            "city": rng.choice(
                np.array(["Boston", "NewYork", "Paris"], dtype=object), 500
            ),
        },
    )
    db.create_table(
        "orders",
        {
            "uid": rng.integers(0, 500, 800),
            "amount": rng.uniform(0, 1000, 800),
        },
    )
    return db


class TestSelectBinding:
    def test_upper_predicate_anchored_at_domain_min(self, database):
        """Paper 2.2: (B.y < 50) with min(B.y)=0 binds P_I=(0, 50)."""
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE users.age <= 30",
            database,
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, SelectPredicate)
        assert predicate.direction is Direction.UPPER
        assert predicate.interval.hi == 30.0
        assert predicate.interval.lo == 18.0  # observed min of age

    def test_lower_predicate(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 WHERE age >= 60",
            database,
        )
        predicate = query.predicates[0]
        assert predicate.direction is Direction.LOWER
        assert predicate.interval.lo == 60.0
        assert predicate.interval.hi == 79.0

    def test_range_split_into_two_one_sided(self, database):
        """Paper 2.2's range rewrite."""
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE 25 <= age <= 35",
            database,
        )
        assert query.dimensionality == 2
        lower, upper = query.predicates
        assert lower.direction is Direction.LOWER
        assert lower.interval.lo == 25.0
        assert upper.direction is Direction.UPPER
        assert upper.interval.hi == 35.0

    def test_between_equivalent_to_chain(self, database):
        chained = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE 25 <= age <= 35",
            database,
        )
        between = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE age BETWEEN 25 AND 35",
            database,
        )
        assert [p.interval for p in chained.predicates] == [
            p.interval for p in between.predicates
        ]

    def test_numeric_equality_is_point(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 WHERE age = 30",
            database,
        )
        predicate = query.predicates[0]
        assert predicate.direction is Direction.POINT
        assert predicate.interval.is_point

    def test_flipped_comparison_normalized(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 WHERE 30 >= age",
            database,
        )
        assert query.predicates[0].direction is Direction.UPPER

    def test_norefine_flag(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE (age <= 30) NOREFINE AND income <= 50000",
            database,
        )
        assert not query.predicates[0].refinable
        assert query.predicates[1].refinable
        assert query.dimensionality == 1


class TestJoinBinding:
    def test_cross_table_equality_is_join(self, database):
        query = parse_acq(
            "SELECT * FROM users, orders CONSTRAINT COUNT(*) = 100 "
            "WHERE users.age = orders.uid",
            database,
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, JoinPredicate)
        assert predicate.is_equi
        assert predicate.refinable

    def test_non_equi_cross_table_becomes_difference(self, database):
        query = parse_acq(
            "SELECT * FROM users, orders CONSTRAINT COUNT(*) = 100 "
            "WHERE users.age <= orders.amount",
            database,
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, SelectPredicate)
        assert predicate.expr.tables() == {"users", "orders"}
        assert predicate.interval.hi == 0.0


class TestCategoricalBinding:
    def test_string_equality(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE city = 'Boston'",
            database,
        )
        predicate = query.predicates[0]
        assert isinstance(predicate, CategoricalPredicate)
        assert predicate.accepted == frozenset({"Boston"})

    def test_in_list_with_ontology(self, database):
        tree = OntologyTree(root="World")
        tree.add_path("US", "Boston")
        tree.add_path("US", "NewYork")
        tree.add_path("EU", "Paris")
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE city IN ('Boston', 'NewYork')",
            database,
            ontologies={"users.city": tree},
        )
        predicate = query.predicates[0]
        assert predicate.ontology is tree
        assert predicate.accepted == frozenset({"Boston", "NewYork"})

    def test_flat_fallback_ontology(self, database):
        query = parse_acq(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
            "WHERE city = 'Paris'",
            database,
        )
        predicate = query.predicates[0]
        assert predicate.ontology.depth == 1
        expanded = predicate.accepted_at(predicate.level_scale)
        assert {"Boston", "NewYork", "Paris"} <= expanded

    def test_value_missing_from_ontology(self, database):
        with pytest.raises(BindError, match="not present"):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
                "WHERE city = 'Atlantis'",
                database,
            )

    def test_categorical_on_numeric_rejected(self, database):
        with pytest.raises(BindError, match="non-string"):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
                "WHERE age = 'old'",
                database,
            )

    def test_numeric_in_rejected(self, database):
        with pytest.raises(BindError, match="string values only"):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
                "WHERE city IN (1, 2)",
                database,
            )


class TestConstraintBinding:
    def test_sum_with_attribute(self, database):
        query = parse_acq(
            "SELECT * FROM orders CONSTRAINT SUM(amount) >= 10K "
            "WHERE amount <= 100",
            database,
        )
        constraint = query.constraint
        assert constraint.spec.aggregate.name == "SUM"
        assert constraint.op is ConstraintOp.GE
        assert constraint.target == 10_000.0

    def test_count_star(self, database):
        query = parse_acq(
            "SELECT * FROM orders CONSTRAINT COUNT(*) = 5 WHERE amount <= 10",
            database,
        )
        assert query.constraint.spec.attribute is None

    def test_missing_constraint_rejected(self, database):
        with pytest.raises(BindError, match="CONSTRAINT"):
            parse_acq("SELECT * FROM orders WHERE amount <= 10", database)

    def test_stddev_rejected(self, database):
        with pytest.raises(OSPViolationError):
            parse_acq(
                "SELECT * FROM orders CONSTRAINT STDDEV(amount) = 5 "
                "WHERE amount <= 10",
                database,
            )

    def test_sum_needs_attribute(self, database):
        with pytest.raises(BindError, match="attribute"):
            parse_acq(
                "SELECT * FROM orders CONSTRAINT SUM(*) = 5 "
                "WHERE amount <= 10",
                database,
            )


class TestResolution:
    def test_unknown_table(self, database):
        with pytest.raises(BindError, match="unknown table"):
            parse_acq("SELECT * FROM nope CONSTRAINT COUNT(*) = 5", database)

    def test_unknown_column(self, database):
        with pytest.raises(BindError, match="unknown column"):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE zz <= 1",
                database,
            )

    def test_ambiguous_column(self, database):
        database2 = Database()
        database2.create_table("a", {"x": [1.0]})
        database2.create_table("b", {"x": [1.0]})
        with pytest.raises(BindError, match="ambiguous"):
            parse_acq(
                "SELECT * FROM a, b CONSTRAINT COUNT(*) = 5 WHERE x <= 1",
                database2,
            )

    def test_table_not_in_from(self, database):
        with pytest.raises(BindError, match="not in the FROM"):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 5 "
                "WHERE orders.amount <= 1",
                database,
            )

    def test_constant_only_comparison_rejected(self, database):
        with pytest.raises(BindError):
            parse_acq(
                "SELECT * FROM users CONSTRAINT COUNT(*) = 5 WHERE 1 <= 2",
                database,
            )
