"""Robustness: arbitrary input never escapes the ParseError contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.sqlext.ast import SelectStatement
from repro.sqlext.lexer import tokenize
from repro.sqlext.parser import parse_statement

_FRAGMENTS = list("abcxyz01. ,*()<>=+-'_;\n") + [
    "SELECT ", "FROM ", "WHERE ", "AND ", "CONSTRAINT ",
    "NOREFINE ", "BETWEEN ", "IN ", "COUNT", "SUM", "<=", ">=",
    "1M", "0.5", "'txt'",
]

sql_ish_text = st.lists(
    st.sampled_from(_FRAGMENTS), min_size=0, max_size=40
).map("".join)


class TestParserRobustness:
    @settings(max_examples=300, deadline=None)
    @given(sql_ish_text)
    def test_lexer_total(self, text):
        """Tokenize either succeeds or raises ParseError — nothing else."""
        try:
            tokens = tokenize(text)
        except ParseError:
            return
        assert tokens, "token stream always ends with EOF"

    @settings(max_examples=300, deadline=None)
    @given(sql_ish_text)
    def test_parser_total(self, text):
        """Parse either yields a statement or raises ParseError."""
        try:
            statement = parse_statement(text)
        except ParseError:
            return
        assert isinstance(statement, SelectStatement)

    @settings(max_examples=100, deadline=None)
    @given(sql_ish_text)
    def test_parse_is_deterministic(self, text):
        def attempt():
            try:
                return ("ok", parse_statement(text))
            except ParseError as error:
                return ("err", str(error))

        assert attempt() == attempt()
