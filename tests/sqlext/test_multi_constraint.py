"""Parsing, binding, spans and formatting of ``CONSTRAINT c1 AND c2``."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_sql
from repro.core.query import ConstraintOp
from repro.sqlext import (
    bind_with_spans,
    format_query,
    parse_acq,
    parse_statement,
)
from repro.exceptions import ParseError

MULTI_SQL = (
    "SELECT * FROM data\n"
    "CONSTRAINT COUNT(*) >= 50 AND SUM(data.y) >= 900\n"
    "WHERE data.x <= 30 AND data.y <= 40"
)


class TestParser:
    def test_parses_conjunction(self):
        statement = parse_statement(MULTI_SQL)
        assert statement.constraint is not None
        assert len(statement.extra_constraints) == 1

    def test_three_way_conjunction(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) >= 1 AND "
            "SUM(t.a) >= 2 AND AVG(t.b) = 3 WHERE t.a <= 10"
        )
        assert len(statement.extra_constraints) == 2

    def test_single_constraint_unchanged(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) >= 1 WHERE t.a <= 10"
        )
        assert statement.extra_constraints == ()

    def test_dangling_and_is_an_error(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT * FROM t CONSTRAINT COUNT(*) >= 1 AND "
                "WHERE t.a <= 10"
            )


class TestBinder:
    def test_binds_extra_constraints(self, small_db):
        query = parse_acq(MULTI_SQL, small_db)
        assert len(query.constraints) == 2
        primary, extra = query.constraints
        assert primary.spec.describe() == "COUNT(*)"
        assert extra.spec.describe() == "SUM(data.y)"
        assert extra.op is ConstraintOp.GE
        assert extra.target == 900.0

    def test_spans_point_at_each_clause(self, small_db):
        statement = parse_statement(MULTI_SQL)
        _, spans = bind_with_spans(
            statement, small_db, source=MULTI_SQL
        )
        primary_span = spans.constraint_span_at(0)
        extra_span = spans.constraint_span_at(1)
        assert primary_span is not None and extra_span is not None
        assert MULTI_SQL[slice(*primary_span)].startswith("COUNT(*)")
        assert MULTI_SQL[slice(*extra_span)].startswith("SUM(data.y)")
        assert spans.constraint_span_at(2) is None


class TestFormatter:
    def test_round_trip_preserves_conjunction(self, small_db):
        query = parse_acq(MULTI_SQL, small_db)
        rendered = format_query(query)
        assert "CONSTRAINT COUNT(*) >= 50 AND SUM(data.y) >= 900" in rendered
        reparsed = parse_acq(rendered, small_db)
        assert reparsed.constraints == query.constraints
        assert len(reparsed.predicates) == len(query.predicates)


class TestAnalysis:
    def test_diagnostics_attach_to_the_offending_clause(self, small_db):
        # The extra SUM demands more than the whole table can supply:
        # the ERROR must cite the second clause, not the primary.
        sql = (
            "SELECT * FROM data\n"
            "CONSTRAINT COUNT(*) >= 50 AND SUM(data.y) >= 1e12\n"
            "WHERE data.x <= 30"
        )
        report = analyze_sql(sql, small_db)
        errors = [d for d in report.errors if d.code == "ACQ102"]
        assert errors, report.render()
        assert any(
            d.span is not None
            and sql[d.span.start:d.span.end].startswith("SUM(data.y)")
            for d in errors
        ), report.render()
