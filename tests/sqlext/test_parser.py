"""Tests for the ACQ dialect parser, including the paper's queries."""

import pytest

from repro.exceptions import ParseError
from repro.sqlext import ast
from repro.sqlext.parser import parse_statement

Q1_PRIME = """
SELECT * FROM Users
CONSTRAINT COUNT(*) = 1M
WHERE location IN ('Boston', 'New_York', 'Seattle', 'Miami', 'Austin')
AND (gender = 'Women') NOREFINE AND (25 <= age <= 35)
AND (education = 'CollegeGrad')
AND (relationshipStatus = 'Single')
AND interests IN ('Retail', 'Shopping') NOREFINE;
"""

Q2_PRIME = """
SELECT * FROM supplier, part, partsupp
CONSTRAINT SUM(ps_availqty) >= 0.1M
WHERE (s_suppkey = ps_suppkey) NOREFINE AND
(p_partkey = ps_partkey) NOREFINE AND
(p_retailprice < 1000) AND (s_acctbal < 2000)
AND (p_size = 10) NOREFINE AND
(p_type = 'SMALL BURNISHED STEEL') NOREFINE
"""


class TestPaperQueries:
    def test_q1_prime(self):
        statement = parse_statement(Q1_PRIME)
        assert statement.tables == ("Users",)
        assert statement.constraint.function == "COUNT"
        assert statement.constraint.argument is None
        assert statement.constraint.op == "="
        assert statement.constraint.target == 1e6
        assert len(statement.conjuncts) == 6
        norefines = [c.norefine for c in statement.conjuncts]
        assert norefines == [False, True, False, False, False, True]
        chained = statement.conjuncts[2].condition
        assert isinstance(chained, ast.RangeCondition)
        assert chained.low == ast.NumberLit(25.0)
        assert chained.high == ast.NumberLit(35.0)

    def test_q2_prime(self):
        statement = parse_statement(Q2_PRIME)
        assert statement.tables == ("supplier", "part", "partsupp")
        constraint = statement.constraint
        assert constraint.function == "SUM"
        assert constraint.argument == ast.ColRef("ps_availqty")
        assert constraint.op == ">="
        assert constraint.target == 1e5
        assert len(statement.conjuncts) == 6
        assert sum(c.norefine for c in statement.conjuncts) == 4


class TestGrammar:
    def test_projection_columns(self):
        statement = parse_statement(
            "SELECT a, b FROM t CONSTRAINT COUNT(*) = 5"
        )
        assert statement.projection == ("a", "b")

    def test_no_where_clause(self):
        statement = parse_statement("SELECT * FROM t CONSTRAINT COUNT(*) = 5")
        assert statement.conjuncts == ()

    def test_no_constraint_clause(self):
        statement = parse_statement("SELECT * FROM t WHERE x < 5")
        assert statement.constraint is None

    def test_between(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 5 "
            "WHERE x BETWEEN 10 AND 20 AND y < 5"
        )
        condition = statement.conjuncts[0].condition
        assert isinstance(condition, ast.RangeCondition)
        assert condition.low == ast.NumberLit(10.0)
        assert condition.high == ast.NumberLit(20.0)
        assert len(statement.conjuncts) == 2

    def test_descending_chain(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 5 WHERE 35 >= age > 25"
        )
        condition = statement.conjuncts[0].condition
        assert isinstance(condition, ast.RangeCondition)
        assert condition.low == ast.NumberLit(25.0)
        assert condition.high == ast.NumberLit(35.0)
        assert condition.low_strict and not condition.high_strict

    def test_inconsistent_chain_rejected(self):
        with pytest.raises(ParseError, match="chained"):
            parse_statement(
                "SELECT * FROM t CONSTRAINT COUNT(*) = 5 WHERE 25 <= age > 35"
            )

    def test_arithmetic_and_parens(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 5 WHERE (2 * x) < y + 1"
        )
        condition = statement.conjuncts[0].condition
        assert isinstance(condition, ast.Comparison)
        assert isinstance(condition.left, ast.BinOp)
        assert condition.left.op == "*"

    def test_abs_function(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 5 WHERE ABS(x - y) <= 3"
        )
        condition = statement.conjuncts[0].condition
        assert isinstance(condition.left, ast.AbsCall)

    def test_unary_minus(self):
        statement = parse_statement(
            "SELECT * FROM t CONSTRAINT MAX(x) >= -5 WHERE x > -2.5"
        )
        assert statement.constraint.target == -5.0
        condition = statement.conjuncts[0].condition
        assert condition.right == ast.NumberLit(-2.5)

    def test_in_requires_column(self):
        with pytest.raises(ParseError, match="IN requires"):
            parse_statement(
                "SELECT * FROM t CONSTRAINT COUNT(*) = 5 "
                "WHERE (x + 1) IN ('a')"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statement("SELECT * FROM t CONSTRAINT COUNT(*) = 5 ; extra")

    @pytest.mark.parametrize(
        "bad",
        [
            "FROM t",
            "SELECT * t",
            "SELECT * FROM t CONSTRAINT COUNT * = 5",
            "SELECT * FROM t CONSTRAINT COUNT(*) 5",
            "SELECT * FROM t CONSTRAINT COUNT(*) = ",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE x <",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_statement(bad)
