"""Tests for SQL rendering and parse/format round-trips."""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.sqlext import format_query, format_refined_query, parse_acq


@pytest.fixture(scope="module")
def database() -> Database:
    rng = np.random.default_rng(1)
    db = Database()
    db.create_table(
        "t",
        {
            "x": rng.uniform(0, 100, 800),
            "y": rng.uniform(0, 100, 800),
        },
    )
    return db


class TestFormatQuery:
    def test_renders_dialect(self, database):
        query = parse_acq(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 500 "
            "WHERE (t.x <= 30) NOREFINE AND t.y <= 40",
            database,
        )
        text = format_query(query)
        assert "CONSTRAINT COUNT(*) = 500" in text
        assert "NOREFINE" in text
        assert text.count("AND") >= 1

    def test_round_trip_reparses_equal(self, database):
        original = parse_acq(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 500 "
            "WHERE (t.x <= 30) NOREFINE AND t.y <= 40",
            database,
        )
        reparsed = parse_acq(format_query(original), database)
        assert reparsed.tables == original.tables
        assert reparsed.constraint.target == original.constraint.target
        assert reparsed.dimensionality == original.dimensionality
        assert [p.refinable for p in reparsed.predicates] == [
            p.refinable for p in original.predicates
        ]
        for a, b in zip(reparsed.predicates, original.predicates):
            assert a.interval.lo == pytest.approx(b.interval.lo)
            assert a.interval.hi == pytest.approx(b.interval.hi)


class TestFormatRefinedQuery:
    def test_refined_sql_is_executable(self, database):
        """The rendered refined query must return exactly the tuples
        ACQUIRE's answer promises (checked through sqlite)."""
        import sqlite3

        query = parse_acq(
            "SELECT * FROM t CONSTRAINT COUNT(*) = 400 "
            "WHERE t.x <= 30 AND t.y <= 40",
            database,
        )
        result = Acquire(MemoryBackend(database)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.satisfied
        sql = format_refined_query(result.best)
        assert sql.startswith("SELECT * FROM t")

        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (x REAL, y REAL)")
        table = database.table("t")
        connection.executemany(
            "INSERT INTO t VALUES (?, ?)",
            zip(table.column("x").tolist(), table.column("y").tolist()),
        )
        count_sql = sql.replace("SELECT *", "SELECT COUNT(*)", 1)
        count = connection.execute(count_sql).fetchone()[0]
        assert count == result.best.aggregate_value
