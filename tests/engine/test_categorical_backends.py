"""Cross-backend equivalence for categorical (ontology) predicates.

The SQLite backend renders categorical refinement as IN-lists of
roll-up-level value sets while the memory backend buckets per-tuple
ontology distances; both must agree cell by cell (section 7.3 through
both execution paths).
"""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.expand import LpBestFirstTraversal
from repro.core.interval import Interval
from repro.core.ontology import OntologyTree
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    SelectPredicate,
)
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend


@pytest.fixture(scope="module")
def tree() -> OntologyTree:
    ontology = OntologyTree(root="World")
    ontology.add_path("US", "East", "Boston")
    ontology.add_path("US", "East", "NewYork")
    ontology.add_path("US", "West", "Seattle")
    ontology.add_path("EU", "Paris")
    ontology.add_path("EU", "Berlin")
    return ontology


@pytest.fixture(scope="module")
def database() -> Database:
    rng = np.random.default_rng(44)
    cities = np.array(
        ["Boston", "NewYork", "Seattle", "Paris", "Berlin"], dtype=object
    )
    db = Database()
    db.create_table(
        "venues",
        {
            "city": rng.choice(cities, 2000),
            "price": np.round(rng.uniform(0, 100, 2000), 2),
        },
    )
    return db


def _query(tree: OntologyTree) -> Query:
    predicates = [
        CategoricalPredicate(
            name="city",
            column=col("venues.city"),
            accepted=frozenset({"Boston"}),
            ontology=tree,
        ),
        SelectPredicate(
            name="price",
            expr=col("venues.price"),
            interval=Interval(0.0, 30.0),
            direction=Direction.UPPER,
            denominator=100.0,
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 900
    )
    return Query.build("cat", ("venues",), predicates, constraint)


class TestCategoricalEquivalence:
    def test_cells_agree(self, database, tree):
        query = _query(tree)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        caps = [100.0, 100.0]
        prepared_m = memory.prepare(query, caps)
        prepared_s = sqlite.prepare(query, caps)
        space = RefinedSpace(query, 20.0, [100.0, 70.0])
        for coords in LpBestFirstTraversal(space):
            cell_m = memory.execute_cell(prepared_m, space, coords)
            cell_s = sqlite.execute_cell(prepared_s, space, coords)
            assert cell_m == cell_s, coords

    def test_boxes_agree(self, database, tree):
        query = _query(tree)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        prepared_m = memory.prepare(query, [100.0, 100.0])
        prepared_s = sqlite.prepare(query, [100.0, 100.0])
        # Scores spanning every ontology roll-up level (depth 3).
        for scores in [(0.0, 0.0), (34.0, 10.0), (67.0, 0.0),
                       (100.0, 40.0)]:
            box_m = memory.execute_box(prepared_m, scores)
            box_s = sqlite.execute_box(prepared_s, scores)
            assert box_m == box_s, scores

    def test_full_run_agrees(self, database, tree):
        query = _query(tree)
        config = AcquireConfig(gamma=20.0, delta=0.05)
        result_m = Acquire(MemoryBackend(database)).run(query, config)
        result_s = Acquire(SQLiteBackend(database)).run(query, config)
        assert result_m.best.aggregate_value == result_s.best.aggregate_value
        assert result_m.best.qscore == pytest.approx(result_s.best.qscore)

    def test_ontology_expansion_monotone_count(self, database, tree):
        """Rolling up the accepted set only ever adds tuples."""
        query = _query(tree)
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        counts = [
            layer.execute_box(prepared, (level_score, 0.0))[0]
            for level_score in (0.0, 34.0, 67.0, 100.0)
        ]
        assert counts == sorted(counts)
        # Full roll-up covers every city.
        assert counts[-1] == layer.execute_box(prepared, (100.0, 0.0))[0]
