"""Tests for the histogram estimation evaluation layer."""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.refined_space import RefinedSpace
from repro.engine.catalog import Database
from repro.engine.histogram_backend import HistogramBackend, _ScoreHistogram
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import EngineError, OSPViolationError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def independent_db() -> Database:
    rng = np.random.default_rng(3)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 30_000),
            "y": rng.uniform(0, 100, 30_000),
        },
    )
    return database


@pytest.fixture(scope="module")
def correlated_db() -> Database:
    rng = np.random.default_rng(4)
    x = rng.uniform(0, 100, 30_000)
    database = Database()
    database.create_table(
        "data",
        {"x": x, "y": np.clip(x + rng.normal(0, 2, 30_000), 0, 100)},
    )
    return database


class TestScoreHistogram:
    def test_fractions(self):
        histogram = _ScoreHistogram(
            edges=np.array([0.0, 1.0, 2.0]),
            counts=np.array([10, 30]),
            total=40,
        )
        assert histogram.fraction_at_most(-1.0) == 0.0
        assert histogram.fraction_at_most(1.0) == pytest.approx(0.25)
        assert histogram.fraction_at_most(2.0) == 1.0
        assert histogram.fraction_at_most(1.5) == pytest.approx(
            (10 + 15) / 40
        )
        assert histogram.fraction_in(1.0, 2.0) == pytest.approx(0.75)

    def test_empty(self):
        histogram = _ScoreHistogram(
            edges=np.array([0.0, 1.0]), counts=np.array([0]), total=0
        )
        assert histogram.fraction_at_most(0.5) == 0.0


class TestEstimationAccuracy:
    def test_box_estimates_on_independent_data(self, independent_db):
        """Independence holds: estimates within a few percent of exact."""
        query = count_query(
            "data", {"x": 30.0, "y": 30.0}, target=1000
        )
        exact = MemoryBackend(independent_db)
        estimated = HistogramBackend(independent_db, bins=256)
        prepared_e = exact.prepare(query, [100.0, 100.0])
        prepared_h = estimated.prepare(query, [100.0, 100.0])
        for scores in [(0.0, 0.0), (10.0, 5.0), (40.0, 40.0)]:
            true = exact.execute_box(prepared_e, scores)[0]
            approx = estimated.execute_box(prepared_h, scores)[0]
            assert approx == pytest.approx(true, rel=0.08)

    def test_correlated_data_biased(self, correlated_db):
        """The independence assumption under-estimates on correlated
        columns — the documented failure mode."""
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1000)
        exact = MemoryBackend(correlated_db)
        estimated = HistogramBackend(correlated_db)
        true = exact.execute_box(
            exact.prepare(query, [100.0, 100.0]), (0.0, 0.0)
        )[0]
        approx = estimated.execute_box(
            estimated.prepare(query, [100.0, 100.0]), (0.0, 0.0)
        )[0]
        assert approx < 0.6 * true

    def test_cells_sum_to_box(self, independent_db):
        """Cell estimates over a prefix region sum to the box estimate
        (the estimator is additive, so the Explore recurrence stays
        exact w.r.t. the estimates themselves)."""
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1000)
        layer = HistogramBackend(independent_db)
        prepared = layer.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        box = layer.execute_box(prepared, (20.0, 20.0))[0]
        total = 0.0
        for cx in range(3):
            for cy in range(3):
                total += layer.execute_cell(prepared, space, (cx, cy))[0]
        assert total == pytest.approx(box, rel=1e-6)


class TestAcquireOverEstimates:
    def test_search_on_estimates_validates_on_exact(self, independent_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=5000)
        layer = HistogramBackend(independent_db, bins=256)
        result = Acquire(layer).run(query, AcquireConfig(gamma=10,
                                                         delta=0.05))
        assert result.satisfied
        # Validate the recommended refinement against exact execution.
        exact = MemoryBackend(independent_db)
        prepared = exact.prepare(query, [400.0, 400.0])
        true = exact.execute_box(prepared, result.best.pscores)[0]
        assert true == pytest.approx(5000, rel=0.15)

    def test_estimation_is_cheap(self, independent_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=5000)
        layer = HistogramBackend(independent_db)
        result = Acquire(layer).run(query, AcquireConfig(gamma=10,
                                                         delta=0.05))
        # Exactly one scan (at prepare); every query afterwards touched
        # no rows, however many the search issued.
        table_size = 30_000
        assert result.stats.execution.rows_scanned == table_size
        assert result.stats.execution.queries_executed >= 10


class TestLimitations:
    def test_max_rejected(self, independent_db):
        from repro.core.aggregates import AggregateSpec, get_aggregate
        from repro.core.query import AggregateConstraint, ConstraintOp
        from repro.engine.expression import col

        query = count_query("data", {"x": 30.0}, target=1).with_constraint(
            AggregateConstraint(
                AggregateSpec(get_aggregate("MAX"), col("data.x")),
                ConstraintOp.GE,
                50.0,
            )
        )
        with pytest.raises(OSPViolationError, match="estimated"):
            HistogramBackend(independent_db).prepare(query, [10.0])

    def test_topk_and_fetch_rejected(self, independent_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=10)
        layer = HistogramBackend(independent_db)
        prepared = layer.prepare(query, [10.0, 10.0])
        with pytest.raises(EngineError):
            layer.topk_admission(prepared, 5)
        with pytest.raises(EngineError):
            layer.fetch_rows(prepared, (0.0, 0.0))

    def test_bins_validation(self, independent_db):
        with pytest.raises(EngineError):
            HistogramBackend(independent_db, bins=1)
