"""Tests for the section 7.4 grid bitmap index."""

import numpy as np
import pytest

from repro.core.refined_space import RefinedSpace
from repro.engine.bitmap_index import GridBitmapIndex
from repro.exceptions import EngineError
from tests.core.test_refined_space import make_query


def _space(d=2):
    return RefinedSpace(make_query(d), gamma=10.0, max_scores=[50.0] * d)


class TestGridBitmapIndex:
    def test_empty_scores(self):
        index = GridBitmapIndex.from_scores(np.empty((0, 2)), _space())
        assert index.nonempty_cells == 0
        assert index.is_empty((0, 0))

    def test_membership(self):
        space = _space()
        # step = 5: scores 0 -> cell 0; 7 -> cell 2; 12 -> cell 3.
        scores = np.array([[0.0, 7.0], [12.0, 0.0]])
        index = GridBitmapIndex.from_scores(scores, space)
        assert not index.is_empty((0, 2))
        assert not index.is_empty((3, 0))
        assert index.is_empty((0, 0))
        assert index.is_empty((2, 2))
        assert index.nonempty_cells == 2

    def test_negative_scores_map_to_base_cell(self):
        space = _space()
        scores = np.array([[-30.0, -1.0]])
        index = GridBitmapIndex.from_scores(scores, space)
        assert not index.is_empty((0, 0))

    def test_boundary_scores(self):
        space = _space()
        # Exactly on a grid line: score 5.0 belongs to cell 1 (annulus
        # (0, 5]), matching the memory backend's bucketing.
        index = GridBitmapIndex.from_scores(np.array([[5.0, 0.0]]), space)
        assert not index.is_empty((1, 0))
        assert index.is_empty((2, 0))

    def test_matches_memory_backend_cells(self):
        """Index emptiness must agree with actual cell execution."""
        import itertools

        from repro.engine.catalog import Database
        from repro.engine.memory_backend import MemoryBackend

        rng = np.random.default_rng(2)
        database = Database()
        database.create_table(
            "t",
            {
                "c0": rng.uniform(0, 120, 300),
                "c1": rng.uniform(0, 120, 300),
            },
        )
        query = make_query(2)
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [200.0, 200.0])
        space = RefinedSpace(query, 30.0, [140.0, 140.0])
        index = layer.build_bitmap_index(prepared, space)
        for coords in itertools.product(range(space.max_coords[0] + 1),
                                        range(space.max_coords[1] + 1)):
            count = layer.execute_cell(prepared, space, coords)[0]
            assert index.is_empty(coords) == (count == 0), coords


class TestCountingGridIndex:
    """Section 7.4's updatable variant: counts instead of bits."""

    def _index(self):
        from repro.engine.bitmap_index import CountingGridIndex

        return CountingGridIndex(step=5.0, d=2)

    def test_insert_and_count(self):
        index = self._index()
        index.insert(np.array([[0.0, 7.0], [12.0, 0.0], [0.0, 7.0]]))
        assert index.count((0, 2)) == 2
        assert index.count((3, 0)) == 1
        assert index.count((1, 1)) == 0
        assert index.nonempty_cells == 2
        assert index.total == 3

    def test_remove_updates_incrementally(self):
        index = self._index()
        index.insert(np.array([[0.0, 7.0], [0.0, 7.0]]))
        index.remove(np.array([[0.0, 7.0]]))
        assert index.count((0, 2)) == 1
        assert not index.is_empty((0, 2))
        index.remove(np.array([[0.0, 7.0]]))
        assert index.is_empty((0, 2))
        assert index.nonempty_cells == 0

    def test_remove_from_empty_rejected(self):
        index = self._index()
        with pytest.raises(EngineError, match="empty cell"):
            index.remove(np.array([[0.0, 0.0]]))

    def test_arity_checked(self):
        index = self._index()
        with pytest.raises(EngineError, match="arity"):
            index.insert(np.array([[1.0, 2.0, 3.0]]))

    def test_matches_bitmap_semantics(self):
        """Freshly built, it agrees with the bitmap on emptiness."""
        from repro.engine.bitmap_index import CountingGridIndex

        rng = np.random.default_rng(3)
        scores = rng.uniform(-20, 60, size=(200, 2))
        space = _space()
        bitmap = GridBitmapIndex.from_scores(scores, space)
        counting = CountingGridIndex.from_scores(scores, space)
        import itertools

        for coords in itertools.product(range(11), repeat=2):
            assert bitmap.is_empty(coords) == counting.is_empty(coords)

    def test_explorer_accepts_counting_index(self):
        """Drop-in replacement for the bitmap in the Explore phase."""
        from repro.core.expand import LpBestFirstTraversal
        from repro.core.explore import Explorer
        from repro.engine.bitmap_index import CountingGridIndex
        from repro.engine.catalog import Database
        from repro.engine.memory_backend import MemoryBackend

        rng = np.random.default_rng(4)
        database = Database()
        database.create_table(
            "t",
            {"c0": rng.uniform(0, 120, 200), "c1": rng.uniform(0, 120, 200)},
        )
        query = make_query(2)
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [200.0, 200.0])
        space = RefinedSpace(query, 30.0, [140.0, 140.0])
        index = CountingGridIndex.from_scores(
            prepared.candidate.scores, space
        )
        plain = Explorer(layer, prepared, space,
                         query.constraint.spec.aggregate)
        indexed = Explorer(
            layer, prepared, space, query.constraint.spec.aggregate,
            bitmap_index=index,
        )
        for coords in LpBestFirstTraversal(space):
            assert indexed.compute_aggregate(
                coords
            ) == plain.compute_aggregate(coords)
