"""Tests for result-set materialization (fetch_rows)."""

import numpy as np
import pytest

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, JoinPredicate, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from tests.conftest import count_query


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(13)
    database = Database()
    database.create_table(
        "data",
        {
            "x": np.round(rng.uniform(0, 100, 600), 2),
            "y": np.round(rng.uniform(0, 100, 600), 2),
        },
    )
    return database


class TestFetchRows:
    def test_rows_match_aggregate_count(self, db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=100)
        for layer in (MemoryBackend(db), SQLiteBackend(db)):
            prepared = layer.prepare(query, [100.0, 100.0])
            scores = (10.0, 5.0)
            count = layer.execute_box(prepared, scores)[0]
            rows = layer.fetch_rows(prepared, scores)
            assert len(rows) == count

    def test_rows_satisfy_refined_predicates(self, db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=100)
        layer = MemoryBackend(db)
        prepared = layer.prepare(query, [100.0, 100.0])
        rows = layer.fetch_rows(prepared, (10.0, 0.0))
        assert rows
        for row in rows:
            assert 0.0 <= row["data.x"] <= 50.0  # 40 + 10% of 100
            assert 0.0 <= row["data.y"] <= 40.0

    def test_limit(self, db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=100)
        for layer in (MemoryBackend(db), SQLiteBackend(db)):
            prepared = layer.prepare(query, [100.0, 100.0])
            rows = layer.fetch_rows(prepared, (50.0, 50.0), limit=7)
            assert len(rows) == 7

    def test_backends_return_same_multiset(self, db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=100)
        memory = MemoryBackend(db)
        sqlite = SQLiteBackend(db)
        rows_m = memory.fetch_rows(
            memory.prepare(query, [100.0, 100.0]), (5.0, 5.0)
        )
        rows_s = sqlite.fetch_rows(
            sqlite.prepare(query, [100.0, 100.0]), (5.0, 5.0)
        )
        key = lambda row: (row["data.x"], row["data.y"])
        assert sorted(map(key, rows_m)) == sorted(map(key, rows_s))

    def test_join_rows_qualified(self):
        database = Database()
        database.create_table(
            "a", {"id": np.array([1, 2]), "v": np.array([10.0, 20.0])}
        )
        database.create_table(
            "b", {"aid": np.array([1, 1, 2]), "w": np.array([1.0, 2.0, 3.0])}
        )
        query = Query.build(
            "q",
            ("a", "b"),
            [
                JoinPredicate(
                    name="j", left=col("a.id"), right=col("b.aid"),
                    refinable=False,
                ),
                SelectPredicate(
                    name="p",
                    expr=col("b.w"),
                    interval=Interval(0.0, 10.0),
                    direction=Direction.UPPER,
                ),
            ],
            AggregateConstraint(
                AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 3
            ),
        )
        for layer in (MemoryBackend(database), SQLiteBackend(database)):
            prepared = layer.prepare(query, [10.0])
            rows = layer.fetch_rows(prepared, (0.0,))
            assert len(rows) == 3
            assert {"a.id", "a.v", "b.aid", "b.w"} <= set(rows[0])
            for row in rows:
                assert row["a.id"] == row["b.aid"]
