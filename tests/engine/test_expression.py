"""Unit and property tests for the expression language."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expression import (
    Abs,
    BinaryOp,
    absolute,
    col,
    const,
    parse_column_ref,
    wrap,
)
from repro.exceptions import ExpressionError


class TestParseColumnRef:
    def test_qualified(self):
        assert parse_column_ref("t.c") == ("t", "c")

    def test_default_table(self):
        assert parse_column_ref("c", "t") == ("t", "c")

    def test_unqualified_without_default_rejected(self):
        with pytest.raises(ExpressionError):
            parse_column_ref("c")

    @pytest.mark.parametrize("bad", [".c", "t."])
    def test_malformed(self, bad):
        with pytest.raises(ExpressionError):
            parse_column_ref(bad)


class TestEvaluation:
    def _batch(self):
        return {
            "t.a": np.array([1.0, 2.0, 3.0]),
            "t.b": np.array([10.0, 20.0, 30.0]),
            "u.c": np.array([-1.0, 0.0, 1.0]),
        }

    def test_column_lookup(self):
        np.testing.assert_array_equal(
            col("t.a").evaluate(self._batch()), [1.0, 2.0, 3.0]
        )

    def test_missing_column_raises(self):
        with pytest.raises(ExpressionError):
            col("t.zz").evaluate(self._batch())

    def test_arithmetic_sugar(self):
        expr = col("t.a") * 2 + col("t.b") - 1
        np.testing.assert_allclose(
            expr.evaluate(self._batch()), [11.0, 23.0, 35.0]
        )

    def test_division(self):
        expr = col("t.b") / col("t.a")
        np.testing.assert_allclose(
            expr.evaluate(self._batch()), [10.0, 10.0, 10.0]
        )

    def test_abs(self):
        np.testing.assert_allclose(
            absolute(col("u.c")).evaluate(self._batch()), [1.0, 0.0, 1.0]
        )

    def test_reverse_operators(self):
        expr = 100 - col("t.a")
        np.testing.assert_allclose(expr.evaluate(self._batch()), [99, 98, 97])

    def test_constant_scalar(self):
        assert float(const(4.0).evaluate({})) == 4.0

    def test_bad_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("%", const(1), const(2))

    def test_wrap_rejects_strings(self):
        with pytest.raises(ExpressionError):
            wrap("nope")  # type: ignore[arg-type]


class TestIntrospection:
    def test_tables_and_columns(self):
        expr = col("t.a") + col("u.c") * 2
        assert expr.tables() == {"t", "u"}
        assert expr.columns() == {"t.a", "u.c"}

    def test_constant_has_no_tables(self):
        assert const(3).tables() == set()
        assert const(3).columns() == set()


class TestSQL:
    def test_column_sql(self):
        assert col("t.a").to_sql() == "t.a"

    def test_integer_constant_sql(self):
        assert const(5.0).to_sql() == "5"

    def test_float_constant_sql(self):
        assert const(2.5).to_sql() == "2.5"

    def test_composite_sql(self):
        expr = Abs(col("t.a") - col("u.c"))
        assert expr.to_sql() == "ABS((t.a - u.c))"


class TestPropertyConsistency:
    """Numpy evaluation must agree with SQL-on-SQLite evaluation."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=1, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_numpy_matches_sqlite(self, rows):
        import sqlite3

        a_values = np.array([row[0] for row in rows])
        b_values = np.array([row[1] for row in rows])
        expr = Abs(col("t.a") * 2 - col("t.b")) + const(1)

        batch = {"t.a": a_values, "t.b": b_values}
        numpy_result = expr.evaluate(batch)

        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (a REAL, b REAL)")
        connection.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(float(a), float(b)) for a, b in rows],
        )
        sql_result = [
            row[0]
            for row in connection.execute(
                f"SELECT {expr.to_sql()} FROM t"
            )
        ]
        np.testing.assert_allclose(numpy_result, sql_result, rtol=1e-9)
