"""Tests for candidate-relation construction (joins, scoring)."""

import numpy as np
import pytest

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.ontology import OntologyTree
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    JoinPredicate,
    SelectPredicate,
)
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.executor import build_candidate
from repro.engine.expression import col
from repro.exceptions import EngineError


def _count_constraint(target=10.0):
    return AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, target
    )


def _upper(name, ref, hi, refinable=True, lo=0.0):
    return SelectPredicate(
        name=name,
        expr=col(ref),
        interval=Interval(lo, hi),
        direction=Direction.UPPER,
        denominator=100.0,
        refinable=refinable,
    )


@pytest.fixture()
def join_db() -> Database:
    database = Database()
    database.create_table(
        "a", {"id": np.array([1, 2, 3, 4]), "x": np.array([10.0, 20.0, 30.0, 40.0])}
    )
    database.create_table(
        "b",
        {
            "aid": np.array([1, 1, 2, 5]),
            "y": np.array([5.0, 15.0, 25.0, 35.0]),
        },
    )
    return database


class TestSingleTable:
    def test_scores_and_aggregate_values(self):
        database = Database()
        database.create_table("t", {"x": np.array([10.0, 60.0, 200.0])})
        query = Query.build(
            "q", ("t",), [_upper("p", "t.x", 50.0)], _count_constraint()
        )
        candidate = build_candidate(database, query, [100.0])
        # 200.0 needs score 150 > cap 100: dropped.
        assert candidate.nrows == 2
        assert sorted(candidate.scores[:, 0].tolist()) == [-40.0, 10.0]
        assert candidate.useful_max_scores == [10.0]

    def test_fixed_predicate_prefilters(self):
        database = Database()
        database.create_table(
            "t",
            {"x": np.array([10.0, 60.0]), "y": np.array([1.0, 1.0])},
        )
        query = Query.build(
            "q",
            ("t",),
            [
                _upper("flex", "t.y", 5.0),
                _upper("fixed", "t.x", 50.0, refinable=False),
            ],
            _count_constraint(),
        )
        candidate = build_candidate(database, query, [50.0])
        assert candidate.nrows == 1  # x=60 violates the NOREFINE filter

    def test_aggregate_attribute_collected(self):
        database = Database()
        database.create_table(
            "t", {"x": np.array([1.0, 2.0]), "v": np.array([10.0, 20.0])}
        )
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("SUM"), col("t.v")),
            ConstraintOp.GE,
            5.0,
        )
        query = Query.build("q", ("t",), [_upper("p", "t.x", 5.0)], constraint)
        candidate = build_candidate(database, query, [10.0])
        assert sorted(candidate.agg_values.tolist()) == [10.0, 20.0]


class TestJoins:
    def test_fixed_equi_join(self, join_db):
        query = Query.build(
            "q",
            ("a", "b"),
            [
                JoinPredicate(
                    name="j",
                    left=col("a.id"),
                    right=col("b.aid"),
                    refinable=False,
                ),
                _upper("p", "b.y", 100.0),
            ],
            _count_constraint(),
        )
        candidate = build_candidate(join_db, query, [10.0])
        # Matches: a1-b1, a1-b2, a2-b3; b4 (aid=5) dangles.
        assert candidate.nrows == 3

    def test_refinable_band_join(self, join_db):
        query = Query.build(
            "q",
            ("a", "b"),
            [
                JoinPredicate(name="j", left=col("a.x"), right=col("b.y")),
                _upper("p", "b.y", 100.0),
            ],
            _count_constraint(),
        )
        # Band cap 10 (denominator 100 -> width 10).
        candidate = build_candidate(join_db, query, [10.0, 100.0])
        deltas = candidate.scores[:, 0]
        assert (deltas <= 10.0 + 1e-9).all()
        # Pairs within |x - y| <= 10: (10,5),(10,15),(20,15),(20,25),
        # (30,25),(30,35),(40,35).
        assert candidate.nrows == 7
        # Exact matches absent: minimal band score is 5.
        assert deltas.min() == pytest.approx(5.0)

    def test_join_both_sides_in_frame_filters(self):
        database = Database()
        database.create_table("a", {"x": np.array([1.0, 2.0])})
        database.create_table("b", {"y": np.array([1.0, 9.0])})
        database.create_table("c", {"z": np.array([0.0])})
        query = Query.build(
            "q",
            ("a", "b", "c"),
            [
                JoinPredicate(
                    name="jab", left=col("a.x"), right=col("b.y"),
                    refinable=False,
                ),
                JoinPredicate(
                    name="jac", left=col("a.x"), right=col("c.z"),
                    tolerance=5.0, refinable=False,
                ),
            ],
            _count_constraint(),
        )
        candidate = build_candidate(database, query, [])
        assert candidate.nrows == 1  # only a.x=1 matches b.y=1 and |1-0|<=5

    def test_cross_product_guarded(self):
        database = Database()
        database.create_table("a", {"x": np.zeros(100)})
        database.create_table("b", {"y": np.zeros(100)})
        query = Query.build(
            "q",
            ("a", "b"),
            [_upper("p", "a.x", 5.0)],
            _count_constraint(),
        )
        with pytest.raises(EngineError, match="cross product"):
            build_candidate(database, query, [10.0], max_rows=1000)
        candidate = build_candidate(database, query, [10.0], max_rows=100_000)
        assert candidate.nrows == 10_000

    def test_band_join_explosion_guarded(self, join_db):
        query = Query.build(
            "q",
            ("a", "b"),
            [JoinPredicate(name="j", left=col("a.x"), right=col("b.y"))],
            _count_constraint(),
        )
        with pytest.raises(EngineError, match="band join"):
            build_candidate(join_db, query, [10_000.0], max_rows=3)

    def test_dim_cap_arity_checked(self, join_db):
        query = Query.build(
            "q",
            ("a", "b"),
            [JoinPredicate(name="j", left=col("a.x"), right=col("b.y"))],
            _count_constraint(),
        )
        with pytest.raises(EngineError, match="dim caps"):
            build_candidate(join_db, query, [1.0, 2.0])


class TestCategorical:
    def test_categorical_scores(self):
        tree = OntologyTree.from_mapping(
            {"ROOT": ["US", "EU"], "US": ["Boston"], "EU": ["Paris"]}
        )
        database = Database()
        database.create_table(
            "t",
            {
                "city": np.array(["Boston", "Paris", "Boston"], dtype=object),
                "x": np.array([1.0, 1.0, 1.0]),
            },
        )
        predicate = CategoricalPredicate(
            name="c",
            column=col("t.city"),
            accepted=frozenset({"Boston"}),
            ontology=tree,
        )
        query = Query.build(
            "q", ("t",), [predicate], _count_constraint()
        )
        candidate = build_candidate(database, query, [100.0])
        assert candidate.nrows == 3
        assert sorted(candidate.scores[:, 0].tolist()) == [0.0, 0.0, 100.0]
