"""Unit tests for the column type system and table schemas."""

import numpy as np
import pytest

from repro.engine.schema import Column, ColumnType, TableSchema
from repro.exceptions import SchemaError, UnknownColumnError


class TestColumnType:
    def test_numpy_dtypes(self):
        assert ColumnType.INT.numpy_dtype is np.int64
        assert ColumnType.FLOAT.numpy_dtype is np.float64
        assert ColumnType.STR.numpy_dtype is np.object_

    def test_numeric_flags(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.STR.is_numeric

    def test_sql_types(self):
        assert ColumnType.INT.sql_type == "INTEGER"
        assert ColumnType.FLOAT.sql_type == "REAL"
        assert ColumnType.STR.sql_type == "TEXT"


class TestColumn:
    def test_valid_names(self):
        Column("ps_availqty", ColumnType.INT)
        Column("x", ColumnType.FLOAT)

    @pytest.mark.parametrize("bad", ["", "a b", "x-y", "a.b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(SchemaError):
            Column(bad, ColumnType.INT)


class TestTableSchema:
    def test_build_and_lookup(self):
        schema = TableSchema.build("t", a=ColumnType.INT, b=ColumnType.STR)
        assert schema.column_names == ["a", "b"]
        assert schema.column("a").ctype is ColumnType.INT
        assert "b" in schema
        assert len(schema) == 2

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", ColumnType.INT), Column("a", ColumnType.INT)],
            )

    def test_unknown_column_raises(self):
        schema = TableSchema.build("t", a=ColumnType.INT)
        with pytest.raises(UnknownColumnError) as excinfo:
            schema.column("missing")
        assert "missing" in str(excinfo.value)
        assert not schema.has_column("missing")

    def test_invalid_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("no spaces", [])
