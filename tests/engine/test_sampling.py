"""Tests for the sampling/estimation evaluation layer."""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.engine.catalog import Database
from repro.engine.sampling import SamplingBackend, sample_database
from repro.exceptions import EngineError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def big_db() -> Database:
    rng = np.random.default_rng(21)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 20_000),
            "y": rng.uniform(0, 100, 20_000),
        },
    )
    return database


class TestSampleDatabase:
    def test_fraction_respected(self, big_db):
        sampled = sample_database(big_db, 0.1, seed=1)
        size = len(sampled.table("data"))
        assert 1500 <= size <= 2500  # ~2000 expected

    def test_invalid_fraction(self, big_db):
        with pytest.raises(EngineError):
            sample_database(big_db, 0.0)
        with pytest.raises(EngineError):
            sample_database(big_db, 1.5)

    def test_deterministic(self, big_db):
        a = sample_database(big_db, 0.2, seed=5)
        b = sample_database(big_db, 0.2, seed=5)
        np.testing.assert_array_equal(
            a.table("data").column("x"), b.table("data").column("x")
        )


class TestSamplingBackend:
    def test_count_scaled_up(self, big_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=1000)
        layer = SamplingBackend(big_db, fraction=0.25, seed=2)
        prepared = layer.prepare(query, [100.0, 100.0])
        estimate = layer.execute_box(prepared, (0.0, 0.0))[0]
        # True count ~ 0.16 * 20000 = 3200.
        assert estimate == pytest.approx(3200, rel=0.15)

    def test_acquire_over_sample(self, big_db):
        """ACQUIRE runs unchanged over the estimation layer (paper
        section 3's modular-evaluation claim)."""
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=5000)
        layer = SamplingBackend(big_db, fraction=0.2, seed=3)
        result = Acquire(layer).run(query, AcquireConfig(gamma=10, delta=0.05))
        assert result.satisfied
        # Validate the recommendation against the full data.
        from repro.engine.memory_backend import MemoryBackend

        full = MemoryBackend(big_db)
        prepared = full.prepare(query, [400.0, 400.0])
        true_count = full.execute_box(prepared, result.best.pscores)[0]
        assert true_count == pytest.approx(5000, rel=0.25)

    def test_stats_delegated(self, big_db):
        layer = SamplingBackend(big_db, fraction=0.5, seed=4)
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=10)
        prepared = layer.prepare(query, [10.0, 10.0])
        layer.execute_box(prepared, (0.0, 0.0))
        assert layer.stats.queries_executed == 1
        layer.reset_stats()
        assert layer.stats.queries_executed == 0


class TestFactTableSampling:
    def test_dimension_tables_kept_whole(self, big_db):
        sampled = sample_database(big_db, 0.1, seed=1, tables=())
        assert len(sampled.table("data")) == len(big_db.table("data"))

    def test_unknown_table_rejected(self, big_db):
        with pytest.raises(EngineError, match="unknown tables"):
            sample_database(big_db, 0.1, tables=("nope",))

    def test_join_scaling_counts_only_sampled_tables(self, tiny_tpch):
        """Sampling only the fact table preserves join pairs and scales
        by a single factor (the join-synopsis practice)."""
        from repro.workloads.generator import build_ratio_workload
        from repro.workloads.templates import (
            Q2_JOINS,
            Q2_TABLES,
            q2_flex_specs,
        )

        workload = build_ratio_workload(
            tiny_tpch, Q2_TABLES, q2_flex_specs(2, 0.5), 0.9,
            joins=Q2_JOINS,
        )
        layer = SamplingBackend(
            tiny_tpch, fraction=0.5, seed=7, tables=("partsupp",)
        )
        prepared = layer.prepare(workload.query, [100.0, 100.0])
        estimate = layer.execute_box(prepared, (0.0, 0.0))[0]
        assert estimate == pytest.approx(workload.original_value, rel=0.4)
