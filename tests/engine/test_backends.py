"""Tests for both evaluation layers and their cross-equivalence.

The strongest check in this module: the memory backend and the SQLite
backend must return *identical* aggregate states for every cell and box
query of a refined space — they implement the same semantics through
completely different execution paths (numpy score filters vs. generated
SQL), so agreement is strong evidence both are right.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.expand import LpBestFirstTraversal
from repro.core.interval import Interval
from repro.core.predicate import Direction, JoinPredicate, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import ExecutionStats
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import EngineError


def _db(seed=0, n=250):
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "t",
        {
            "x": np.round(rng.uniform(0, 100, n), 3),
            "y": np.round(rng.uniform(0, 100, n), 3),
            "v": np.round(rng.uniform(0, 50, n), 3),
        },
    )
    return database


def _query(aggregate="COUNT", bounds=(30.0, 30.0)):
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col("t." + column),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i, (column, bound) in enumerate(zip(("x", "y"), bounds))
    ]
    agg = get_aggregate(aggregate)
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(
        AggregateSpec(agg, attr), ConstraintOp.EQ, 100.0
    )
    return Query.build("q", ("t",), predicates, constraint)


class TestExecutionStats:
    def test_snapshot_and_since(self):
        stats = ExecutionStats(queries_executed=5, rows_scanned=100)
        snap = stats.snapshot()
        stats.queries_executed += 3
        stats.rows_scanned += 10
        delta = stats.since(snap)
        assert delta.queries_executed == 3
        assert delta.rows_scanned == 10
        assert snap.queries_executed == 5

    def test_since_covers_every_field(self):
        """Regression: ``since`` must delta every counter, so a batched
        call landing between snapshots shows up in full — a batch of N
        cells is N cell queries, not 1 and not 0."""
        from dataclasses import fields

        stats = ExecutionStats()
        snap = stats.snapshot()
        for index, field_info in enumerate(fields(ExecutionStats), start=1):
            setattr(
                stats,
                field_info.name,
                getattr(stats, field_info.name) + index,
            )
        delta = stats.since(snap)
        for index, field_info in enumerate(fields(ExecutionStats), start=1):
            assert getattr(delta, field_info.name) == index, field_info.name

    def test_since_sees_batched_cells(self):
        """The drift scenario end-to-end: a real batched call between
        snapshot and since."""
        database = _db(seed=30, n=100)
        query = _query()
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 10.0, [70.0, 70.0])
        snap = layer.stats.snapshot()
        coords = [(0, 0), (1, 0), (0, 1), (2, 2), (5, 5)]
        layer.execute_cells(prepared, space, coords)
        delta = layer.stats.since(snap)
        assert delta.cell_queries == len(coords)
        assert delta.batched_cells == len(coords)
        assert delta.queries_executed == 1
        assert delta.batches == 1


class TestMemoryBackend:
    def test_execute_original_equals_direct_count(self):
        database = _db()
        query = _query()
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        state = layer.execute_original(prepared)
        x = database.table("t").column("x")
        y = database.table("t").column("y")
        expected = int(np.sum((x <= 30.0) & (y <= 30.0)))
        assert state[0] == expected

    def test_box_arity_checked(self):
        database = _db()
        layer = MemoryBackend(database)
        prepared = layer.prepare(_query(), [100.0, 100.0])
        with pytest.raises(EngineError):
            layer.execute_box(prepared, (1.0,))

    def test_stats_counted(self):
        database = _db()
        layer = MemoryBackend(database)
        prepared = layer.prepare(_query(), [100.0, 100.0])
        space = RefinedSpace(_query(), 10.0, [70.0, 70.0])
        layer.execute_cell(prepared, space, (0, 0))
        layer.execute_box(prepared, (5.0, 5.0))
        assert layer.stats.cell_queries == 1
        assert layer.stats.box_queries == 1
        assert layer.stats.queries_executed == 2
        assert layer.stats.rows_scanned > 0

    def test_vectorized_grid_matches_plain(self):
        database = _db(3)
        query = _query()
        plain = MemoryBackend(database)
        fast = MemoryBackend(database, vectorized_grid=True)
        prepared_plain = plain.prepare(query, [100.0, 100.0])
        prepared_fast = fast.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 10.0, [70.0, 70.0])
        for coords in LpBestFirstTraversal(space):
            assert fast.execute_cell(
                prepared_fast, space, coords
            ) == plain.execute_cell(prepared_plain, space, coords)

    def test_topk_admission(self):
        database = _db(4)
        query = _query()
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        admission = layer.topk_admission(prepared, 50)
        assert admission.admitted == 50
        assert len(admission.max_scores) == 2
        assert all(score >= 0 for score in admission.max_scores)
        # The bounding query must actually admit >= k tuples.
        state = layer.execute_box(prepared, admission.max_scores)
        assert state[0] >= 50

    def test_topk_fewer_candidates_than_k(self):
        database = _db(5, n=20)
        layer = MemoryBackend(database)
        prepared = layer.prepare(_query(), [100.0, 100.0])
        admission = layer.topk_admission(prepared, 10_000)
        assert admission.admitted == 20


class TestSQLiteBackend:
    def test_useful_max_scores_from_domain(self):
        database = _db(6)
        layer = SQLiteBackend(database)
        prepared = layer.prepare(_query(), [400.0, 400.0])
        scores = layer.useful_max_scores(prepared)
        # Domain max ~100, bound 30, denominator 100 -> ~70.
        assert scores[0] == pytest.approx(70.0, abs=2.0)

    def test_join_dimension_unbounded(self):
        database = Database()
        database.create_table("a", {"x": np.array([1.0, 2.0])})
        database.create_table("b", {"y": np.array([1.0, 2.0])})
        query = Query.build(
            "q",
            ("a", "b"),
            [JoinPredicate(name="j", left=col("a.x"), right=col("b.y"))],
            AggregateConstraint(
                AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 2
            ),
        )
        layer = SQLiteBackend(database)
        prepared = layer.prepare(query, [50.0])
        assert layer.useful_max_scores(prepared) == [math.inf]

    def test_context_manager_closes(self):
        database = _db(7, n=10)
        with SQLiteBackend(database) as layer:
            prepared = layer.prepare(_query(), [10.0, 10.0])
            layer.execute_box(prepared, (0.0, 0.0))
        with pytest.raises(Exception):
            layer.execute_box(prepared, (0.0, 0.0))


class TestBackendEquivalence:
    @pytest.mark.parametrize("aggregate", ["COUNT", "SUM", "MIN", "MAX", "AVG"])
    def test_cells_and_boxes_agree(self, aggregate):
        database = _db(8)
        query = _query(aggregate)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        caps = [100.0, 100.0]
        prepared_m = memory.prepare(query, caps)
        prepared_s = sqlite.prepare(query, caps)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        for coords in LpBestFirstTraversal(space):
            cell_m = memory.execute_cell(prepared_m, space, coords)
            cell_s = sqlite.execute_cell(prepared_s, space, coords)
            assert cell_m == pytest.approx(cell_s, rel=1e-9, abs=1e-9), coords
        for scores in [(0.0, 0.0), (5.0, 25.0), (70.0, 70.0), (13.3, 7.7)]:
            box_m = memory.execute_box(prepared_m, scores)
            box_s = sqlite.execute_box(prepared_s, scores)
            assert box_m == pytest.approx(box_s, rel=1e-9, abs=1e-9), scores

    def test_band_join_agreement(self):
        rng = np.random.default_rng(10)
        database = Database()
        database.create_table("a", {"x": np.round(rng.uniform(0, 50, 60), 2)})
        database.create_table(
            "b",
            {
                "y": np.round(rng.uniform(0, 50, 60), 2),
                "v": np.round(rng.uniform(0, 10, 60), 2),
            },
        )
        predicates = [
            JoinPredicate(name="j", left=col("a.x"), right=col("b.y")),
            SelectPredicate(
                name="p",
                expr=col("b.v"),
                interval=Interval(0.0, 5.0),
                direction=Direction.UPPER,
                denominator=10.0,
            ),
        ]
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 100.0
        )
        query = Query.build("q", ("a", "b"), predicates, constraint)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        caps = [20.0, 50.0]
        prepared_m = memory.prepare(query, caps)
        prepared_s = sqlite.prepare(query, caps)
        space = RefinedSpace(query, 10.0, [20.0, 50.0])
        for coords in LpBestFirstTraversal(space):
            cell_m = memory.execute_cell(prepared_m, space, coords)
            cell_s = sqlite.execute_cell(prepared_s, space, coords)
            assert cell_m == pytest.approx(cell_s, abs=1e-9), coords

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_workloads_agree(self, seed):
        rng = np.random.default_rng(seed)
        database = Database()
        database.create_table(
            "t",
            {
                "x": np.round(rng.uniform(0, 100, 80), 1),
                "y": np.round(rng.uniform(0, 100, 80), 1),
                "v": np.round(rng.uniform(0, 50, 80), 1),
            },
        )
        bounds = (float(rng.uniform(5, 60)), float(rng.uniform(5, 60)))
        aggregate = str(rng.choice(["COUNT", "SUM", "AVG"]))
        query = _query(aggregate, bounds)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        prepared_m = memory.prepare(query, [150.0, 150.0])
        prepared_s = sqlite.prepare(query, [150.0, 150.0])
        space = RefinedSpace(query, 30.0, [80.0, 80.0])
        for coords in [(0, 0), (1, 0), (2, 3), tuple(space.max_coords)]:
            if not space.contains(coords):
                continue
            cell_m = memory.execute_cell(prepared_m, space, coords)
            cell_s = sqlite.execute_cell(prepared_s, space, coords)
            assert cell_m == pytest.approx(cell_s, rel=1e-9, abs=1e-9)


class TestIndexedMemoryBackend:
    def test_indexed_cells_identical_to_plain(self):
        database = _db(20)
        query = _query("SUM")
        plain = MemoryBackend(database)
        indexed = MemoryBackend(database, indexed=True)
        prepared_p = plain.prepare(query, [100.0, 100.0])
        prepared_i = indexed.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 10.0, [70.0, 70.0])
        for coords in LpBestFirstTraversal(space):
            assert indexed.execute_cell(
                prepared_i, space, coords
            ) == pytest.approx(plain.execute_cell(prepared_p, space, coords))

    def test_indexed_scans_fewer_rows(self):
        database = _db(21, n=2000)
        query = _query()
        plain = MemoryBackend(database)
        indexed = MemoryBackend(database, indexed=True)
        prepared_p = plain.prepare(query, [100.0, 100.0])
        prepared_i = indexed.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 10.0, [70.0, 70.0])
        before_p = plain.stats.rows_scanned
        before_i = indexed.stats.rows_scanned
        for coords in [(3, 0), (5, 5), (10, 2)]:
            plain.execute_cell(prepared_p, space, coords)
            indexed.execute_cell(prepared_i, space, coords)
        scanned_plain = plain.stats.rows_scanned - before_p
        scanned_indexed = indexed.stats.rows_scanned - before_i
        assert scanned_indexed < scanned_plain / 3

    def test_full_acquire_run_matches(self):
        from repro.core.acquire import Acquire, AcquireConfig
        from tests.conftest import count_query

        rng = np.random.default_rng(9)
        database = Database()
        database.create_table(
            "data",
            {"x": rng.uniform(0, 100, 3000), "y": rng.uniform(0, 100, 3000)},
        )
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        config = AcquireConfig(gamma=10, delta=0.05)
        plain = Acquire(MemoryBackend(database)).run(query, config)
        indexed = Acquire(MemoryBackend(database, indexed=True)).run(
            query, config
        )
        assert indexed.best.pscores == plain.best.pscores
        assert indexed.best.aggregate_value == plain.best.aggregate_value
        assert len(indexed.answers) == len(plain.answers)
