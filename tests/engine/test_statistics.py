"""Unit and property tests for column statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.statistics import TableStats
from repro.engine.table import Table


def _stats_for(values, bins=64):
    table = Table.from_columns("t", {"c": np.asarray(values)})
    return TableStats(table, bins=bins).column("c")


class TestBasics:
    def test_min_max_ndv(self):
        stats = _stats_for([1.0, 2.0, 2.0, 5.0])
        assert stats.min_value == 1.0
        assert stats.max_value == 5.0
        assert stats.ndv == 3
        assert stats.count == 4
        assert stats.width == 4.0

    def test_empty_column(self):
        stats = _stats_for([])
        assert stats.count == 0
        assert stats.quantile_value(0.5) == stats.min_value
        assert stats.selectivity_below(10.0) == 0.0

    def test_constant_column(self):
        stats = _stats_for([7.0] * 10)
        assert stats.min_value == stats.max_value == 7.0
        assert stats.ndv == 1

    def test_string_column_degenerate(self):
        table = Table.from_columns(
            "t", {"s": np.array(["a", "b", "a"], dtype=object)}
        )
        stats = TableStats(table).column("s")
        assert stats.ndv == 2
        assert stats.count == 3


class TestQuantiles:
    def test_uniform_quantiles(self):
        values = np.linspace(0.0, 100.0, 10_001)
        stats = _stats_for(values)
        assert stats.quantile_value(0.5) == pytest.approx(50.0, abs=1.5)
        assert stats.quantile_value(0.1) == pytest.approx(10.0, abs=1.5)
        assert stats.quantile_value(0.0) <= 1.0
        assert stats.quantile_value(1.0) == pytest.approx(100.0, abs=0.5)

    def test_quantile_clamped(self):
        stats = _stats_for([0.0, 1.0, 2.0])
        assert stats.quantile_value(-0.5) == stats.quantile_value(0.0)
        assert stats.quantile_value(1.5) == stats.quantile_value(1.0)

    def test_selectivity_below_bounds(self):
        stats = _stats_for(np.linspace(0, 100, 1001))
        assert stats.selectivity_below(-1) == 0.0
        assert stats.selectivity_below(1000) == 1.0
        assert stats.selectivity_below(30.0) == pytest.approx(0.3, abs=0.02)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_within_domain(self, values, fraction):
        stats = _stats_for(values)
        quantile = stats.quantile_value(fraction)
        # The histogram's synthetic +1 widening for constant columns
        # can push the top edge slightly past max.
        assert stats.min_value <= quantile <= stats.max_value + 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_quantile_monotone_in_fraction(self, values):
        stats = _stats_for(values)
        quantiles = [stats.quantile_value(f / 10) for f in range(11)]
        assert all(a <= b + 1e-9 for a, b in zip(quantiles, quantiles[1:]))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_selectivity_monotone(self, values):
        stats = _stats_for(values)
        points = np.linspace(-10, 110, 25)
        selectivities = [stats.selectivity_below(p) for p in points]
        assert all(
            a <= b + 1e-9 for a, b in zip(selectivities, selectivities[1:])
        )
        assert all(0.0 <= s <= 1.0 for s in selectivities)
